#!/usr/bin/env python3
"""Regenerate the paper's figures outside pytest.

Runs the Figure 9-13 sweeps and writes one JSON row file per figure plus
a combined text report. Two scales:

* ``--scale standard`` (default) — Table 2 core parameters (200 objects,
  64 particles, k=3, 2 m range) with a trimmed sampling effort
  (180 s simulated, 5 query timestamps); minutes per figure.
* ``--scale paper`` — the full Section 5 methodology (300 s, 10
  timestamps, 20/10 queries per timestamp); expect an hour-plus total
  on one core.

Example::

    python scripts/run_experiments.py --figures fig10 fig13 --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.config import DEFAULT_CONFIG
from repro.io import save_rows_json
from repro.sim.experiments import (
    format_rows,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_figure13,
)

FIGURES = {
    "fig9": (run_figure9, "range-query KL vs query window size"),
    "fig10": (run_figure10, "kNN hit rate vs k"),
    "fig11": (run_figure11, "metrics vs number of particles"),
    "fig12": (run_figure12, "metrics vs number of moving objects"),
    "fig13": (run_figure13, "metrics vs activation range"),
}

SCALES = {
    "standard": DEFAULT_CONFIG.with_overrides(
        duration_seconds=180,
        warmup_seconds=60,
        num_query_timestamps=5,
        num_range_queries=12,
        num_knn_queries=6,
    ),
    "paper": DEFAULT_CONFIG.with_overrides(
        duration_seconds=300,
        warmup_seconds=60,
        num_query_timestamps=10,
        num_range_queries=20,
        num_knn_queries=10,
    ),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--figures", nargs="+", choices=sorted(FIGURES), default=sorted(FIGURES)
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="standard")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--out", type=Path, default=Path("results"))
    args = parser.parse_args(argv)

    config = SCALES[args.scale]
    if args.seed is not None:
        config = config.with_overrides(seed=args.seed)
    args.out.mkdir(parents=True, exist_ok=True)

    for name in args.figures:
        runner, title = FIGURES[name]
        started = time.time()
        rows = runner(config)
        elapsed = time.time() - started
        print()
        print(format_rows(rows, title=f"{name} ({args.scale}): {title}"))
        print(f"[{elapsed:.0f} s]")
        sys.stdout.flush()
        save_rows_json(rows, args.out / f"{name}_{args.scale}.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
