"""Coordinated gateway checkpoints: resume ≡ cold run, re-partitioning.

The restore guarantee under test: checkpoint a deployment mid-stream,
restore it — at the same *or a different* partition count — and the
continued run is tick-for-tick identical to one that never stopped:
same snapshots, same standing-query deltas, same analytics summaries.
"""

import json
import os

import pytest

from repro.gateway import (
    GatewayCompatibilityError,
    GatewayCoordinator,
    TenantSpec,
    TenantWorld,
    demo_tenants,
    load_checkpoint,
    merge_tenant_states,
    restore_coordinator,
    save_checkpoint,
)
from repro.gateway.checkpoint import MANIFEST_NAME, partition_filename
from repro.geometry import Point, Rect
from repro.service import LiveSimSource
from repro.sim import Simulation

TOTAL_SECONDS = 10
CUT_AT = 5  # checkpoint after this many seconds
WINDOW = Rect(0.0, 0.0, 12.0, 12.0)
KNN_POINT = Point(5.0, 5.0)


def _specs():
    return demo_tenants(2, base_seed=23, num_objects=4, plan="small")


@pytest.fixture(scope="module")
def tenant_batches():
    out = {}
    for spec in _specs():
        world = TenantWorld(spec)
        sim = Simulation(
            world.config, plan=world.plan, readers=world.readers,
            build_symbolic=False,
        )
        out[spec.tenant_id] = list(LiveSimSource(sim, TOTAL_SECONDS).batches())
    return out


def _new_coordinator(num_partitions=2):
    coordinator = GatewayCoordinator(
        _specs(), num_partitions=num_partitions, transport="inline"
    )
    coordinator.enable_analytics()
    for spec in _specs():
        coordinator.subscribe_range(spec.tenant_id, WINDOW, session_id="r0")
        coordinator.subscribe_knn(spec.tenant_id, KNN_POINT, 2, session_id="k0")
    return coordinator


def _delta_key(delta):
    return (delta.query_id, delta.second, delta.entered, delta.left, delta.updated)


def _run(coordinator, tenant_batches, start, stop):
    deltas = {tid: [] for tid in tenant_batches}
    for step in range(start, stop):
        for tid in tenant_batches:
            coordinator.submit_tick(tid, tenant_batches[tid][step])
        for _ in tenant_batches:
            tid, _second, tick_deltas = coordinator.collect_tick()
            deltas[tid].extend(_delta_key(d) for d in tick_deltas)
    return deltas


def _observables(coordinator, deltas):
    """Everything the resume guarantee covers, in comparable form."""
    out = {}
    for tid in sorted(coordinator.tenant_ids()):
        table = coordinator.latest_snapshot(tid).table
        out[tid] = {
            "table": {
                obj: table.distribution_of(obj)
                for obj in sorted(table.objects())
            },
            "deltas": deltas[tid],
            "analytics": coordinator.analytics_summary(tid),
            "sessions": {
                "r0": coordinator.session_result(tid, "r0"),
                "k0": coordinator.session_result(tid, "k0"),
            },
        }
    return out


@pytest.fixture(scope="module")
def cold(tenant_batches):
    """The uninterrupted reference run, and its tail deltas."""
    coordinator = _new_coordinator()
    with coordinator:
        _run(coordinator, tenant_batches, 0, CUT_AT)
        tail = _run(coordinator, tenant_batches, CUT_AT, TOTAL_SECONDS)
        return _observables(coordinator, tail)


@pytest.fixture(scope="module")
def checkpoint_dir(tenant_batches, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("gateway-ck"))
    coordinator = _new_coordinator()
    with coordinator:
        _run(coordinator, tenant_batches, 0, CUT_AT)
        save_checkpoint(coordinator, directory)
    return directory


class TestResume:
    @pytest.mark.parametrize("num_partitions", [None, 3, 1])
    def test_resumed_run_is_tick_identical_to_cold(
        self, tenant_batches, cold, checkpoint_dir, num_partitions
    ):
        """Resume at the same (None), more, or fewer partitions."""
        coordinator = restore_coordinator(
            checkpoint_dir,
            num_partitions=num_partitions,
            transport="inline",
        )
        with coordinator:
            expected = 2 if num_partitions is None else num_partitions
            assert coordinator.num_partitions == expected
            # Serving state resumed: ticks, open sessions, analytics.
            health = coordinator.health()
            for record in health["tenants"].values():
                assert record["ticks"] == CUT_AT
                # LiveSimSource seconds are 1-based.
                assert record["last_second"] == CUT_AT
                assert record["open_sessions"] == 2
                assert record["analytics"] is True
            tail = _run(coordinator, tenant_batches, CUT_AT, TOTAL_SECONDS)
            assert _observables(coordinator, tail) == cold

    def test_restore_pins_the_expected_tenant_set(self, checkpoint_dir):
        same = restore_coordinator(
            checkpoint_dir, tenants=_specs(), transport="inline"
        )
        same.close()

    def test_manifest_is_the_commit_point(self, checkpoint_dir):
        state, slices = load_checkpoint(checkpoint_dir)
        assert state["partitions"] == 2
        assert sorted(slices) == [0, 1]
        for index in slices:
            assert sorted(slices[index]) == ["tenant-0", "tenant-1"]


class TestRefusals:
    def test_tenant_set_mismatch_is_actionable(self, checkpoint_dir):
        stranger = TenantSpec(tenant_id="tenant-9", seed=1, plan="small")
        with pytest.raises(GatewayCompatibilityError) as excinfo:
            restore_coordinator(
                checkpoint_dir,
                tenants=[_specs()[0], stranger],
                transport="inline",
            )
        message = str(excinfo.value)
        assert "tenant set mismatch" in message
        assert "tenant-1" in message  # missing from the request
        assert "tenant-9" in message  # not in the checkpoint

    def test_changed_spec_is_refused(self, checkpoint_dir):
        drifted = [
            TenantSpec(
                tenant_id=spec.tenant_id,
                seed=spec.seed + 1,  # a reseeded tenant cannot resume
                num_objects=spec.num_objects,
                plan=spec.plan,
            )
            for spec in _specs()
        ]
        with pytest.raises(GatewayCompatibilityError, match="cannot resume"):
            restore_coordinator(
                checkpoint_dir, tenants=drifted, transport="inline"
            )

    def test_missing_partition_file_is_refused(self, checkpoint_dir, tmp_path):
        import shutil

        broken = tmp_path / "broken"
        shutil.copytree(checkpoint_dir, broken)
        os.remove(broken / partition_filename(1))
        with pytest.raises(GatewayCompatibilityError, match="missing"):
            load_checkpoint(str(broken))

    def test_missing_manifest_is_refused(self, checkpoint_dir, tmp_path):
        import shutil

        broken = tmp_path / "no-manifest"
        shutil.copytree(checkpoint_dir, broken)
        os.remove(broken / MANIFEST_NAME)
        with pytest.raises(GatewayCompatibilityError, match=MANIFEST_NAME):
            load_checkpoint(str(broken))

    def test_uncoordinated_cut_is_refused(self, checkpoint_dir, tmp_path):
        import shutil

        broken = tmp_path / "torn"
        shutil.copytree(checkpoint_dir, broken)
        path = broken / partition_filename(0)
        document = json.loads(path.read_text())
        document["tenants"]["tenant-0"]["ticks"] += 1
        path.write_text(json.dumps(document))
        with pytest.raises(GatewayCompatibilityError, match="coordinated"):
            load_checkpoint(str(broken))


class TestMerge:
    def test_merge_is_canonical_across_partition_layouts(self, tenant_batches):
        """2-way and 3-way slices of one run merge to the same state."""
        merged = {}
        for num_partitions in (2, 3):
            coordinator = GatewayCoordinator(
                _specs(), num_partitions=num_partitions, transport="inline"
            )
            with coordinator:
                _run(coordinator, tenant_batches, 0, CUT_AT)
                states = coordinator.partition_states()
            merged[num_partitions] = {
                tid: merge_tenant_states(
                    [states[index][tid] for index in sorted(states)]
                )
                for tid in ("tenant-0", "tenant-1")
            }
        assert merged[2] == merged[3]

    def test_merge_refuses_disagreeing_slices(self, tenant_batches):
        coordinator = GatewayCoordinator(
            _specs(), num_partitions=2, transport="inline"
        )
        with coordinator:
            _run(coordinator, tenant_batches, 0, 2)
            states = coordinator.partition_states()
        slice_a = states[0]["tenant-0"]
        slice_b = json.loads(json.dumps(states[1]["tenant-0"]))
        slice_b["ticks"] += 1
        with pytest.raises(GatewayCompatibilityError):
            merge_tenant_states([slice_a, slice_b])
