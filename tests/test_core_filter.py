"""Tests for the sensing model, discretization, and the SIR filter (Alg. 2)."""

import numpy as np
import pytest

from repro.collector.collector import DeviceRun, ReadingHistory
from repro.config import DEFAULT_CONFIG
from repro.core import (
    CompiledAnchors,
    CompiledGraph,
    DeviceSensingModel,
    ParticleFilter,
    particles_to_anchor_distribution,
)
from repro.geometry import Point
from repro.rfid import RFIDReader


@pytest.fixture(scope="module")
def small_compiled(small_graph):
    return CompiledGraph(small_graph)


@pytest.fixture(scope="module")
def small_compiled_anchors(small_anchors):
    return CompiledAnchors(small_anchors)


@pytest.fixture(scope="module")
def small_readers(small_graph):
    # Three readers along the small plan's hallway, like paper Figure 1.
    return {
        "d1": RFIDReader("d1", Point(3.0, 5.0), 2.0, "H1"),
        "d2": RFIDReader("d2", Point(10.0, 5.0), 2.0, "H1"),
        "d3": RFIDReader("d3", Point(17.0, 5.0), 2.0, "H1"),
    }


@pytest.fixture
def small_filter(small_compiled, small_readers):
    return ParticleFilter(small_compiled, small_readers, DEFAULT_CONFIG)


def history(*runs):
    return ReadingHistory(
        "o1", tuple(DeviceRun(reader, list(seconds)) for reader, seconds in runs)
    )


class TestSensingModel:
    def test_rejects_bad_weights(self, small_compiled, small_readers):
        with pytest.raises(ValueError):
            DeviceSensingModel(small_compiled, small_readers, 0.1, 0.5)
        with pytest.raises(ValueError):
            DeviceSensingModel(small_compiled, small_readers, 0.5, -0.1)

    def test_reweight_hits_and_misses(self, small_compiled, small_readers, small_filter, rng):
        sensing = DeviceSensingModel(small_compiled, small_readers, 0.9, 0.01)
        ps = small_filter.motion.initialize_in_circle(
            64, small_readers["d2"].detection_circle, rng
        )
        # Pin half the cloud well away from d2 and half at its center.
        far_loc, _ = small_compiled.graph.locate(Point(1.0, 5.0))
        ps.edge[:32] = far_loc.edge_id
        ps.offset[:32] = far_loc.offset
        near_loc, _ = small_compiled.graph.locate(small_readers["d2"].position)
        ps.edge[32:] = near_loc.edge_id
        ps.offset[32:] = near_loc.offset
        mask = sensing.reweight(ps, "d2")
        assert not mask[:32].any()
        assert mask[32:].all()
        assert np.allclose(ps.weight[:32], 0.01 / 64)
        assert np.allclose(ps.weight[32:], 0.9 / 64)


class TestDiscretization:
    def test_distribution_sums_to_one(self, small_filter, small_compiled, small_compiled_anchors, small_readers, rng):
        ps = small_filter.motion.initialize_in_circle(
            64, small_readers["d2"].detection_circle, rng
        )
        dist = particles_to_anchor_distribution(ps, small_compiled, small_compiled_anchors)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_anchors_near_particles(self, small_filter, small_compiled, small_compiled_anchors, small_readers, small_anchors, rng):
        ps = small_filter.motion.initialize_in_circle(
            64, small_readers["d2"].detection_circle, rng
        )
        dist = particles_to_anchor_distribution(ps, small_compiled, small_compiled_anchors)
        for ap_id in dist:
            anchor = small_anchors.anchor(ap_id)
            assert anchor.point.distance_to(Point(10, 5)) <= 3.0

    def test_empty_particles(self, small_compiled, small_compiled_anchors):
        from repro.core import ParticleSet

        dist = particles_to_anchor_distribution(
            ParticleSet.empty(0), small_compiled, small_compiled_anchors
        )
        assert dist == {}

    def test_weighted_mass(self, small_compiled, small_compiled_anchors, small_graph):
        from repro.core import ParticleSet

        ps = ParticleSet.empty(4)
        loc_a, _ = small_graph.locate(Point(2, 5))
        loc_b, _ = small_graph.locate(Point(18, 5))
        ps.edge[:2] = loc_a.edge_id
        ps.offset[:2] = loc_a.offset
        ps.edge[2:] = loc_b.edge_id
        ps.offset[2:] = loc_b.offset
        ps.weight[:] = [0.4, 0.4, 0.1, 0.1]
        dist = particles_to_anchor_distribution(ps, small_compiled, small_compiled_anchors)
        near_a = sum(
            p for ap, p in dist.items()
            if small_compiled_anchors.anchor_index.anchor(ap).point.x < 10
        )
        assert near_a == pytest.approx(0.8)


class TestParticleFilter:
    def test_requires_readings(self, small_filter):
        with pytest.raises(ValueError):
            small_filter.run(ReadingHistory("o1", tuple()), 10, rng=0)

    def test_initial_cloud_in_older_device_range(self, small_filter, small_compiled, small_readers, rng):
        result = small_filter.run(history(("d2", [0])), current_second=0, rng=rng)
        xs, ys = small_compiled.points(result.particles.edge, result.particles.offset)
        center = small_readers["d2"].position
        for x, y in zip(xs, ys):
            assert center.distance_to(Point(x, y)) <= 2.0 + 0.2

    def test_direction_inference_figure1(self, small_filter, small_compiled, small_readers, rng):
        # Seen at d2 then d3 moving right: after leaving d3, most mass
        # must be at or right of d3, not back toward d2.
        hist = history(("d2", [0, 1]), ("d3", [7, 8]))
        result = small_filter.run(hist, current_second=12, rng=rng)
        xs, _ = small_compiled.points(result.particles.edge, result.particles.offset)
        d3_x = small_readers["d3"].position.x
        frac_right = (xs >= d3_x - 1.0).mean()
        assert frac_right > 0.7

    def test_silence_cap(self, small_filter, rng):
        hist = history(("d2", [0, 1, 2]))
        result = small_filter.run(hist, current_second=500, rng=rng)
        assert result.end_second == 2 + int(DEFAULT_CONFIG.silence_cap_seconds)

    def test_end_second_at_current_when_recent(self, small_filter, rng):
        hist = history(("d2", [0, 1, 2]))
        result = small_filter.run(hist, current_second=10, rng=rng)
        assert result.end_second == 10

    def test_resume_equivalent_semantics(self, small_filter, rng):
        hist = history(("d2", [0, 1]), ("d3", [7, 8]))
        full = small_filter.run(hist, current_second=8, rng=np.random.default_rng(5))
        resumed = small_filter.run(
            hist,
            current_second=12,
            rng=np.random.default_rng(6),
            resume=(full.particles, full.end_second),
        )
        assert resumed.end_second == 12
        assert len(resumed.particles) == len(full.particles)

    def test_resume_in_future_is_ignored(self, small_filter, rng):
        hist = history(("d2", [0, 1]))
        early = small_filter.run(hist, current_second=20, rng=rng)
        # Resume state is at second 20, but we ask for second 5: rerun.
        result = small_filter.run(
            hist, current_second=5, rng=rng, resume=(early.particles, early.end_second)
        )
        assert result.end_second == 5

    def test_depletion_recovery_reseeds_at_observed_reader(
        self, small_filter, small_compiled, small_readers, rng
    ):
        # d1 and d3 are 14 m apart: after 1 s the cloud from d1 cannot
        # reach d3, so a d3 reading at t=1 depletes every particle and the
        # filter must reseed within d3's range.
        hist = history(("d1", [0]), ("d3", [1]))
        result = small_filter.run(hist, current_second=1, rng=rng)
        xs, ys = small_compiled.points(result.particles.edge, result.particles.offset)
        center = small_readers["d3"].position
        for x, y in zip(xs, ys):
            assert center.distance_to(Point(x, y)) <= 2.0 + 0.2

    def test_particle_count_honors_config(self, small_compiled, small_readers, rng):
        config = DEFAULT_CONFIG.with_overrides(num_particles=17)
        pf = ParticleFilter(small_compiled, small_readers, config)
        result = pf.run(history(("d2", [0])), current_second=3, rng=rng)
        assert len(result.particles) == 17

    def test_weights_remain_normalized(self, small_filter, rng):
        hist = history(("d2", [0, 1, 2]), ("d3", [7, 8]))
        result = small_filter.run(hist, current_second=9, rng=rng)
        assert result.particles.weight.sum() == pytest.approx(1.0)

    def test_deterministic_given_rng(self, small_filter):
        hist = history(("d2", [0, 1]), ("d3", [7]))
        a = small_filter.run(hist, 10, rng=np.random.default_rng(3))
        b = small_filter.run(hist, 10, rng=np.random.default_rng(3))
        assert np.array_equal(a.particles.offset, b.particles.offset)
        assert np.array_equal(a.particles.edge, b.particles.edge)
