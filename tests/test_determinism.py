"""Reproducibility: identical seeds must give identical worlds and answers."""

from repro.config import DEFAULT_CONFIG
from repro.geometry import Point, Rect
from repro.rng import child_rng
from repro.sim import Simulation

FAST = DEFAULT_CONFIG.with_overrides(
    num_objects=10, duration_seconds=40, warmup_seconds=20, seed=99
)


def build_and_run():
    sim = Simulation(FAST)
    sim.run_until(40)
    return sim


class TestWorldDeterminism:
    def test_traces_identical(self):
        a = build_and_run()
        b = build_and_run()
        assert a.true_locations() == b.true_locations()

    def test_collector_state_identical(self):
        a = build_and_run()
        b = build_and_run()
        for object_id in a.pf_engine.collector.observed_objects():
            ha = a.pf_engine.collector.history(object_id)
            hb = b.pf_engine.collector.history(object_id)
            assert [(r.reader_id, r.seconds) for r in ha.runs] == [
                (r.reader_id, r.seconds) for r in hb.runs
            ]

    def test_query_answers_identical(self):
        a = build_and_run()
        b = build_and_run()
        window = Rect(10, 3, 25, 8)
        result_a = a.pf_engine.range_query(window, 40, rng=child_rng(1, "q"))
        result_b = b.pf_engine.range_query(window, 40, rng=child_rng(1, "q"))
        assert result_a.probabilities == result_b.probabilities

    def test_knn_answers_identical(self):
        a = build_and_run()
        b = build_and_run()
        ka = a.pf_engine.knn_query(Point(30, 5), 3, 40, rng=child_rng(2, "k"))
        kb = b.pf_engine.knn_query(Point(30, 5), 3, 40, rng=child_rng(2, "k"))
        assert ka.probabilities == kb.probabilities

    def test_different_seeds_differ(self):
        a = Simulation(FAST)
        b = Simulation(FAST.with_overrides(seed=100))
        a.run_until(40)
        b.run_until(40)
        assert a.true_locations() != b.true_locations()

    def test_query_placement_streams_independent_of_trace(self):
        # Drawing query windows must not perturb the world evolution.
        a = build_and_run()
        b = build_and_run()
        a.random_windows(5)
        a.run_until(45)
        b.run_until(45)
        assert a.true_locations() == b.true_locations()


class TestSymbolicDeterminism:
    def test_symbolic_identical(self):
        a = build_and_run()
        b = build_and_run()
        window = Rect(10, 3, 25, 8)
        assert (
            a.sm_engine.range_query(window, 40).probabilities
            == b.sm_engine.range_query(window, 40).probabilities
        )


class TestObservabilityDeterminism:
    """Recording metrics/spans must never perturb simulation results."""

    def test_tracing_does_not_change_answers(self):
        from repro import obs

        def answers():
            sim = build_and_run()
            window = Rect(10, 3, 25, 8)
            range_probs = sim.pf_engine.range_query(
                window, 40, rng=child_rng(1, "q")
            ).probabilities
            knn_probs = sim.pf_engine.knn_query(
                Point(30, 5), 3, 40, rng=child_rng(2, "k")
            ).probabilities
            return range_probs, knn_probs, sim.true_locations()

        baseline = answers()
        obs.enable()
        try:
            traced = answers()
        finally:
            obs.disable()
            obs.reset()
        assert traced == baseline
