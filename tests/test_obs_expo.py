"""Prometheus exposition and the /metrics + /healthz HTTP endpoints."""

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.expo import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsServer,
    escape_label_value,
    metric_name,
    render_prometheus,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
    obs.set_clock(__import__("time").perf_counter)


def _snapshot_with_series():
    obs.enable()
    obs.add("engine.queries", 3, labels={"query": "range"})
    obs.add("engine.queries", 2, labels={"query": "knn"})
    obs.add("cache.hits", 7)
    obs.gauge_set("service.shards", 4)
    obs.observe("service.tick_latency", 0.25)
    obs.observe("service.shard_time", 0.1, labels={"shard": 0})
    return obs.snapshot()


# ----------------------------------------------------------------------
# text format
# ----------------------------------------------------------------------
class TestRenderPrometheus:
    def test_counters_get_total_suffix_and_labels(self):
        text = render_prometheus(_snapshot_with_series())
        assert "# TYPE repro_engine_queries_total counter" in text
        assert 'repro_engine_queries_total{query="range"} 3' in text
        assert 'repro_engine_queries_total{query="knn"} 2' in text
        assert "repro_cache_hits_total 7" in text

    def test_gauges_and_summaries(self):
        text = render_prometheus(_snapshot_with_series())
        assert "# TYPE repro_service_shards gauge" in text
        assert "repro_service_shards 4.0" in text
        assert "# TYPE repro_service_tick_latency summary" in text
        assert 'repro_service_tick_latency{quantile="0.5"} 0.25' in text
        assert "repro_service_tick_latency_sum 0.25" in text
        assert "repro_service_tick_latency_count 1" in text

    def test_labeled_summary_merges_quantile_label(self):
        text = render_prometheus(_snapshot_with_series())
        assert 'repro_service_shard_time{quantile="0.5",shard="0"} 0.1' in text

    def test_type_line_emitted_once_per_family(self):
        text = render_prometheus(_snapshot_with_series())
        assert text.count("# TYPE repro_engine_queries_total counter") == 1

    def test_dropped_samples_become_counter_family(self):
        obs.enable()
        h = obs.registry().histogram("capped")
        h.max_samples = 2
        for i in range(5):
            h.observe(float(i))
        text = render_prometheus(obs.snapshot())
        assert "# TYPE repro_capped_dropped_samples_total counter" in text
        assert "repro_capped_dropped_samples_total 3" in text

    def test_accepts_bare_metrics_snapshot(self):
        # Offline `repro stats --prom` feeds trace files whose metrics
        # live under data["metrics"]; live callers pass the same shape.
        obs.enable()
        obs.add("c")
        text = render_prometheus({"metrics": obs.registry().snapshot()})
        assert "repro_c_total 1" in text

    def test_metric_name_sanitization(self):
        assert metric_name("filter.predict") == "repro_filter_predict"
        assert metric_name("weird-name!x") == "repro_weird_name_x"
        assert metric_name("0lead") == "repro_0lead"
        assert metric_name("cache.hits", "_total") == "repro_cache_hits_total"

    def test_label_value_escaping(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


# ----------------------------------------------------------------------
# HTTP endpoints
# ----------------------------------------------------------------------
def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, dict(response.headers), response.read()


class TestMetricsServer:
    def test_metrics_endpoint_serves_prometheus_text(self):
        snap = _snapshot_with_series()
        with MetricsServer(snapshot_provider=lambda: snap) as server:
            status, headers, body = _get(server.url("/metrics"))
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert 'repro_engine_queries_total{query="range"} 3' in text

    def test_healthz_ok_and_stalled(self):
        health = {"status": "ok", "ticks": 5}
        server = MetricsServer(
            snapshot_provider=obs.snapshot,
            health_provider=lambda: health,
        )
        with server:
            status, _, body = _get(server.url("/healthz"))
            assert status == 200
            payload = json.loads(body)
            assert payload["status"] == "ok"
            assert payload["ticks"] == 5
            # every health payload identifies the running build
            assert payload["build"]["version"]
            assert payload["build"]["python"]
            health["status"] = "stalled"
            try:
                status, _, body = _get(server.url("/healthz"))
            except urllib.error.HTTPError as exc:
                status, body = exc.code, exc.read()
            assert status == 503
            assert json.loads(body)["status"] == "stalled"

    def test_readyz_tracks_provider(self):
        ready = {"value": False}
        server = MetricsServer(
            snapshot_provider=obs.snapshot,
            ready_provider=lambda: ready["value"],
        )
        with server:
            try:
                status, _, body = _get(server.url("/readyz"))
            except urllib.error.HTTPError as exc:
                status, body = exc.code, exc.read()
            assert status == 503
            assert json.loads(body) == {"ready": False}
            ready["value"] = True
            status, _, body = _get(server.url("/readyz"))
            assert status == 200
            assert json.loads(body) == {"ready": True}

    def test_unknown_path_404(self):
        with MetricsServer(snapshot_provider=obs.snapshot) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url("/nope"))
            assert excinfo.value.code == 404

    def test_provider_error_returns_500(self):
        def boom():
            raise RuntimeError("snapshot failed")

        with MetricsServer(snapshot_provider=boom) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url("/metrics"))
            assert excinfo.value.code == 500

    def test_port_zero_binds_ephemeral_port(self):
        server = MetricsServer(snapshot_provider=obs.snapshot, port=0)
        port = server.start()
        try:
            assert port > 0
            assert server.port == port
        finally:
            server.stop()

    def test_stop_is_idempotent(self):
        server = MetricsServer(snapshot_provider=obs.snapshot)
        server.start()
        server.stop()
        server.stop()
