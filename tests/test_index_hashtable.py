"""Tests for the APtoObjHT anchor-object table."""

import pytest
from hypothesis import given, strategies as st

from repro.index import AnchorObjectTable


def make_table():
    table = AnchorObjectTable()
    table.set_distribution("o1", {1: 0.14, 2: 0.5, 3: 0.36})
    table.set_distribution("o3", {1: 0.03, 7: 0.97})
    table.set_distribution("o7", {1: 0.37, 9: 0.63})
    return table


class TestWrites:
    def test_set_and_read(self):
        table = make_table()
        assert table.at(1) == {"o1": 0.14, "o3": 0.03, "o7": 0.37}
        assert table.distribution_of("o1") == {1: 0.14, 2: 0.5, 3: 0.36}

    def test_replace_clears_old_entries(self):
        table = make_table()
        table.set_distribution("o1", {5: 1.0})
        assert "o1" not in table.at(1)
        assert table.distribution_of("o1") == {5: 1.0}

    def test_zero_mass_dropped(self):
        table = AnchorObjectTable()
        table.set_distribution("o1", {1: 0.0, 2: -0.5, 3: 1.0})
        assert table.distribution_of("o1") == {3: 1.0}

    def test_empty_distribution_removes(self):
        table = make_table()
        table.set_distribution("o1", {})
        assert not table.has_object("o1")

    def test_remove_object(self):
        table = make_table()
        table.remove_object("o3")
        assert not table.has_object("o3")
        assert "o3" not in table.at(1)
        table.remove_object("o3")  # idempotent

    def test_remove_cleans_empty_buckets(self):
        table = AnchorObjectTable()
        table.set_distribution("o1", {42: 1.0})
        table.remove_object("o1")
        assert 42 not in table.anchors()

    def test_clear(self):
        table = make_table()
        table.clear()
        assert len(table) == 0
        assert table.objects() == []
        assert table.anchors() == []


class TestReads:
    def test_objects_and_anchors(self):
        table = make_table()
        assert sorted(table.objects()) == ["o1", "o3", "o7"]
        assert set(table.anchors()) == {1, 2, 3, 7, 9}

    def test_total_probability(self):
        table = make_table()
        assert table.total_probability("o1") == pytest.approx(1.0)
        assert table.total_probability("missing") == 0.0

    def test_probability_at(self):
        table = make_table()
        assert table.probability_at("o1", 2) == 0.5
        assert table.probability_at("o1", 99) == 0.0
        assert table.probability_at("missing", 2) == 0.0

    def test_sum_over_anchors(self):
        table = make_table()
        assert table.sum_over_anchors("o1", [1, 2]) == pytest.approx(0.64)
        assert table.sum_over_anchors("o1", []) == 0.0

    def test_items_at(self):
        table = make_table()
        assert dict(table.items_at(1)) == {"o1": 0.14, "o3": 0.03, "o7": 0.37}
        assert table.items_at(12345) == []

    def test_at_returns_copy(self):
        table = make_table()
        view = table.at(1)
        view["o1"] = 999.0
        assert table.at(1)["o1"] == 0.14

    def test_len(self):
        assert len(make_table()) == 3


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=50),
        st.floats(min_value=0.001, max_value=1.0),
        min_size=1,
        max_size=10,
    )
)
def test_roundtrip_property(distribution):
    table = AnchorObjectTable()
    table.set_distribution("obj", distribution)
    assert table.distribution_of("obj") == distribution
    assert table.total_probability("obj") == pytest.approx(sum(distribution.values()))
    for ap_id, mass in distribution.items():
        assert table.at(ap_id)["obj"] == mass
