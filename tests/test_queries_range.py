"""Tests for indoor range query evaluation (paper Algorithm 3)."""

import pytest

from repro.geometry import Point, Rect
from repro.index import AnchorObjectTable
from repro.queries import RangeQuery, evaluate_range_query


def table_with(anchor_index, placements):
    """Build a table placing each object fully at the anchor nearest a point."""
    table = AnchorObjectTable()
    for object_id, point in placements.items():
        anchor = anchor_index.nearest(point)
        table.set_distribution(object_id, {anchor.ap_id: 1.0})
    return table


class TestHallwayPart:
    def test_full_width_window_captures_object(self, small_plan, small_anchors):
        table = table_with(small_anchors, {"o1": Point(10, 5)})
        query = RangeQuery("q", Rect(8, 4, 12, 6))
        result = evaluate_range_query(query, small_plan, small_anchors, table)
        assert result.probabilities["o1"] == pytest.approx(1.0)

    def test_half_width_window_halves_probability(self, small_plan, small_anchors):
        table = table_with(small_anchors, {"o1": Point(10, 5)})
        query = RangeQuery("q", Rect(8, 5, 12, 6))  # covers top half of band
        result = evaluate_range_query(query, small_plan, small_anchors, table)
        assert result.probabilities["o1"] == pytest.approx(0.5)

    def test_window_outside_span_misses(self, small_plan, small_anchors):
        table = table_with(small_anchors, {"o1": Point(10, 5)})
        query = RangeQuery("q", Rect(0, 4, 5, 6))
        result = evaluate_range_query(query, small_plan, small_anchors, table)
        assert result.probabilities.get("o1", 0.0) == pytest.approx(0.0)

    def test_boundary_anchor_counts_fractionally(self, small_plan, small_anchors):
        # Window edge exactly through the anchor: half its stretch covered.
        table = table_with(small_anchors, {"o1": Point(10, 5)})
        query = RangeQuery("q", Rect(10, 4, 14, 6))
        result = evaluate_range_query(query, small_plan, small_anchors, table)
        assert result.probabilities["o1"] == pytest.approx(0.5, abs=0.01)

    def test_mass_split_across_anchors(self, small_plan, small_anchors):
        table = AnchorObjectTable()
        a = small_anchors.nearest(Point(9, 5))
        b = small_anchors.nearest(Point(11, 5))
        table.set_distribution("o1", {a.ap_id: 0.5, b.ap_id: 0.5})
        query = RangeQuery("q", Rect(8.4, 4, 9.6, 6))  # covers only anchor a
        result = evaluate_range_query(query, small_plan, small_anchors, table)
        assert result.probabilities["o1"] == pytest.approx(0.5, abs=0.05)


class TestRoomPart:
    def test_full_room_window(self, small_plan, small_anchors):
        center = small_plan.room("R1").center
        table = table_with(small_anchors, {"o1": center})
        query = RangeQuery("q", Rect(0, 0, 10, 4))  # exactly R1
        result = evaluate_range_query(query, small_plan, small_anchors, table)
        assert result.probabilities["o1"] == pytest.approx(1.0, abs=0.01)

    def test_quarter_room_window(self, small_plan, small_anchors):
        center = small_plan.room("R1").center
        table = table_with(small_anchors, {"o1": center})
        query = RangeQuery("q", Rect(0, 0, 5, 2))  # quarter of R1's area
        result = evaluate_range_query(query, small_plan, small_anchors, table)
        assert result.probabilities["o1"] == pytest.approx(0.25, abs=0.01)

    def test_window_in_other_room_misses(self, small_plan, small_anchors):
        center = small_plan.room("R1").center
        table = table_with(small_anchors, {"o1": center})
        query = RangeQuery("q", Rect(12, 0, 18, 4))  # inside R2
        result = evaluate_range_query(query, small_plan, small_anchors, table)
        assert result.probabilities.get("o1", 0.0) == pytest.approx(0.0)


class TestCombined:
    def test_window_spanning_hallway_and_room(self, small_plan, small_anchors):
        table = AnchorObjectTable()
        hall_anchor = small_anchors.nearest(Point(5, 5))
        room_anchor = small_anchors.nearest(small_plan.room("R3").center)
        table.set_distribution("o1", {hall_anchor.ap_id: 0.5, room_anchor.ap_id: 0.5})
        # Covers the hallway band fully (width-wise) around x=5 and all of R3.
        query = RangeQuery("q", Rect(0, 4, 10, 10))
        result = evaluate_range_query(query, small_plan, small_anchors, table)
        assert result.probabilities["o1"] == pytest.approx(1.0, abs=0.05)

    def test_multiple_objects(self, small_plan, small_anchors):
        table = table_with(
            small_anchors, {"o1": Point(10, 5), "o2": Point(2, 5), "o3": Point(18, 5)}
        )
        query = RangeQuery("q", Rect(8, 4, 12, 6))
        result = evaluate_range_query(query, small_plan, small_anchors, table)
        assert result.probabilities["o1"] == pytest.approx(1.0)
        assert result.probabilities.get("o2", 0.0) == 0.0
        assert result.probabilities.get("o3", 0.0) == 0.0

    def test_probability_never_exceeds_one(self, paper_plan, paper_anchors):
        # An object spread widely; a window covering the whole building.
        table = AnchorObjectTable()
        anchors = paper_anchors.anchors[:40]
        table.set_distribution("o1", {a.ap_id: 1.0 / 40 for a in anchors})
        query = RangeQuery("q", paper_plan.bounds)
        result = evaluate_range_query(query, paper_plan, paper_anchors, table)
        assert result.probabilities["o1"] <= 1.0 + 1e-9

    def test_empty_table(self, small_plan, small_anchors):
        result = evaluate_range_query(
            RangeQuery("q", Rect(0, 0, 20, 10)), small_plan, small_anchors,
            AnchorObjectTable(),
        )
        assert result.probabilities == {}

    def test_result_top_ordering(self, small_plan, small_anchors):
        table = AnchorObjectTable()
        a = small_anchors.nearest(Point(10, 5))
        table.set_distribution("o1", {a.ap_id: 0.9})
        table.set_distribution("o2", {a.ap_id: 0.4})
        query = RangeQuery("q", Rect(8, 4, 12, 6))
        result = evaluate_range_query(query, small_plan, small_anchors, table)
        top = result.top(2)
        assert top[0][0] == "o1"
        assert top[1][0] == "o2"
