"""Standing-query sessions, the snapshot read path, and the scheduler."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.geometry import Point, Rect
from repro.service import (
    BoundedQueue,
    EpochScheduler,
    ManualClock,
    ReplaySource,
    SourceFeeder,
    TrackingService,
)
from repro.sim import Simulation

FAST = DEFAULT_CONFIG.with_overrides(num_objects=8, seed=11)


@pytest.fixture(scope="module")
def replay_readings():
    sim = Simulation(FAST, build_symbolic=False)
    readings = []
    for _ in range(20):
        readings.extend(sim.step())
    return readings


@pytest.fixture()
def service():
    svc = TrackingService(FAST, num_shards=2, mode="thread")
    yield svc
    svc.close()


class TestSubscriptions:
    def test_callbacks_receive_deltas(self, service, replay_readings):
        received = []
        service.sessions.subscribe_range(
            service.plan.bounds, callback=received.append, session_id="everything"
        )
        for batch in ReplaySource(replay_readings, max_seconds=5).batches():
            service.process_batch(batch)
        assert received, "a building-wide window must produce deltas"
        assert all(delta.query_id == "everything" for delta in received)
        assert not any(delta.is_empty for delta in received)

    def test_unsubscribe_stops_delivery(self, service, replay_readings):
        received = []
        sid = service.sessions.subscribe_range(
            service.plan.bounds, callback=received.append
        )
        batches = list(ReplaySource(replay_readings, max_seconds=6).batches())
        service.process_batch(batches[0])
        count_before = len(received)
        assert service.sessions.unsubscribe(sid) is True
        for batch in batches[1:]:
            deltas = service.process_batch(batch)
            assert deltas == []  # no sessions left, nothing evaluated
        assert len(received) == count_before
        assert service.sessions.unsubscribe(sid) is False  # already gone

    def test_duplicate_session_id_rejected(self, service):
        service.sessions.subscribe_knn(Point(30, 5), 2, session_id="dup")
        with pytest.raises(ValueError, match="already subscribed"):
            service.sessions.subscribe_range(Rect(0, 0, 1, 1), session_id="dup")

    def test_pruning_uses_standing_queries(self, replay_readings):
        pruned = TrackingService(FAST, use_pruning=True, num_shards=2)
        try:
            pruned.sessions.subscribe_range(Rect(4, 0, 10, 12), session_id="small")
            for batch in ReplaySource(replay_readings, max_seconds=8).batches():
                pruned.process_batch(batch)
            snap = pruned.snapshot()
            # The candidate set is query-aware: never more than the full
            # observed population, and recorded on the snapshot.
            assert snap.candidates <= set(pruned.collector.observed_objects())
        finally:
            pruned.close()


class TestSnapshotReads:
    def test_adhoc_queries_use_published_snapshot(self, service, replay_readings):
        for batch in ReplaySource(replay_readings, max_seconds=8).batches():
            service.process_batch(batch)
        snap = service.snapshot()
        assert snap.second == 8
        result = service.query_range(service.plan.bounds)
        assert result.probabilities  # every tracked object is in-building
        knn = service.query_knn(Point(30, 5), 3)
        assert knn.probabilities

    def test_snapshot_is_stable_across_later_ticks(self, service, replay_readings):
        batches = list(ReplaySource(replay_readings, max_seconds=6).batches())
        for batch in batches[:3]:
            service.process_batch(batch)
        old = service.snapshot()
        old_objects = {
            obj: old.table.distribution_of(obj) for obj in old.table.objects()
        }
        for batch in batches[3:]:
            service.process_batch(batch)
        # The previously published table was never mutated in place.
        assert old.second == 3
        assert {
            obj: old.table.distribution_of(obj) for obj in old.table.objects()
        } == old_objects

    def test_before_first_tick(self, service):
        assert service.snapshot().second == -1
        assert service.query_range(service.plan.bounds).probabilities == {}


class TestScheduler:
    def test_drains_queue_and_counts_ticks(self, service, replay_readings):
        queue = BoundedQueue(maxsize=4)
        feeder = SourceFeeder(ReplaySource(replay_readings, max_seconds=10), queue)
        scheduler = EpochScheduler(service, queue, clock=ManualClock())
        feeder.start()
        processed = scheduler.run()
        feeder.join(5.0)
        assert processed == 10
        assert service.ticks == 10
        assert service.last_second == 10

    def test_max_ticks_stops_early(self, service, replay_readings):
        queue = BoundedQueue(maxsize=4)
        feeder = SourceFeeder(ReplaySource(replay_readings, max_seconds=10), queue)
        scheduler = EpochScheduler(service, queue, clock=ManualClock())
        feeder.start()
        assert scheduler.run(max_ticks=4) == 4
        assert service.ticks == 4
        queue.close()
        feeder.join(5.0)

    def test_tick_interval_paces_with_injected_clock(self, service, replay_readings):
        clock = ManualClock()
        queue = BoundedQueue(maxsize=4)
        feeder = SourceFeeder(ReplaySource(replay_readings, max_seconds=3), queue)
        scheduler = EpochScheduler(service, queue, tick_interval=0.5, clock=clock)
        feeder.start()
        scheduler.run()
        feeder.join(5.0)
        # The loop never touched real wall-clock sleep: all pacing went
        # through the injected clock.
        assert len(clock.sleeps) == 3
        assert all(s <= 0.5 for s in clock.sleeps)

    def test_rejects_negative_interval(self, service):
        with pytest.raises(ValueError):
            EpochScheduler(service, BoundedQueue(), tick_interval=-1.0)
