"""The ``repro gateway`` subcommand and the gateway bench workload."""

import pytest

from repro import obs
from repro.cli import main

FAST = [
    "gateway",
    "--demo-tenants", "2",
    "--plan", "small",
    "--objects", "4",
    "--transport", "inline",
]


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _delta_lines(out):
    return [line for line in out.splitlines() if "[t=" in line]


class TestGatewayCommand:
    def test_run_and_checkpoint(self, tmp_path, capsys):
        directory = tmp_path / "ck"
        code = main(
            FAST + [
                "--partitions", "2",
                "--seconds", "4",
                "--quiet",
                "--checkpoint-dir", str(directory),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served 4 second(s) x 2 tenant(s) over 2 partition(s) [ok]" in out
        assert f"checkpoint -> {directory}" in out
        assert (directory / "gateway.manifest.json").exists()

    def test_restore_at_a_different_partition_count(self, tmp_path, capsys):
        directory = tmp_path / "ck"
        assert main(
            FAST + [
                "--partitions", "2",
                "--seconds", "3",
                "--quiet",
                "--checkpoint-dir", str(directory),
            ]
        ) == 0
        capsys.readouterr()
        code = main(
            FAST + [
                "--restore",
                "--checkpoint-dir", str(directory),
                "--partitions", "3",
                "--seconds", "2",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "restored 2 tenant(s)" in out
        assert "at 3 partition(s)" in out
        assert "served 2 second(s)" in out

    def test_restore_defaults_to_the_checkpointed_partitions(
        self, tmp_path, capsys
    ):
        directory = tmp_path / "ck"
        assert main(
            FAST + [
                "--partitions", "2",
                "--seconds", "2",
                "--quiet",
                "--checkpoint-dir", str(directory),
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            FAST + [
                "--restore",
                "--checkpoint-dir", str(directory),
                "--seconds", "1",
                "--quiet",
            ]
        ) == 0
        assert "at 2 partition(s)" in capsys.readouterr().out

    def test_restore_needs_checkpoint_dir(self):
        with pytest.raises(SystemExit):
            main(FAST + ["--restore", "--seconds", "1"])

    def test_partition_counts_print_identical_deltas(self, capsys):
        runs = {}
        for partitions in ("1", "2"):
            assert main(
                FAST + [
                    "--partitions", partitions,
                    "--seconds", "5",
                    "--range", "0,0,12,12",
                    "--knn", "5,5,2",
                ]
            ) == 0
            runs[partitions] = _delta_lines(capsys.readouterr().out)
        assert runs["1"], "expected at least one standing-query delta"
        assert runs["1"] == runs["2"]

    def test_analytics_flag(self, capsys):
        assert main(
            FAST + [
                "--partitions", "2",
                "--seconds", "3",
                "--quiet",
                "--analytics",
            ]
        ) == 0
        assert "analytics_epochs=3" in capsys.readouterr().out

    def test_bad_shed_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(FAST + ["--seconds", "1", "--shed-policy", "panic"])


class TestGatewayBenchWorkload:
    def test_registered_in_the_suite(self):
        from repro.bench.suite import _WORKLOADS

        assert "gateway_throughput" in {name for name, _fn in _WORKLOADS}

    def test_smoke_run_shape_and_determinism(self):
        from repro.bench.suite import _WORKLOADS

        fn = dict(_WORKLOADS)["gateway_throughput"]
        results = []
        for _ in range(2):
            obs.disable()
            obs.reset()
            results.append(fn("smoke", 7))
        first, second = results
        assert first.name == "gateway_throughput"
        # The gated work counters are integral and run-to-run stable.
        assert first.work == second.work
        assert first.digest == second.digest
        assert first.work["gateway.ticks"] > 0
        assert first.work["gateway.subticks"] > 0
        assert first.work["gateway.queries"] > 0
        assert first.work["tenants"] == 2
        assert first.work["partitions"] == 2
        # Machine-dependent numbers live in stats, outside the gate.
        for key in ("queries_per_second", "p50_latency_ms", "p99_latency_ms"):
            assert key in first.stats
        document = first.as_dict()
        assert "stats" in document
        assert set(document["stats"]) == set(first.stats)
