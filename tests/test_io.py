"""Tests for persistence: floor plans, deployments, reading logs, rows."""

import pytest

from repro.floorplan import paper_office_plan, small_test_plan
from repro.floorplan.plan import FloorPlanError
from repro.io import (
    deployment_from_dict,
    deployment_to_dict,
    floorplan_from_dict,
    floorplan_to_dict,
    load_deployment,
    load_floorplan,
    load_rows_json,
    read_readings_csv,
    save_deployment,
    save_floorplan,
    save_rows_csv,
    save_rows_json,
    write_readings_csv,
)
from repro.io.readings_csv import group_readings_by_second
from repro.rfid import deploy_readers_uniform
from repro.rfid.readings import RawReading


class TestFloorplanJson:
    def test_roundtrip_dict(self):
        plan = paper_office_plan()
        clone = floorplan_from_dict(floorplan_to_dict(plan))
        assert len(clone.rooms) == len(plan.rooms)
        assert len(clone.hallways) == len(plan.hallways)
        for original, copy in zip(plan.rooms, clone.rooms):
            assert original.boundary == copy.boundary
            assert original.door.position == copy.door.position

    def test_roundtrip_file(self, tmp_path):
        plan = small_test_plan()
        path = tmp_path / "plan.json"
        save_floorplan(plan, path)
        clone = load_floorplan(path)
        assert clone.bounds == plan.bounds
        assert [r.room_id for r in clone.rooms] == [r.room_id for r in plan.rooms]

    def test_wrong_format_rejected(self):
        with pytest.raises(FloorPlanError, match="not a repro-floorplan"):
            floorplan_from_dict({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self):
        data = floorplan_to_dict(small_test_plan())
        data["version"] = 99
        with pytest.raises(FloorPlanError, match="version"):
            floorplan_from_dict(data)

    def test_invalid_plan_revalidated(self):
        data = floorplan_to_dict(small_test_plan())
        # Stretch a room so it overlaps its neighbour.
        data["rooms"][0]["boundary"] = [0.0, 0.0, 12.0, 4.0]
        with pytest.raises(FloorPlanError, match="overlap"):
            floorplan_from_dict(data)


class TestDeploymentJson:
    def test_roundtrip(self, tmp_path):
        readers = deploy_readers_uniform(paper_office_plan(), 19, 2.0)
        path = tmp_path / "deployment.json"
        save_deployment(readers, path)
        clone = load_deployment(path)
        assert clone == readers

    def test_duplicate_ids_rejected(self):
        data = deployment_to_dict(
            deploy_readers_uniform(paper_office_plan(), 3, 2.0)
        )
        data["readers"].append(dict(data["readers"][0]))
        with pytest.raises(ValueError, match="duplicate"):
            deployment_from_dict(data)

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            deployment_from_dict({"format": "nope", "version": 1})


class TestReadingsCsv:
    def _readings(self):
        return [
            RawReading(0.15, "tag1", "d1"),
            RawReading(0.35, "tag2", "d2"),
            RawReading(1.05, "tag1", "d1"),
        ]

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "readings.csv"
        write_readings_csv(self._readings(), path)
        clone = read_readings_csv(path)
        assert len(clone) == 3
        assert clone[0].tag_id == "tag1"
        assert clone[0].time == pytest.approx(0.15)

    def test_sorted_on_read(self, tmp_path):
        path = tmp_path / "readings.csv"
        write_readings_csv(list(reversed(self._readings())), path)
        clone = read_readings_csv(path)
        times = [r.time for r in clone]
        assert times == sorted(times)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="header"):
            read_readings_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_readings_csv(path)

    def test_bad_row_rejected(self, tmp_path):
        path = tmp_path / "bad_row.csv"
        path.write_text("time,tag_id,reader_id\nnot-a-number,t,d\n")
        with pytest.raises(ValueError, match="bad time"):
            read_readings_csv(path)

    def test_group_by_second(self):
        groups = list(group_readings_by_second(self._readings()))
        assert [second for second, _ in groups] == [0, 1]
        assert len(groups[0][1]) == 2

    def test_replay_into_collector(self, tmp_path):
        from repro.collector import EventDrivenCollector

        path = tmp_path / "log.csv"
        write_readings_csv(self._readings(), path)
        collector = EventDrivenCollector({"tag1": "o1", "tag2": "o2"})
        for second, batch in group_readings_by_second(read_readings_csv(path)):
            collector.ingest_second(second, batch)
        assert collector.last_detection("o1") == ("d1", 1)


class TestResultRows:
    def test_csv(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "c": "x"}]
        path = tmp_path / "rows.csv"
        save_rows_csv(rows, path)
        text = path.read_text()
        assert text.splitlines()[0] == "a,b,c"
        assert "3" in text

    def test_csv_empty(self, tmp_path):
        path = tmp_path / "rows.csv"
        save_rows_csv([], path)
        assert path.read_text() == ""

    def test_json_roundtrip(self, tmp_path):
        rows = [{"a": 1}, {"a": 2}]
        path = tmp_path / "rows.json"
        save_rows_json(rows, path)
        assert load_rows_json(path) == rows

    def test_json_rejects_non_array(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"a": 1}')
        with pytest.raises(ValueError):
            load_rows_json(path)
