"""The gateway's HTTP/JSON surface, exercised over a real socket."""

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.gateway import (
    GatewayCoordinator,
    GatewayServer,
    TenantWorld,
    demo_tenants,
)
from repro.service import LiveSimSource
from repro.sim import Simulation

SECONDS = 5


def _specs():
    return demo_tenants(2, base_seed=31, num_objects=4, plan="small")


def _request(url, method="GET", body=None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url,
        method=method,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        payload = error.read()
        try:
            return error.code, json.loads(payload)
        except json.JSONDecodeError:
            return error.code, payload.decode("utf-8", "replace")


def _request_text(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


@pytest.fixture(scope="module")
def gateway():
    """A ticked 2-tenant inline deployment behind a live HTTP server."""
    coordinator = GatewayCoordinator(_specs(), 2, transport="inline")
    coordinator.enable_analytics()
    for spec in _specs():
        world = TenantWorld(spec)
        sim = Simulation(
            world.config, plan=world.plan, readers=world.readers,
            build_symbolic=False,
        )
        for batch in LiveSimSource(sim, SECONDS).batches():
            coordinator.process_batch(spec.tenant_id, batch)
    server = GatewayServer(coordinator).start()
    yield server.url, coordinator
    server.stop()
    coordinator.close()


class TestReadEndpoints:
    def test_root_directory(self, gateway):
        url, _ = gateway
        status, doc = _request(url + "/")
        assert status == 200
        assert "/query/range" in doc["endpoints"]

    def test_healthz_ok(self, gateway):
        url, _ = gateway
        status, doc = _request(url + "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["dead_partitions"] == 0
        assert set(doc["tenants"]) == {"tenant-0", "tenant-1"}

    def test_readyz(self, gateway):
        url, _ = gateway
        status, doc = _request(url + "/readyz")
        assert status == 200
        assert doc["ready"] is True

    def test_metrics_reports_obs_disabled(self, gateway):
        url, _ = gateway
        assert not obs.enabled()
        status, body = _request_text(url + "/metrics")
        assert status == 200
        assert "observability disabled" in body

    def test_tenants_directory(self, gateway):
        url, _ = gateway
        status, doc = _request(url + "/tenants")
        assert status == 200
        records = {record["tenant_id"]: record for record in doc["tenants"]}
        assert set(records) == {"tenant-0", "tenant-1"}
        for record in records.values():
            assert record["plan"] == "small"
            assert record["ticks"] == SECONDS

    def test_range_matches_coordinator(self, gateway):
        url, coordinator = gateway
        status, doc = _request(
            url + "/query/range?tenant=tenant-0"
            "&min_x=0&min_y=0&max_x=12&max_y=12"
        )
        assert status == 200
        from repro.geometry import Rect

        direct = coordinator.query_range("tenant-0", Rect(0, 0, 12, 12))
        assert doc["probabilities"] == pytest.approx(direct.probabilities)
        assert doc["second"] == SECONDS

    def test_knn(self, gateway):
        url, _ = gateway
        status, doc = _request(url + "/query/knn?tenant=tenant-1&x=5&y=5&k=2")
        assert status == 200
        assert doc["ranked"]
        probabilities = [p for _oid, p in doc["ranked"]]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_analytics_summary(self, gateway):
        url, _ = gateway
        for tenant_id in ("tenant-0", "tenant-1"):
            status, doc = _request(url + f"/analytics?tenant={tenant_id}")
            assert status == 200
            assert doc["summary"]["epochs"] == SECONDS


class TestSessions:
    def test_open_poll_close(self, gateway):
        url, _ = gateway
        status, doc = _request(
            url + "/sessions",
            method="POST",
            body={"tenant": "tenant-0", "kind": "range", "window": [0, 0, 12, 12]},
        )
        assert status == 201
        session_id = doc["session_id"]
        status, doc = _request(
            url + f"/sessions?tenant=tenant-0&id={session_id}"
        )
        assert status == 200
        assert isinstance(doc["result"], dict)
        status, doc = _request(url + "/sessions?tenant=tenant-0")
        assert status == 200
        assert session_id in {s["session_id"] for s in doc["sessions"]}
        status, doc = _request(
            url + f"/sessions?tenant=tenant-0&id={session_id}", method="DELETE"
        )
        assert status == 200
        assert doc["closed"] == session_id

    def test_knn_session(self, gateway):
        url, _ = gateway
        status, doc = _request(
            url + "/sessions",
            method="POST",
            body={"tenant": "tenant-1", "kind": "knn", "point": [5, 5], "k": 2},
        )
        assert status == 201
        _request(
            url + f"/sessions?tenant=tenant-1&id={doc['session_id']}",
            method="DELETE",
        )


class TestErrorMapping:
    def test_unknown_route_404(self, gateway):
        url, _ = gateway
        assert _request(url + "/nope")[0] == 404

    def test_unknown_tenant_404(self, gateway):
        url, _ = gateway
        status, doc = _request(url + "/analytics?tenant=nobody")
        assert status == 404
        assert "nobody" in doc["error"]

    def test_missing_parameter_400(self, gateway):
        url, _ = gateway
        status, doc = _request(url + "/query/range?tenant=tenant-0&min_x=0")
        assert status == 400
        assert "min_y" in doc["error"]

    def test_non_numeric_parameter_400(self, gateway):
        url, _ = gateway
        status, _ = _request(
            url + "/query/knn?tenant=tenant-0&x=a&y=5&k=2"
        )
        assert status == 400

    def test_bad_k_400(self, gateway):
        url, _ = gateway
        status, _ = _request(url + "/query/knn?tenant=tenant-0&x=5&y=5&k=0")
        assert status == 400

    def test_bad_session_body_400(self, gateway):
        url, _ = gateway
        status, _ = _request(
            url + "/sessions",
            method="POST",
            body={"tenant": "tenant-0", "kind": "range"},  # no window
        )
        assert status == 400
        status, _ = _request(
            url + "/sessions",
            method="POST",
            body={"tenant": "tenant-0", "kind": "median"},
        )
        assert status == 400

    def test_delete_unknown_session_404(self, gateway):
        url, _ = gateway
        status, _ = _request(
            url + "/sessions?tenant=tenant-0&id=ghost", method="DELETE"
        )
        assert status == 404


class TestDegradedServing:
    def test_healthz_503_but_queries_still_answer(self):
        coordinator = GatewayCoordinator(_specs(), 2, transport="inline")
        spec = _specs()[0]
        world = TenantWorld(spec)
        sim = Simulation(
            world.config, plan=world.plan, readers=world.readers,
            build_symbolic=False,
        )
        batches = list(LiveSimSource(sim, 3).batches())
        other = _specs()[1]
        other_world = TenantWorld(other)
        other_sim = Simulation(
            other_world.config, plan=other_world.plan,
            readers=other_world.readers, build_symbolic=False,
        )
        other_batches = list(LiveSimSource(other_sim, 3).batches())
        with GatewayServer(coordinator) as server:
            try:
                for step in range(2):
                    coordinator.process_batch(spec.tenant_id, batches[step])
                    coordinator.process_batch(other.tenant_id, other_batches[step])
                coordinator.submit_tick(spec.tenant_id, batches[2])
                coordinator.submit_tick(other.tenant_id, other_batches[2])
                coordinator.handles[0].kill()
                coordinator.collect_tick()
                coordinator.collect_tick()
                status, doc = _request(server.url + "/healthz")
                assert status == 503
                assert doc["status"] == "degraded"
                assert doc["dead_partitions"] == 1
                status, doc = _request(
                    server.url + "/query/range?tenant=tenant-0"
                    "&min_x=0&min_y=0&max_x=12&max_y=12"
                )
                assert status == 200
            finally:
                coordinator.close()

    def test_analytics_off_is_404(self):
        coordinator = GatewayCoordinator(_specs(), 1, transport="inline")
        with GatewayServer(coordinator) as server:
            try:
                status, doc = _request(server.url + "/analytics?tenant=tenant-0")
                assert status == 404
                assert "not enabled" in doc["error"]
            finally:
                coordinator.close()
