"""The gateway coordinator: the bit-identity guarantee and degradation.

The acceptance property of the gateway (mirroring the shard guarantee
in ``test_service_shards``): a multi-tenant run partitioned across 1,
2, or 4 workers produces snapshots, standing-query deltas, and query
answers identical to a single-process ``TrackingService`` per tenant —
because every filter run draws from a ``(seed, second, object_id)`` RNG
stream, placement cannot change the output.
"""

import pytest

from repro.gateway import (
    GatewayCoordinator,
    GatewayError,
    TenantSpec,
    TenantWorld,
    demo_tenants,
)
from repro.geometry import Point, Rect
from repro.service import LiveSimSource, TrackingService
from repro.sim import Simulation

SECONDS = 8
WINDOW = Rect(0.0, 0.0, 12.0, 12.0)
KNN_POINT = Point(5.0, 5.0)
KNN_K = 3


def _specs():
    return demo_tenants(2, base_seed=11, num_objects=5, plan="small")


def _batches(spec, seconds=SECONDS):
    world = TenantWorld(spec)
    sim = Simulation(
        world.config, plan=world.plan, readers=world.readers,
        build_symbolic=False,
    )
    return list(LiveSimSource(sim, seconds).batches())


@pytest.fixture(scope="module")
def tenant_batches():
    return {spec.tenant_id: _batches(spec) for spec in _specs()}


def _delta_key(delta):
    return (delta.query_id, delta.second, delta.entered, delta.left, delta.updated)


@pytest.fixture(scope="module")
def reference(tenant_batches):
    """Single-process per-tenant runs: final tables + session deltas."""
    tables = {}
    deltas = {}
    for spec in _specs():
        world = TenantWorld(spec)
        service = TrackingService(
            world.config,
            plan=world.plan,
            readers=world.readers,
            num_shards=1,
            mode="serial",
            use_cache=True,
            seed=spec.seed,
            filter_backend=spec.filter_backend,
        )
        service.sessions.subscribe_range(WINDOW, session_id="r0")
        service.sessions.subscribe_knn(KNN_POINT, KNN_K, session_id="k0")
        collected = []
        for batch in tenant_batches[spec.tenant_id]:
            collected.extend(service.process_batch(batch))
        table = service.snapshot().table
        tables[spec.tenant_id] = {
            obj: table.distribution_of(obj) for obj in sorted(table.objects())
        }
        deltas[spec.tenant_id] = [_delta_key(d) for d in collected]
        service.close()
    return {"tables": tables, "deltas": deltas}


def _run_gateway(tenant_batches, num_partitions, transport="inline"):
    coordinator = GatewayCoordinator(
        _specs(), num_partitions=num_partitions, transport=transport
    )
    deltas = {tid: [] for tid in tenant_batches}
    try:
        for spec in _specs():
            coordinator.subscribe_range(spec.tenant_id, WINDOW, session_id="r0")
            coordinator.subscribe_knn(
                spec.tenant_id, KNN_POINT, KNN_K, session_id="k0"
            )
        for step in range(SECONDS):
            for tid in tenant_batches:
                coordinator.submit_tick(tid, tenant_batches[tid][step])
            for _ in tenant_batches:
                tid, _second, tick_deltas = coordinator.collect_tick()
                deltas[tid].extend(_delta_key(d) for d in tick_deltas)
        tables = {}
        for tid in tenant_batches:
            table = coordinator.latest_snapshot(tid).table
            tables[tid] = {
                obj: table.distribution_of(obj)
                for obj in sorted(table.objects())
            }
        return coordinator, tables, deltas
    except BaseException:
        coordinator.close()
        raise


class TestBitIdentity:
    @pytest.mark.parametrize("num_partitions", [1, 2, 4])
    def test_inline_matches_single_process(
        self, tenant_batches, reference, num_partitions
    ):
        coordinator, tables, deltas = _run_gateway(
            tenant_batches, num_partitions
        )
        coordinator.close()
        assert tables == reference["tables"]
        assert deltas == reference["deltas"]

    def test_process_transport_matches_single_process(
        self, tenant_batches, reference
    ):
        coordinator, tables, deltas = _run_gateway(
            tenant_batches, 2, transport="process"
        )
        coordinator.close()
        assert tables == reference["tables"]
        assert deltas == reference["deltas"]

    def test_tenant_isolation(self, tenant_batches, reference):
        """Dropping a tenant does not perturb the survivors' output."""
        spec = _specs()[0]
        coordinator = GatewayCoordinator(
            [spec], num_partitions=2, transport="inline"
        )
        with coordinator:
            for step in range(SECONDS):
                coordinator.process_batch(
                    spec.tenant_id, tenant_batches[spec.tenant_id][step]
                )
            table = coordinator.latest_snapshot(spec.tenant_id).table
            alone = {
                obj: table.distribution_of(obj)
                for obj in sorted(table.objects())
            }
        assert alone == reference["tables"][spec.tenant_id]


class TestQueries:
    def test_range_and_knn_answer_from_merged_snapshot(self, tenant_batches):
        coordinator, _tables, _deltas = _run_gateway(tenant_batches, 2)
        with coordinator:
            for spec in _specs():
                plan = TenantWorld(spec).plan
                box = plan.bounds
                result = coordinator.query_range(
                    spec.tenant_id,
                    Rect(box.min_x, box.min_y, box.max_x, box.max_y),
                )
                # Whole-plan window: every tracked object is fully inside.
                assert result.probabilities
                assert all(
                    p == pytest.approx(1.0)
                    for p in result.probabilities.values()
                )
                knn = coordinator.query_knn(spec.tenant_id, KNN_POINT, 2)
                ranked = knn.ranked()
                # Probabilistic kNN: every candidate with its membership
                # probability, ranked descending (not truncated to k).
                assert ranked
                probs = [p for _object_id, p in ranked]
                assert probs == sorted(probs, reverse=True)

    def test_unknown_tenant_is_rejected(self, tenant_batches):
        with GatewayCoordinator(_specs(), 2, transport="inline") as coordinator:
            with pytest.raises(KeyError):
                coordinator.query_knn("nobody", KNN_POINT, 1)
            with pytest.raises(KeyError):
                coordinator.submit_tick(
                    "nobody", tenant_batches["tenant-0"][0]
                )

    def test_collect_without_submit_is_an_error(self):
        with GatewayCoordinator(_specs(), 2, transport="inline") as coordinator:
            with pytest.raises(GatewayError):
                coordinator.collect_tick()


class TestDegradation:
    def test_dead_worker_degrades_but_still_answers(self, tenant_batches):
        coordinator, _tables, _deltas = _run_gateway(tenant_batches, 2)
        with coordinator:
            assert coordinator.health()["status"] == "ok"
            before = coordinator.latest_snapshot("tenant-0").table.objects()
            # Regenerate the next second: LiveSimSource batches above
            # only cover SECONDS ticks, so extend from a fresh sim.
            extended = {
                spec.tenant_id: _batches(spec, SECONDS + 1)
                for spec in _specs()
            }
            for tid, batches in extended.items():
                coordinator.submit_tick(tid, batches[SECONDS])
            # Die *between* submit and collect: the fan-in barrier must
            # complete the tick as partial over the survivors.
            coordinator.handles[0].kill()
            for _ in extended:
                coordinator.collect_tick()
            health = coordinator.health()
            assert health["status"] == "degraded"
            assert health["dead_partitions"] == 1
            for record in health["tenants"].values():
                assert record["partial_ticks"] == 1
            # Queries keep answering over the surviving slice.
            result = coordinator.query_range("tenant-0", WINDOW)
            after = coordinator.latest_snapshot("tenant-0").table.objects()
            assert result is not None
            assert set(after) <= set(before)
            assert after  # partition 1's slice survived

    def test_shed_bookkeeping_unblocks_the_barrier(self, tenant_batches):
        """A recorded shed removes the partition from the tick barrier."""
        coordinator = GatewayCoordinator(_specs(), 2, transport="inline")
        with coordinator:
            tid = "tenant-0"
            batch = tenant_batches[tid][0]
            coordinator.submit_tick(tid, batch)
            entry = coordinator._pending[0]
            victim = entry.parts[0]
            coordinator._record_shed(tid, batch.second, victim)
            assert victim not in entry.parts
            assert coordinator.health()["tenants"][tid]["shed_subticks"] == 1
            # The barrier completes from the remaining partition alone.
            collected_tid, second, _ = coordinator.collect_tick()
            assert (collected_tid, second) == (tid, batch.second)


class TestValidation:
    def test_duplicate_tenants_rejected(self):
        spec = TenantSpec(tenant_id="t", seed=1, plan="small")
        with pytest.raises(ValueError):
            GatewayCoordinator([spec, spec], 2, transport="inline")

    def test_bad_transport_rejected(self):
        with pytest.raises(ValueError):
            GatewayCoordinator(_specs(), 2, transport="carrier-pigeon")

    def test_tenant_spec_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(tenant_id="", seed=1)
        with pytest.raises(ValueError):
            TenantSpec(tenant_id="a/b", seed=1)
        with pytest.raises(ValueError):
            TenantSpec(tenant_id="t", seed=1, plan="atlantis")
        with pytest.raises(ValueError):
            TenantSpec(tenant_id="t", seed=1, num_objects=0)
