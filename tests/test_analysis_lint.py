"""repro.analysis: invariant linter framework + built-in rule set.

Rule behavior is exercised against the fixture modules in
``tests/fixtures/lint/`` — one per rule, each containing ``violating_*``
functions (every one must draw that rule's finding) and ``compliant_*``
functions (none may). Fixtures are parsed under virtual ``src/repro/...``
paths, never imported.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    Severity,
    lint_paths,
    lint_source,
    parse_pragmas,
    rule_ids,
    to_document,
)
from repro.analysis.registry import RuleMeta, register_rule
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO_SRC = Path(__file__).parent.parent / "src"

#: fixture file -> (rule id, virtual path it is linted under)
FIXTURE_CASES = {
    "det_fixture.py": ("DET", "src/repro/service/det_fixture.py"),
    "clk_fixture.py": ("CLK", "src/repro/service/clk_fixture.py"),
    "thr_fixture.py": ("THR", "src/repro/service/thr_fixture.py"),
    "fp_fixture.py": ("FP", "src/repro/geometry/fp_fixture.py"),
    "io_fixture.py": ("IO", "src/repro/service/io_fixture.py"),
}


def _function_spans(source: str):
    """(name, first line, last line) of every top-level function/method."""
    spans = []
    for node in ast.walk(ast.parse(source)):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            spans.append((node.name, node.lineno, node.end_lineno))
    return spans


@pytest.mark.parametrize("fixture_name", sorted(FIXTURE_CASES))
def test_rule_fixture(fixture_name):
    rule_id, virtual_path = FIXTURE_CASES[fixture_name]
    source = (FIXTURES / fixture_name).read_text(encoding="utf-8")
    result = lint_source(source, path=virtual_path, only=[rule_id])
    findings = result.sorted_findings()
    assert all(f.rule == rule_id for f in findings)

    flagged_lines = {f.line for f in findings}
    for name, first, last in _function_spans(source):
        hits = {line for line in flagged_lines if first <= line <= last}
        if name.startswith("violating_"):
            assert hits, f"{fixture_name}:{name} drew no {rule_id} finding"
        elif name.startswith(("compliant_", "pragmad_")):
            assert not hits, (
                f"{fixture_name}:{name} drew unexpected finding(s) "
                f"on line(s) {sorted(hits)}"
            )


def test_det_fixture_flags_module_import():
    source = (FIXTURES / "det_fixture.py").read_text(encoding="utf-8")
    result = lint_source(source, path="src/repro/service/det_fixture.py", only=["DET"])
    assert any("import of stdlib `random`" in f.message for f in result.findings)


def test_fp_fixture_pragma_is_counted():
    source = (FIXTURES / "fp_fixture.py").read_text(encoding="utf-8")
    result = lint_source(source, path="src/repro/geometry/fp_fixture.py", only=["FP"])
    assert result.suppressed == 1


def test_fixtures_out_of_scope_are_clean():
    """The same sources draw nothing outside the packages the rules guard."""
    for fixture_name in FIXTURE_CASES:
        source = (FIXTURES / fixture_name).read_text(encoding="utf-8")
        result = lint_source(source, path=f"tests/fixtures/lint/{fixture_name}")
        assert result.findings == []


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------
VIOLATING_CLK = "import time\n\n\ndef f() -> float:\n    return time.time(){pragma}\n"


def test_line_pragma_suppresses_named_rule():
    source = VIOLATING_CLK.format(pragma="  # repro-lint: disable=CLK -- why")
    result = lint_source(source, path="src/repro/service/x.py")
    assert result.findings == []
    assert result.suppressed == 1


def test_line_pragma_all_suppresses_everything():
    source = VIOLATING_CLK.format(pragma="  # repro-lint: disable=all")
    result = lint_source(source, path="src/repro/service/x.py")
    assert result.findings == []


def test_line_pragma_other_rule_does_not_suppress():
    source = VIOLATING_CLK.format(pragma="  # repro-lint: disable=DET")
    result = lint_source(source, path="src/repro/service/x.py")
    assert [f.rule for f in result.findings] == ["CLK"]
    assert result.suppressed == 0


def test_file_pragma_in_header_window():
    source = "# repro-lint: disable-file=CLK\n" + VIOLATING_CLK.format(pragma="")
    result = lint_source(source, path="src/repro/service/x.py")
    assert result.findings == []
    assert result.suppressed == 1


def test_file_pragma_past_header_window_is_inert():
    filler = "\n" * 15
    source = filler + "# repro-lint: disable-file=CLK\n" + VIOLATING_CLK.format(pragma="")
    result = lint_source(source, path="src/repro/service/x.py")
    assert [f.rule for f in result.findings] == ["CLK"]


def test_parse_pragmas_index():
    index = parse_pragmas(
        ["x = 1  # repro-lint: disable=DET,THR", "# repro-lint: disable-file=FP"]
    )
    assert index.line_rules[1] == frozenset({"DET", "THR"})
    assert index.file_rules == frozenset({"FP"})


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
def _clk_findings(extra: str = ""):
    source = VIOLATING_CLK.format(pragma="") + extra
    return lint_source(source, path="src/repro/service/x.py").sorted_findings()


def test_baseline_round_trip(tmp_path):
    findings = _clk_findings()
    baseline_path = str(tmp_path / "baseline.json")
    Baseline.from_findings(findings).save(baseline_path)

    loaded = Baseline.load(baseline_path)
    diff = loaded.subtract(findings)
    assert diff.new == []
    assert diff.matched == len(findings)
    assert diff.stale == 0


def test_baseline_reports_only_new_findings(tmp_path):
    old = _clk_findings()
    baseline_path = str(tmp_path / "baseline.json")
    Baseline.from_findings(old).save(baseline_path)

    new_source_findings = _clk_findings(
        extra="\n\ndef g() -> None:\n    time.sleep(1.0)\n"
    )
    diff = Baseline.load(baseline_path).subtract(new_source_findings)
    assert len(diff.new) == 1
    assert "time.sleep" in diff.new[0].message


def test_baseline_counts_stale_entries(tmp_path):
    old = _clk_findings(extra="\n\ndef g() -> None:\n    time.sleep(1.0)\n")
    baseline_path = str(tmp_path / "baseline.json")
    Baseline.from_findings(old).save(baseline_path)

    diff = Baseline.load(baseline_path).subtract(_clk_findings())
    assert diff.new == []
    assert diff.stale == 1  # the fixed sleep() entry no longer matches


def test_baseline_multiplicity(tmp_path):
    """One baselined finding forgives one occurrence, not every future one."""
    findings = _clk_findings()
    baseline_path = str(tmp_path / "baseline.json")
    Baseline.from_findings(findings).save(baseline_path)

    doubled = findings + findings
    diff = Baseline.load(baseline_path).subtract(doubled)
    assert len(diff.new) == len(findings)


def test_baseline_rejects_foreign_document(tmp_path):
    path = tmp_path / "not_a_baseline.json"
    path.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(ValueError):
        Baseline.load(str(path))


def test_baseline_paths_are_machine_independent(tmp_path):
    finding = Finding(
        rule="CLK",
        severity=Severity.ERROR,
        path="/home/alice/checkouts/repo/src/repro/service/x.py",
        line=5,
        col=11,
        message="m",
    )
    baseline_path = str(tmp_path / "baseline.json")
    Baseline.from_findings([finding]).save(baseline_path)

    other_machine = Finding(
        rule="CLK",
        severity=Severity.ERROR,
        path="C:\\ci\\build\\src\\repro\\service\\x.py",
        line=9,  # lines may drift; fingerprints ignore them
        col=0,
        message="m",
    )
    diff = Baseline.load(baseline_path).subtract([other_machine])
    assert diff.new == []


# ----------------------------------------------------------------------
# reporters, registry, framework
# ----------------------------------------------------------------------
def test_json_document_schema():
    source = VIOLATING_CLK.format(pragma="")
    result = lint_source(source, path="src/repro/service/x.py")
    document = to_document(result)
    assert document["format"] == "repro-lint"
    assert document["version"] == 1
    assert {r["id"] for r in document["rules"]} == {
        "DET", "CLK", "THR", "FP", "IO",
        "ARCH", "SEED", "SCHEMA", "LOCKORDER",
    }
    (finding,) = document["findings"]
    assert set(finding) == {"rule", "severity", "path", "line", "col", "message"}
    assert document["summary"]["errors"] == 1
    assert document["summary"]["total"] == 1


def test_builtin_rule_ids():
    assert rule_ids() == [
        "ARCH", "CLK", "DET", "FP", "IO", "LOCKORDER", "SCHEMA", "SEED", "THR",
    ]


def test_duplicate_rule_id_rejected():
    with pytest.raises(ValueError, match="duplicate rule id"):

        @register_rule
        class Clone:
            META = RuleMeta(rule_id="DET", title="", invariant="")

            def check(self, module):
                return []


def test_syntax_error_is_a_finding_not_a_crash():
    result = lint_source("def broken(:\n", path="src/repro/service/x.py")
    assert [f.rule for f in result.findings] == ["SYNTAX"]
    assert result.findings[0].severity is Severity.ERROR


def test_unknown_rule_id_raises():
    with pytest.raises(KeyError, match="unknown rule"):
        lint_source("x = 1\n", path="src/repro/service/x.py", only=["NOPE"])


# ----------------------------------------------------------------------
# the repo itself
# ----------------------------------------------------------------------
def test_repo_is_invariant_clean():
    """src/repro carries zero non-pragma'd findings — the PR-gate invariant."""
    result = lint_paths([str(REPO_SRC / "repro")])
    assert result.sorted_findings() == []
    assert result.files_checked > 90


def test_injected_unseeded_rng_in_shards_is_caught():
    """The acceptance scenario: an unseeded Random() in repro.service.shards."""
    shards_path = REPO_SRC / "repro" / "service" / "shards.py"
    source = shards_path.read_text(encoding="utf-8")
    sabotaged = source.replace(
        "import itertools", "import itertools\nimport random", 1
    ).replace(
        "rng = filter_run_rng(seed,",
        "rng = random.Random()  # sabotage\n        rng = filter_run_rng(seed,",
        1,
    )
    assert sabotaged != source
    result = lint_source(sabotaged, path=str(shards_path))
    assert any(
        f.rule == "DET" and "unseeded `random.Random()`" in f.message
        for f in result.findings
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _write_violating_tree(root: Path) -> Path:
    target = root / "repro" / "service"
    target.mkdir(parents=True)
    bad = target / "bad.py"
    bad.write_text(
        "import random\n\n\ndef f() -> float:\n    return random.random()\n",
        encoding="utf-8",
    )
    return root


def test_cli_lint_json_reports_det_and_fails(tmp_path, capsys):
    tree = _write_violating_tree(tmp_path)
    code = main(
        ["lint", "--format", "json", "--baseline", str(tmp_path / "b.json"), str(tree)]
    )
    document = json.loads(capsys.readouterr().out)
    assert code == 1
    assert document["format"] == "repro-lint"
    assert {f["rule"] for f in document["findings"]} == {"DET"}


def test_cli_lint_write_baseline_then_clean(tmp_path, capsys):
    tree = _write_violating_tree(tmp_path)
    baseline = str(tmp_path / "baseline.json")
    assert main(["lint", "--write-baseline", "--baseline", baseline, str(tree)]) == 0
    capsys.readouterr()
    assert main(["lint", "--baseline", baseline, str(tree)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out


def test_cli_lint_rules_filter(tmp_path, capsys):
    tree = _write_violating_tree(tmp_path)
    baseline = str(tmp_path / "unused.json")
    assert main(["lint", "--rules", "CLK", "--baseline", baseline, str(tree)]) == 0
    capsys.readouterr()


def test_cli_lint_repo_exits_zero(capsys):
    assert main(["lint", str(REPO_SRC / "repro")]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET", "CLK", "THR", "FP", "IO"):
        assert rule_id in out
