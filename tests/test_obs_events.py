"""Epoch event log and Chrome trace export."""

import json

import pytest

from repro import obs
from repro.obs.chrometrace import (
    build_chrome_trace,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.obs.events import (
    EVENTS_FORMAT,
    EVENTS_VERSION,
    EpochEventRecorder,
    EpochEventWriter,
    read_events,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
    obs.set_clock(__import__("time").perf_counter)


class FakeClock:
    def __init__(self, tick=1.0, start=0.0):
        self.tick = tick
        self.now = start

    def __call__(self):
        self.now += self.tick
        return self.now


# ----------------------------------------------------------------------
# writer / reader
# ----------------------------------------------------------------------
class TestEventWriter:
    def test_header_then_records(self, tmp_path):
        path = tmp_path / "events.jsonl"
        writer = EpochEventWriter(str(path))
        writer.write({"tick": 1})
        writer.write({"tick": 2})
        writer.close()
        header, records = read_events(str(path))
        assert header == {"format": EVENTS_FORMAT, "version": EVENTS_VERSION}
        assert [r["tick"] for r in records] == [1, 2]
        assert writer.records_written == 2

    def test_close_is_idempotent(self, tmp_path):
        writer = EpochEventWriter(str(tmp_path / "e.jsonl"))
        writer.close()
        writer.close()

    def test_read_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            read_events(str(path))


# ----------------------------------------------------------------------
# rotation
# ----------------------------------------------------------------------
class TestRotation:
    def _fill(self, writer, n, start=0):
        for index in range(start, start + n):
            writer.write({"tick": index, "pad": "x" * 40})

    def test_rotates_at_byte_threshold(self, tmp_path):
        path = tmp_path / "events.jsonl"
        writer = EpochEventWriter(str(path), rotate_bytes=300)
        self._fill(writer, 20)
        writer.close()
        assert writer.rotations >= 1
        assert (tmp_path / "events.jsonl.1").exists()
        # Live file still starts with a header and stays under-ish the cap
        # (rotation happens before the write that would exceed it).
        header, records = read_events(str(path))
        assert header["format"] == EVENTS_FORMAT
        assert records  # newest records live in the unsuffixed file

    def test_generations_shift_and_keep_n_prunes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        writer = EpochEventWriter(str(path), rotate_bytes=150, keep=2)
        self._fill(writer, 40)
        writer.close()
        assert writer.rotations > 2
        assert (tmp_path / "events.jsonl.1").exists()
        assert (tmp_path / "events.jsonl.2").exists()
        assert not (tmp_path / "events.jsonl.3").exists()

    def test_every_generation_has_a_header(self, tmp_path):
        path = tmp_path / "events.jsonl"
        writer = EpochEventWriter(str(path), rotate_bytes=200, keep=3)
        self._fill(writer, 30)
        writer.close()
        generations = [str(path)] + [
            str(tmp_path / f"events.jsonl.{i}")
            for i in range(1, 4)
            if (tmp_path / f"events.jsonl.{i}").exists()
        ]
        assert len(generations) >= 2
        all_ticks = []
        for generation in generations:
            header, records = read_events(generation)
            assert header == {
                "format": EVENTS_FORMAT, "version": EVENTS_VERSION,
            }
            all_ticks.extend(r["tick"] for r in records)
        # Newer generations hold newer ticks; nothing retained twice.
        assert len(all_ticks) == len(set(all_ticks))
        assert max(all_ticks) == 29

    def test_rotate_mb_converts_to_bytes(self, tmp_path):
        writer = EpochEventWriter(
            str(tmp_path / "e.jsonl"), rotate_mb=1.0
        )
        assert writer.rotate_bytes == 1024 * 1024
        writer.close()

    def test_no_rotation_without_limit(self, tmp_path):
        writer = EpochEventWriter(str(tmp_path / "e.jsonl"))
        self._fill(writer, 50)
        writer.close()
        assert writer.rotations == 0
        assert not (tmp_path / "e.jsonl.1").exists()

    def test_rejects_bad_rotation_config(self, tmp_path):
        with pytest.raises(ValueError):
            EpochEventWriter(str(tmp_path / "a.jsonl"), rotate_bytes=0)
        with pytest.raises(ValueError):
            EpochEventWriter(str(tmp_path / "b.jsonl"), keep=0)


# ----------------------------------------------------------------------
# per-epoch deltas
# ----------------------------------------------------------------------
class TestEventRecorder:
    def test_records_are_deltas_not_cumulative(self, tmp_path):
        obs.enable()
        path = tmp_path / "events.jsonl"
        writer = EpochEventWriter(str(path))
        recorder = EpochEventRecorder(writer, obs.registry())

        obs.add("service.ticks")
        obs.add("cache.hits", 3)
        recorder.record_epoch(second=1, tick=1, wall_seconds=0.5)
        obs.add("cache.hits", 1)
        obs.add("cache.misses", 1)
        recorder.record_epoch(second=2, tick=2, wall_seconds=0.25)
        writer.close()

        _, records = read_events(str(path))
        assert records[0]["cache"] == {
            "hits": 3, "misses": 0, "hit_ratio": 1.0,
        }
        assert records[1]["cache"] == {
            "hits": 1, "misses": 1, "hit_ratio": 0.5,
        }
        assert records[0]["counters"]["service.ticks"] == 1
        assert "service.ticks" not in records[1]["counters"]

    def test_accuracy_proxies_per_epoch(self, tmp_path):
        obs.enable()
        writer = EpochEventWriter(str(tmp_path / "e.jsonl"))
        recorder = EpochEventRecorder(writer, obs.registry())
        obs.observe("filter.ess", 10.0)
        obs.observe("filter.ess", 30.0)
        obs.add("filter.kalman.pruned_hypotheses", 4)
        obs.observe("filter.kalman.entropy", 0.7)
        recorder.record_epoch(second=1, tick=1, wall_seconds=0.1)
        obs.observe("filter.ess", 50.0)
        recorder.record_epoch(second=2, tick=2, wall_seconds=0.1)
        writer.close()
        _, records = read_events(str(writer.path))
        assert records[0]["accuracy"]["ess_mean"] == pytest.approx(20.0)
        assert records[0]["accuracy"]["kalman_pruned"] == 4
        assert records[0]["accuracy"]["kalman_entropy_mean"] == pytest.approx(0.7)
        assert records[1]["accuracy"]["ess_mean"] == pytest.approx(50.0)
        assert records[1]["accuracy"]["kalman_pruned"] == 0

    def test_shard_and_phase_timings(self, tmp_path):
        obs.enable()
        obs.set_clock(FakeClock(tick=1.0))
        writer = EpochEventWriter(str(tmp_path / "e.jsonl"))
        recorder = EpochEventRecorder(writer, obs.registry())
        with obs.timer("filter.predict"):
            pass
        with obs.timer("service.shard_time", labels={"shard": 0}):
            pass
        recorder.record_epoch(second=1, tick=1, wall_seconds=0.5)
        writer.close()
        _, records = read_events(str(writer.path))
        assert records[0]["phases"]["filter.predict"] == pytest.approx(1.0)
        assert records[0]["shards"]["0"] == pytest.approx(1.0)
        assert records[0]["wall_seconds"] == 0.5

    def test_writerless_recorder_still_returns_records(self):
        obs.enable()
        recorder = EpochEventRecorder(None, obs.registry())
        obs.add("cache.hits", 2)
        record = recorder.record_epoch(second=1, tick=1, wall_seconds=0.1)
        assert record["cache"]["hits"] == 2
        # Baseline still rolls forward without a sink.
        record = recorder.record_epoch(second=2, tick=2, wall_seconds=0.1)
        assert record["cache"]["hits"] == 0

    def test_ess_collapse_frac(self):
        obs.enable()
        recorder = EpochEventRecorder(None, obs.registry())
        obs.observe("filter.ess", 40.0)
        obs.observe("filter.ess", 1.0)
        obs.add("filter.ess_collapses")
        record = recorder.record_epoch(second=1, tick=1, wall_seconds=0.1)
        assert record["accuracy"]["ess_collapse_frac"] == pytest.approx(0.5)
        record = recorder.record_epoch(second=2, tick=2, wall_seconds=0.1)
        assert record["accuracy"]["ess_collapse_frac"] is None

    def test_accuracy_provider_fields_merged(self, tmp_path):
        obs.enable()
        writer = EpochEventWriter(str(tmp_path / "e.jsonl"))
        recorder = EpochEventRecorder(
            writer,
            obs.registry(),
            accuracy_provider=lambda: {
                "occupancy_error_mean": 0.25,
                "occupancy_rooms_compared": 6,
            },
        )
        recorder.record_epoch(second=1, tick=1, wall_seconds=0.1)
        writer.close()
        _, records = read_events(str(writer.path))
        accuracy = records[0]["accuracy"]
        assert accuracy["occupancy_error_mean"] == 0.25
        assert accuracy["occupancy_rooms_compared"] == 6
        assert "ess_mean" in accuracy  # built-ins are not displaced


# ----------------------------------------------------------------------
# scheduler integration
# ----------------------------------------------------------------------
class TestSchedulerEventLog:
    def test_one_record_per_tick_and_health(self, tmp_path):
        from repro.config import DEFAULT_CONFIG
        from repro.service import (
            BoundedQueue,
            EpochScheduler,
            LiveSimSource,
            SourceFeeder,
            TrackingService,
        )
        from repro.service.scheduler import ManualClock
        from repro.sim import Simulation

        obs.enable()
        config = DEFAULT_CONFIG.with_overrides(
            num_objects=4, seed=11, observability=False
        )
        path = tmp_path / "epochs.jsonl"
        writer = EpochEventWriter(str(path))
        service = TrackingService(config, num_shards=2, mode="serial", seed=11)
        sim = Simulation(config, build_symbolic=False)
        queue = BoundedQueue(maxsize=8)
        feeder = SourceFeeder(LiveSimSource(sim, 5), queue)
        scheduler = EpochScheduler(
            service,
            queue,
            clock=ManualClock(),
            event_recorder=EpochEventRecorder(writer, obs.registry()),
        )
        feeder.start()
        try:
            ticks = scheduler.run()
        finally:
            queue.close()
            feeder.join(timeout=10.0)
            service.close()
            writer.close()

        assert ticks == 5
        _, records = read_events(str(path))
        assert len(records) == 5
        assert [r["tick"] for r in records] == [1, 2, 3, 4, 5]
        assert all("phases" in r and "queue" in r for r in records)

        health = scheduler.health()
        assert health["status"] == "ok"
        assert health["ticks"] == 5
        assert health["shards"]["num_shards"] == 2
        assert health["filter_backend"] == "particle"
        assert scheduler.ready() is True

    def test_health_stall_detection(self):
        from repro.service import BoundedQueue, EpochScheduler
        from repro.service.scheduler import ManualClock

        class _StubExecutor:
            def shard_health(self):
                return {"num_shards": 1}

            class filter_backend:
                name = "particle"

        class _StubService:
            executor = _StubExecutor()
            last_second = 3

            def snapshot(self):
                from repro.index.hashtable import AnchorObjectTable

                class _S:
                    table = AnchorObjectTable()

                return _S()

            @property
            def sessions(self):
                return []

        clock = ManualClock()
        scheduler = EpochScheduler(_StubService(), BoundedQueue(), clock=clock)
        assert scheduler.ready() is False
        scheduler.ticks_run = 1
        scheduler.last_tick_at = clock.now()
        clock.advance(100.0)
        assert scheduler.health()["status"] == "ok"
        assert scheduler.health(stall_after=50.0)["status"] == "stalled"
        assert scheduler.health(stall_after=500.0)["status"] == "ok"


# ----------------------------------------------------------------------
# chrome trace export
# ----------------------------------------------------------------------
class TestChromeTrace:
    def _snapshot(self):
        obs.enable()
        obs.set_clock(FakeClock(tick=0.5))
        with obs.span("service.tick", second=3):
            with obs.span("engine.filter"):
                pass
        return obs.snapshot()

    def test_events_are_complete_events_in_microseconds(self):
        events = chrome_trace_events(self._snapshot())
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2
        for event in xs:
            assert event["cat"] == "repro"
            assert event["pid"] == 0
            assert isinstance(event["tid"], int)
            assert event["dur"] > 0
        child = next(e for e in xs if e["name"] == "engine.filter")
        parent = next(e for e in xs if e["name"] == "service.tick")
        assert parent["ts"] <= child["ts"]
        assert parent["args"]["second"] == 3

    def test_metadata_event_names_process(self):
        events = chrome_trace_events(self._snapshot())
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)

    def test_document_shape_and_file_roundtrip(self, tmp_path):
        snap = self._snapshot()
        doc = build_chrome_trace(snap)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        path = tmp_path / "trace.json"
        write_chrome_trace(snap, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"] == json.loads(json.dumps(doc["traceEvents"]))

    def test_open_spans_are_skipped(self):
        obs.enable()
        tracer = obs.tracer()
        span = tracer.span("open.span")
        span.__enter__()
        events = chrome_trace_events(obs.snapshot())
        assert all(e["name"] != "open.span" for e in events if e["ph"] == "X")
        span.__exit__(None, None, None)
