"""The ``repro serve`` subcommand, end to end through main()."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    """A recorded world: plan, deployment, and a 20-second reading log."""
    root = tmp_path_factory.mktemp("serve-world")
    log = root / "readings.csv"
    plan = root / "plan.json"
    deployment = root / "deployment.json"
    assert main(
        [
            "simulate",
            "--objects", "8",
            "--seconds", "20",
            "--seed", "5",
            "--readings", str(log),
            "--plan", str(plan),
            "--deployment", str(deployment),
        ]
    ) == 0
    return {"log": log, "plan": plan, "deployment": deployment}


def _serve(world, *extra):
    return main(
        [
            "serve",
            "--replay", str(world["log"]),
            "--plan", str(world["plan"]),
            "--deployment", str(world["deployment"]),
            *extra,
        ]
    )


class TestServeReplay:
    def test_replay_with_standing_queries(self, world, capsys):
        code = _serve(
            world, "--shards", "2", "--range", "4,0,30,12", "--knn", "30,5,3"
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "standing query range-0" in out
        assert "standing query knn-0" in out
        assert "served 20 ticks" in out
        assert "[t=" in out  # at least one delta printed

    def test_quiet_suppresses_deltas(self, world, capsys):
        code = _serve(world, "--range", "4,0,30,12", "--quiet", "--seconds", "5")
        assert code == 0
        out = capsys.readouterr().out
        assert "[t=" not in out
        assert "served 5 ticks" in out

    def test_shard_counts_print_identical_deltas(self, world, capsys):
        _serve(world, "--range", "4,0,30,12", "--knn", "30,5,3", "--shards", "1")
        one = capsys.readouterr().out
        _serve(world, "--range", "4,0,30,12", "--knn", "30,5,3", "--shards", "4")
        four = capsys.readouterr().out
        assert [l for l in one.splitlines() if l.startswith("[t=")] == [
            l for l in four.splitlines() if l.startswith("[t=")
        ]

    def test_bad_range_spec(self, world):
        with pytest.raises(SystemExit):
            _serve(world, "--range", "1,2,3")

    def test_trace_output(self, world, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        code = _serve(
            world, "--range", "4,0,30,12", "--quiet",
            "--seconds", "5", "--trace", str(trace),
        )
        assert code == 0
        data = json.loads(trace.read_text())
        assert data["meta"]["command"] == "serve"
        histograms = {h["name"] for h in data["metrics"]["histograms"]}
        assert "service.tick_latency" in histograms
        assert "service.filter_tick" in histograms
        counters = {c["name"] for c in data["metrics"]["counters"]}
        assert "service.ticks" in counters


class TestServeCheckpoint:
    def test_checkpoint_restore_round_trip(self, world, tmp_path, capsys):
        ckpt = tmp_path / "ckpt.json"
        # Uninterrupted run for reference.
        _serve(world, "--range", "4,0,30,12", "--shards", "2")
        reference = [
            l for l in capsys.readouterr().out.splitlines() if l.startswith("[t=")
        ]
        # First half, checkpointing every 5 ticks.
        code = _serve(
            world, "--range", "4,0,30,12", "--seconds", "10",
            "--checkpoint", str(ckpt), "--checkpoint-interval", "5",
        )
        assert code == 0
        first_half = capsys.readouterr().out
        assert f"checkpoint -> {ckpt}" in first_half
        state = json.loads(ckpt.read_text())
        assert state["format"] == "repro-service-checkpoint"
        # Restore and resume over the same log.
        code = _serve(world, "--restore", str(ckpt), "--shards", "4")
        assert code == 0
        resumed = capsys.readouterr().out
        assert "restored from" in resumed
        assert "served 10 ticks" in resumed
        resumed_deltas = [
            l for l in resumed.splitlines() if l.startswith("[t=")
        ]
        # The resumed ticks reproduce the uninterrupted run exactly.
        tail = [
            l for l in reference
            if int(l.split("]")[0].split("=")[1]) > 10
        ]
        assert resumed_deltas == tail

    def test_live_mode(self, capsys):
        code = main(
            ["serve", "--live", "--objects", "5", "--seconds", "6",
             "--range", "4,0,30,12", "--quiet"]
        )
        assert code == 0
        assert "served 6 ticks" in capsys.readouterr().out


class TestServeFilterBackends:
    def test_kalman_backend_serves(self, world, capsys):
        code = _serve(
            world, "--filter", "kalman", "--range", "4,0,30,12",
            "--quiet", "--seconds", "6",
        )
        assert code == 0
        assert "served 6 ticks" in capsys.readouterr().out

    def test_restore_refuses_mismatched_filter(self, world, tmp_path, capsys):
        ckpt = tmp_path / "ckpt.json"
        code = _serve(
            world, "--seconds", "5", "--quiet", "--checkpoint", str(ckpt)
        )
        assert code == 0
        capsys.readouterr()
        code = _serve(
            world, "--restore", str(ckpt), "--filter", "kalman", "--quiet"
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "produced by filter backend 'particle'" in captured.err
        assert "--filter particle" in captured.err

    def test_restore_adopts_checkpoint_backend(self, world, tmp_path, capsys):
        ckpt = tmp_path / "ckpt.json"
        code = _serve(
            world, "--filter", "kalman", "--seconds", "5", "--quiet",
            "--checkpoint", str(ckpt),
        )
        assert code == 0
        capsys.readouterr()
        code = _serve(world, "--restore", str(ckpt), "--quiet")
        assert code == 0
        out = capsys.readouterr().out
        assert "filter kalman" in out
