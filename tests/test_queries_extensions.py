"""Tests for the future-work extensions: continuous queries, closest
pairs, threshold kNN results, and the negative-information filter."""

import numpy as np
import pytest

from repro.collector.collector import DeviceRun, ReadingHistory
from repro.config import DEFAULT_CONFIG
from repro.core import CompiledGraph, ParticleFilter
from repro.geometry import Point, Rect
from repro.index import AnchorObjectTable
from repro.queries import (
    ContinuousQueryMonitor,
    KNNResult,
    evaluate_closest_pairs,
)
from repro.rfid import RFIDReader
from repro.sim import Simulation

FAST = DEFAULT_CONFIG.with_overrides(
    num_objects=12, duration_seconds=40, warmup_seconds=20
)


class TestContinuousMonitor:
    @pytest.fixture(scope="class")
    def simulation(self):
        sim = Simulation(FAST)
        sim.run_until(30)
        return sim

    def test_first_tick_reports_entries(self, simulation):
        monitor = ContinuousQueryMonitor(simulation.pf_engine)
        monitor.add_range_query("whole", simulation.plan.bounds)
        deltas = monitor.tick(30, rng=simulation.pf_rng)
        assert len(deltas) == 1
        assert deltas[0].query_id == "whole"
        assert deltas[0].entered  # everyone enters a building-wide window
        assert not deltas[0].left
        simulation.pf_engine.clear_queries()

    def test_stable_result_produces_empty_delta(self, simulation):
        monitor = ContinuousQueryMonitor(
            simulation.pf_engine, report_threshold=0.0, min_change=2.0
        )
        monitor.add_range_query("whole", simulation.plan.bounds)
        monitor.tick(30, rng=simulation.pf_rng)
        second = monitor.tick(30, rng=simulation.pf_rng)
        assert second[0].is_empty or not second[0].entered
        simulation.pf_engine.clear_queries()

    def test_objects_leave_as_world_moves(self, simulation):
        monitor = ContinuousQueryMonitor(simulation.pf_engine)
        monitor.add_range_query("strip", Rect(4, 4, 20, 6))
        first = monitor.tick(30, rng=simulation.pf_rng)
        simulation.run_until(55)
        later = monitor.tick(55, rng=simulation.pf_rng)
        # Over 25 s the population of a narrow hallway strip changes.
        assert first[0].entered != later[0].entered or later[0].left
        simulation.pf_engine.clear_queries()

    def test_knn_monitoring(self, simulation):
        monitor = ContinuousQueryMonitor(simulation.pf_engine)
        monitor.add_knn_query("k", Point(30, 5), 2)
        deltas = monitor.tick(simulation.now, rng=simulation.pf_rng)
        assert deltas[0].entered
        simulation.pf_engine.clear_queries()

    def test_works_with_symbolic_engine(self, simulation):
        monitor = ContinuousQueryMonitor(simulation.sm_engine)
        monitor.add_range_query("whole", simulation.plan.bounds)
        deltas = monitor.tick(simulation.now)
        assert deltas[0].entered
        simulation.sm_engine.clear_queries()

    def test_rejects_time_reversal(self, simulation):
        monitor = ContinuousQueryMonitor(simulation.pf_engine)
        monitor.add_range_query("whole", simulation.plan.bounds)
        monitor.tick(simulation.now, rng=simulation.pf_rng)
        with pytest.raises(ValueError):
            monitor.tick(simulation.now - 10, rng=simulation.pf_rng)
        simulation.pf_engine.clear_queries()

    def test_parameter_validation(self, simulation):
        with pytest.raises(ValueError):
            ContinuousQueryMonitor(simulation.pf_engine, report_threshold=1.0)
        with pytest.raises(ValueError):
            ContinuousQueryMonitor(simulation.pf_engine, min_change=-0.1)

    def test_current_result(self, simulation):
        monitor = ContinuousQueryMonitor(simulation.pf_engine)
        monitor.add_range_query("whole", simulation.plan.bounds)
        monitor.tick(simulation.now, rng=simulation.pf_rng)
        assert monitor.current_result("whole")
        assert monitor.current_result("ghost") == {}
        simulation.pf_engine.clear_queries()


class TestClosestPairs:
    def _table(self, anchors, placements):
        table = AnchorObjectTable()
        for object_id, point in placements.items():
            anchor = anchors.nearest(point)
            table.set_distribution(object_id, {anchor.ap_id: 1.0})
        return table

    def test_finds_adjacent_pair(self, small_graph, small_anchors):
        table = self._table(
            small_anchors,
            {"a": Point(2, 5), "b": Point(3, 5), "c": Point(18, 5)},
        )
        pairs = evaluate_closest_pairs(small_graph, small_anchors, table, m=1)
        assert len(pairs) == 1
        assert {pairs[0].object_a, pairs[0].object_b} == {"a", "b"}
        assert pairs[0].expected_distance == pytest.approx(1.0, abs=0.2)

    def test_m_pairs_ordered(self, small_graph, small_anchors):
        table = self._table(
            small_anchors,
            {"a": Point(2, 5), "b": Point(3, 5), "c": Point(10, 5), "d": Point(12, 5)},
        )
        pairs = evaluate_closest_pairs(small_graph, small_anchors, table, m=2)
        assert len(pairs) == 2
        assert pairs[0].expected_distance <= pairs[1].expected_distance
        assert {pairs[0].object_a, pairs[0].object_b} == {"a", "b"}
        assert {pairs[1].object_a, pairs[1].object_b} == {"c", "d"}

    def test_expected_distance_of_spread_distributions(self, small_graph, small_anchors):
        table = AnchorObjectTable()
        left = small_anchors.nearest(Point(4, 5))
        right = small_anchors.nearest(Point(6, 5))
        table.set_distribution("a", {left.ap_id: 0.5, right.ap_id: 0.5})
        table.set_distribution("b", {left.ap_id: 0.5, right.ap_id: 0.5})
        pairs = evaluate_closest_pairs(small_graph, small_anchors, table, m=1)
        # E[d] = 0.5*0 + 0.5*2 = 1.0 (two anchors 2 m apart).
        assert pairs[0].expected_distance == pytest.approx(1.0, abs=0.05)

    def test_fewer_than_two_objects(self, small_graph, small_anchors):
        table = self._table(small_anchors, {"a": Point(2, 5)})
        assert evaluate_closest_pairs(small_graph, small_anchors, table) == []

    def test_rejects_bad_parameters(self, small_graph, small_anchors):
        table = self._table(small_anchors, {"a": Point(2, 5), "b": Point(3, 5)})
        with pytest.raises(ValueError):
            evaluate_closest_pairs(small_graph, small_anchors, table, m=0)
        with pytest.raises(ValueError):
            evaluate_closest_pairs(small_graph, small_anchors, table, top_anchors=0)

    def test_matches_bruteforce(self, small_graph, small_anchors):
        rng = np.random.default_rng(4)
        table = AnchorObjectTable()
        anchors = small_anchors.anchors
        for i in range(6):
            picks = rng.integers(0, len(anchors), size=3)
            masses = rng.random(3)
            masses /= masses.sum()
            table.set_distribution(
                f"o{i}", {int(anchors[p].ap_id): float(w) for p, w in zip(picks, masses)}
            )
        pairs = evaluate_closest_pairs(small_graph, small_anchors, table, m=1)

        def expected(a, b):
            total = 0.0
            for ap_a, p_a in table.distribution_of(a).items():
                for ap_b, p_b in table.distribution_of(b).items():
                    total += p_a * p_b * small_graph.distance(
                        small_anchors.anchor(ap_a).location,
                        small_anchors.anchor(ap_b).location,
                    )
            return total

        objects = sorted(table.objects())
        brute = min(
            (expected(a, b), a, b)
            for i, a in enumerate(objects)
            for b in objects[i + 1:]
        )
        assert {pairs[0].object_a, pairs[0].object_b} == {brute[1], brute[2]}
        assert pairs[0].expected_distance == pytest.approx(brute[0], rel=1e-6)


class TestThresholdKnn:
    def test_above_threshold(self):
        result = KNNResult("q", {"a": 0.9, "b": 0.4, "c": 0.05})
        assert result.above_threshold(0.5) == ["a"]
        assert result.above_threshold(0.3) == ["a", "b"]
        assert result.above_threshold(0.0) == ["a", "b", "c"]

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            KNNResult("q", {}).above_threshold(1.5)


class TestNegativeInformation:
    def test_silence_pushes_mass_out_of_covered_space(self, small_graph):
        readers = {
            "d1": RFIDReader("d1", Point(3.0, 5.0), 2.0, "H1"),
            "d2": RFIDReader("d2", Point(10.0, 5.0), 2.0, "H1"),
            "d3": RFIDReader("d3", Point(17.0, 5.0), 2.0, "H1"),
        }
        compiled = CompiledGraph(small_graph)
        history = ReadingHistory("o1", (DeviceRun("d2", [0, 1]),))

        def covered_mass(config, seed):
            pf = ParticleFilter(compiled, readers, config)
            result = pf.run(history, current_second=20, rng=np.random.default_rng(seed))
            mask = pf.sensing.in_any_range_mask(result.particles)
            return result.particles.weight[mask].sum()

        base = DEFAULT_CONFIG
        negative = DEFAULT_CONFIG.with_overrides(use_negative_information=True)
        base_mass = np.mean([covered_mass(base, s) for s in range(5)])
        negative_mass = np.mean([covered_mass(negative, s) for s in range(5)])
        # With 19 silent seconds of evidence, covered-space mass must shrink.
        assert negative_mass < base_mass

    def test_negative_likelihood_validated(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_overrides(negative_likelihood=0.0)
