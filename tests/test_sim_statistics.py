"""Tests for run and deployment statistics."""

import pytest

from repro.collector import EventDrivenCollector
from repro.floorplan import paper_office_plan
from repro.rfid import RFIDReader, deploy_readers_uniform
from repro.rfid.readings import RawReading
from repro.geometry import Point
from repro.sim.statistics import (
    hallway_coverage_fraction,
    staleness_snapshot,
    tracking_statistics,
)

TAGS = {"tag1": "o1", "tag2": "o2", "tag3": "o3"}


def raw(second, tag, reader):
    return [RawReading(second + 0.5, tag, reader)]


class TestStaleness:
    def _collector(self):
        collector = EventDrivenCollector(TAGS)
        collector.ingest_second(0, raw(0, "tag1", "d1"))
        collector.ingest_second(5, raw(5, "tag2", "d2"))
        collector.ingest_second(10, raw(10, "tag1", "d3"))
        return collector

    def test_snapshot_sorted(self):
        collector = self._collector()
        assert staleness_snapshot(collector, 10) == [0, 5]

    def test_never_seen_excluded(self):
        collector = self._collector()
        assert len(staleness_snapshot(collector, 10)) == 2  # o3 never seen

    def test_tracking_statistics(self):
        collector = self._collector()
        stats = tracking_statistics(collector, 10, num_objects=3)
        assert stats.observed_objects == 2
        assert stats.currently_detected == 1
        assert stats.mean_staleness == pytest.approx(2.5)
        assert stats.max_staleness == 5
        assert stats.observed_fraction == pytest.approx(2 / 3)
        assert stats.detected_fraction == pytest.approx(0.5)

    def test_empty_collector(self):
        stats = tracking_statistics(EventDrivenCollector(TAGS), 5, 3)
        assert stats.observed_objects == 0
        assert stats.mean_staleness is None
        assert stats.observed_fraction == 0.0
        assert stats.detected_fraction == 0.0


class TestCoverage:
    def test_paper_deployment_partial_coverage(self):
        plan = paper_office_plan()
        readers = deploy_readers_uniform(plan, 19, 2.0)
        fraction = hallway_coverage_fraction(plan, readers)
        # 19 readers x ~4 m of chord over 156 m of hallway: about half.
        assert 0.4 < fraction < 0.6

    def test_coverage_grows_with_range(self):
        plan = paper_office_plan()
        small = hallway_coverage_fraction(
            plan, deploy_readers_uniform(plan, 19, 0.5)
        )
        large = hallway_coverage_fraction(
            plan, deploy_readers_uniform(plan, 19, 2.5)
        )
        assert small < large

    def test_no_readers(self):
        plan = paper_office_plan()
        assert hallway_coverage_fraction(plan, []) == 0.0

    def test_overlapping_readers_not_double_counted(self):
        plan = paper_office_plan()
        # Two readers at the same spot cover the same chord once.
        reader = RFIDReader("d1", Point(30, 5), 2.0)
        twin = RFIDReader("d2", Point(30, 5), 2.0)
        single = hallway_coverage_fraction(plan, [reader])
        double = hallway_coverage_fraction(plan, [reader, twin])
        assert double == pytest.approx(single)

    def test_full_coverage_possible(self):
        plan = paper_office_plan()
        blanket = [
            RFIDReader(f"b{i}", Point(4 + i * 2.0, 5.0), 100.0)
            for i in range(3)
        ]
        assert hallway_coverage_fraction(plan, blanket) == pytest.approx(1.0)
