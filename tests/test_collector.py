"""Tests for aggregation, the collector retention policy, and events."""

import pytest

from repro.collector import (
    EventDrivenCollector,
    EventKind,
    aggregate_second,
)
from repro.rfid.readings import RawReading

TAGS = {"tag1": "o1", "tag2": "o2"}


def raw(second, tag, reader, count=3):
    return [
        RawReading(second + (i + 0.5) / 10, tag, reader) for i in range(count)
    ]


class TestAggregation:
    def test_single_object(self):
        result = aggregate_second(5, raw(5, "tag1", "d1"), TAGS)
        assert result["o1"].reader_id == "d1"
        assert result["o1"].second == 5

    def test_majority_reader_wins(self):
        readings = raw(0, "tag1", "d1", count=2) + raw(0, "tag1", "d2", count=5)
        result = aggregate_second(0, readings, TAGS)
        assert result["o1"].reader_id == "d2"

    def test_tie_breaks_by_reader_id(self):
        readings = raw(0, "tag1", "d2", count=3) + raw(0, "tag1", "d1", count=3)
        result = aggregate_second(0, readings, TAGS)
        assert result["o1"].reader_id == "d1"

    def test_unknown_tags_ignored(self):
        result = aggregate_second(0, raw(0, "ghost", "d1"), TAGS)
        assert result == {}

    def test_wrong_second_rejected(self):
        with pytest.raises(ValueError):
            aggregate_second(1, raw(0, "tag1", "d1"), TAGS)

    def test_empty(self):
        assert aggregate_second(0, [], TAGS) == {}


class TestCollectorRetention:
    def test_single_run(self):
        collector = EventDrivenCollector(TAGS)
        collector.ingest_second(0, raw(0, "tag1", "d1"))
        collector.ingest_second(1, raw(1, "tag1", "d1"))
        history = collector.history("o1")
        assert len(history.runs) == 1
        assert history.runs[0].reader_id == "d1"
        assert history.runs[0].seconds == [0, 1]
        assert history.first_second == 0
        assert history.last_second == 1
        assert history.latest_reader_id == "d1"
        assert history.previous_reader_id is None

    def test_two_runs(self):
        collector = EventDrivenCollector(TAGS)
        collector.ingest_second(0, raw(0, "tag1", "d1"))
        collector.ingest_second(5, raw(5, "tag1", "d2"))
        history = collector.history("o1")
        assert [run.reader_id for run in history.runs] == ["d1", "d2"]
        assert history.previous_reader_id == "d1"
        assert history.initial_reader_id == "d1"

    def test_third_device_evicts_oldest(self):
        collector = EventDrivenCollector(TAGS)
        collector.ingest_second(0, raw(0, "tag1", "d1"))
        collector.ingest_second(5, raw(5, "tag1", "d2"))
        collector.ingest_second(9, raw(9, "tag1", "d3"))
        history = collector.history("o1")
        assert [run.reader_id for run in history.runs] == ["d2", "d3"]
        assert history.first_second == 5

    def test_same_device_reappearing_extends_run(self):
        collector = EventDrivenCollector(TAGS)
        collector.ingest_second(0, raw(0, "tag1", "d1"))
        collector.ingest_second(1, raw(1, "tag1", "d1"))
        collector.ingest_second(7, raw(7, "tag1", "d1"))  # gap, same device
        history = collector.history("o1")
        assert len(history.runs) == 1
        assert history.runs[0].seconds == [0, 1, 7]

    def test_device_bounce_keeps_two_runs(self):
        collector = EventDrivenCollector(TAGS)
        collector.ingest_second(0, raw(0, "tag1", "d1"))
        collector.ingest_second(4, raw(4, "tag1", "d2"))
        collector.ingest_second(8, raw(8, "tag1", "d1"))
        history = collector.history("o1")
        assert [run.reader_id for run in history.runs] == ["d2", "d1"]

    def test_empty_history(self):
        collector = EventDrivenCollector(TAGS)
        assert collector.history("o1").is_empty
        assert collector.last_detection("o1") is None

    def test_out_of_order_ingestion_rejected(self):
        collector = EventDrivenCollector(TAGS)
        collector.ingest_second(5, raw(5, "tag1", "d1"))
        with pytest.raises(ValueError):
            collector.ingest_second(5, raw(5, "tag1", "d1"))
        with pytest.raises(ValueError):
            collector.ingest_second(3, raw(3, "tag1", "d1"))

    def test_last_detection(self):
        collector = EventDrivenCollector(TAGS)
        collector.ingest_second(0, raw(0, "tag1", "d1"))
        collector.ingest_second(6, raw(6, "tag1", "d2"))
        assert collector.last_detection("o1") == ("d2", 6)

    def test_observed_objects(self):
        collector = EventDrivenCollector(TAGS)
        collector.ingest_second(0, raw(0, "tag1", "d1") + raw(0, "tag2", "d3"))
        assert sorted(collector.observed_objects()) == ["o1", "o2"]

    def test_device_generation_bumps_on_new_device_only(self):
        collector = EventDrivenCollector(TAGS)
        collector.ingest_second(0, raw(0, "tag1", "d1"))
        g1 = collector.device_generation("o1")
        collector.ingest_second(1, raw(1, "tag1", "d1"))
        assert collector.device_generation("o1") == g1
        collector.ingest_second(2, raw(2, "tag1", "d2"))
        assert collector.device_generation("o1") == g1 + 1


class TestHistoryEntries:
    def _history(self):
        collector = EventDrivenCollector(TAGS)
        collector.ingest_second(0, raw(0, "tag1", "d1"))
        collector.ingest_second(1, raw(1, "tag1", "d1"))
        collector.ingest_second(4, raw(4, "tag1", "d2"))
        return collector.history("o1")

    def test_entries_cover_span_with_gaps(self):
        entries = self._history().entries()
        assert [e.second for e in entries] == [0, 1, 2, 3, 4]
        assert [e.reader_id for e in entries] == ["d1", "d1", None, None, "d2"]

    def test_reading_at(self):
        history = self._history()
        assert history.reading_at(0) == "d1"
        assert history.reading_at(2) is None
        assert history.reading_at(4) == "d2"
        assert history.reading_at(99) is None


class TestEvents:
    def test_enter_leave_sequence(self):
        collector = EventDrivenCollector(TAGS)
        collector.ingest_second(0, raw(0, "tag1", "d1"))
        collector.ingest_second(1, raw(1, "tag1", "d1"))
        collector.ingest_second(5, raw(5, "tag1", "d2"))
        events = collector.events_for("o1")
        kinds = [(e.kind, e.reader_id, e.second) for e in events]
        assert kinds == [
            (EventKind.ENTER, "d1", 0),
            (EventKind.LEAVE, "d1", 1),
            (EventKind.ENTER, "d2", 5),
        ]

    def test_events_multiple_objects(self):
        collector = EventDrivenCollector(TAGS)
        collector.ingest_second(0, raw(0, "tag1", "d1") + raw(0, "tag2", "d2"))
        assert len(collector.events()) == 2
        assert len(collector.events_for("o1")) == 1


class TestDeviceRun:
    def test_rejects_out_of_order_seconds(self):
        from repro.collector import DeviceRun

        run = DeviceRun("d1", [3])
        with pytest.raises(ValueError):
            run.add(3)
        run.add(4)
        assert run.first_second == 3
        assert run.last_second == 4
