"""Tests for the symbolic model: cells, device types, inference."""

import pytest

from repro.collector.collector import DeviceRun, ReadingHistory
from repro.config import DEFAULT_CONFIG
from repro.geometry import Point
from repro.rfid import RFIDReader
from repro.symbolic import (
    DeviceType,
    SymbolicLocationModel,
    build_deployment_graph,
)
from repro.symbolic.cells import anchor_cells


@pytest.fixture(scope="module")
def small_readers():
    return [
        RFIDReader("d1", Point(3.0, 5.0), 2.0, "H1"),
        RFIDReader("d2", Point(10.0, 5.0), 2.0, "H1"),
        RFIDReader("d3", Point(17.0, 5.0), 2.0, "H1"),
    ]


@pytest.fixture(scope="module")
def small_deployment(small_graph, small_readers):
    return build_deployment_graph(small_graph, small_readers)


@pytest.fixture(scope="module")
def small_model(small_graph, small_anchors, small_readers):
    return SymbolicLocationModel(
        small_graph, small_anchors, small_readers, DEFAULT_CONFIG
    )


def history(*runs):
    return ReadingHistory(
        "o1", tuple(DeviceRun(reader, list(seconds)) for reader, seconds in runs)
    )


class TestCells:
    def test_cell_count_small_plan(self, small_deployment):
        # Hallway 0..20 with readers at 3, 10, 17 (range 2) leaves free
        # stretches [0,1], [5,8]+R1 spur part.., [12,15], [19,20] — the
        # exact count depends on door spur splits; sanity-check bounds.
        assert 4 <= len(small_deployment.cells) <= 8

    def test_cells_partition_free_space(self, small_deployment, small_graph):
        # Every anchor is either covered by a reader or in exactly one cell.
        for edge in small_graph.edges:
            for offset in (0.0, edge.length / 2, edge.length):
                covering = small_deployment.covering_readers(edge.edge_id, offset)
                cell = small_deployment.cell_of(edge.edge_id, offset)
                assert (len(covering) > 0) or (cell is not None)

    def test_covered_position_has_no_cell(self, small_deployment, small_graph):
        loc, _ = small_graph.locate(Point(10, 5))  # at reader d2
        assert small_deployment.cell_of(loc.edge_id, loc.offset) is None
        assert "d2" in small_deployment.covering_readers(loc.edge_id, loc.offset)

    def test_device_classification_partitioning(self, small_deployment):
        # d2 separates the hallway into left and right cells.
        assert small_deployment.device_type("d2") is DeviceType.UNDIRECTED_PARTITIONING
        assert len(small_deployment.cells_adjacent_to("d2")) >= 2

    def test_paper_deployment_all_partitioning(self, paper_graph, paper_readers):
        deployment = build_deployment_graph(paper_graph, paper_readers)
        for reader in paper_readers:
            assert deployment.device_type(reader.reader_id) is (
                DeviceType.UNDIRECTED_PARTITIONING
            )

    def test_presence_device(self, small_graph):
        # A reader whose range is buried inside R1 touches one cell only.
        inside = RFIDReader("p1", Point(5.0, 2.0), 0.5)
        deployment = build_deployment_graph(small_graph, [inside])
        assert deployment.device_type("p1") is DeviceType.PRESENCE

    def test_directed_pair_classification(self, small_graph, small_readers):
        deployment = build_deployment_graph(
            small_graph, small_readers, directed_pairs={"d1": "d2", "d2": "d1"}
        )
        assert deployment.device_type("d1") is DeviceType.DIRECTED_PARTITIONING
        assert deployment.directed_partner("d1") == "d2"

    def test_anchor_cells_mapping(self, small_deployment, small_anchors):
        mapping = anchor_cells(small_deployment, small_anchors)
        assert set(mapping.keys()) == {a.ap_id for a in small_anchors}
        covered = [ap for ap, cell in mapping.items() if cell is None]
        assert covered, "some anchors must be reader-covered"


class TestInference:
    def test_no_history(self, small_model):
        assert small_model.infer(ReadingHistory("o1", tuple()), 5) is None

    def test_currently_detected_uniform_over_range(self, small_model, small_anchors):
        dist = small_model.infer(history(("d2", [0, 1, 2])), now=2)
        assert sum(dist.values()) == pytest.approx(1.0)
        for ap_id, mass in dist.items():
            anchor = small_anchors.anchor(ap_id)
            assert anchor.point.distance_to(Point(10, 5)) <= 2.0 + 1e-6
            assert mass == pytest.approx(1.0 / len(dist))

    def test_after_leaving_spreads_to_adjacent_cells(self, small_model, small_anchors):
        dist = small_model.infer(history(("d2", [0])), now=6)
        assert sum(dist.values()) == pytest.approx(1.0)
        xs = [small_anchors.anchor(ap).point.x for ap in dist]
        # Mass on both sides of d2 (direction-blind).
        assert min(xs) < 10 < max(xs)

    def test_speed_constraint_limits_reach(self, small_model, small_anchors):
        dist = small_model.infer(history(("d2", [0])), now=2)
        reach = DEFAULT_CONFIG.max_speed * 2 + 2.0
        for ap_id in dist:
            anchor = small_anchors.anchor(ap_id)
            assert anchor.point.distance_to(Point(10, 5)) <= reach + 1.0

    def test_does_not_cross_other_readers(self, small_model, small_anchors):
        # Long silence: reachable region still stops at d1 and d3 coverage.
        dist = small_model.infer(history(("d2", [0])), now=60)
        for ap_id in dist:
            anchor = small_anchors.anchor(ap_id)
            # d1 at x=3, d3 at x=17: beyond their far side is unreachable
            # without being detected.
            assert 1.0 <= anchor.point.x <= 19.0

    def test_mass_in_rooms_within_cell(self, small_model, small_anchors):
        dist = small_model.infer(history(("d2", [0])), now=20)
        room_mass = sum(
            mass for ap_id, mass in dist.items()
            if small_anchors.anchor(ap_id).room_id is not None
        )
        assert room_mass > 0.0

    def test_build_table(self, small_model, small_graph, small_readers):
        from repro.collector import EventDrivenCollector
        from repro.rfid.readings import RawReading

        collector = EventDrivenCollector({"tag1": "o1"})
        collector.ingest_second(0, [RawReading(0.5, "tag1", "d2")])
        table = small_model.build_table(["o1", "ghost"], collector, now=0)
        assert table.has_object("o1")
        assert not table.has_object("ghost")
        assert table.total_probability("o1") == pytest.approx(1.0)
