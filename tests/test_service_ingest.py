"""Tests for the streaming ingest layer (repro.service.ingest)."""

import threading

import pytest

from repro.config import DEFAULT_CONFIG
from repro.io import (
    load_readings,
    read_readings_jsonl,
    write_readings_csv,
    write_readings_jsonl,
)
from repro.rfid.readings import RawReading
from repro.service import BoundedQueue, LiveSimSource, ReadingBatch, ReplaySource, SourceFeeder
from repro.sim import Simulation


def _sample_readings():
    return [
        RawReading(time=1.2, tag_id="tag1", reader_id="r1"),
        RawReading(time=1.8, tag_id="tag2", reader_id="r2"),
        RawReading(time=2.1, tag_id="tag1", reader_id="r1"),
        RawReading(time=4.0, tag_id="tag2", reader_id="r3"),
    ]


class TestReplaySource:
    def test_batches_by_second(self):
        batches = list(ReplaySource(_sample_readings()).batches())
        assert [b.second for b in batches] == [1, 2, 4]
        assert len(batches[0]) == 2
        assert batches[0].readings[0].tag_id == "tag1"

    def test_start_after_skips_prefix(self):
        source = ReplaySource(_sample_readings(), start_after=1)
        assert [b.second for b in source.batches()] == [2, 4]

    def test_max_seconds_caps_stream(self):
        source = ReplaySource(_sample_readings(), max_seconds=2)
        assert [b.second for b in source.batches()] == [1, 2]

    def test_from_csv_file(self, tmp_path):
        path = tmp_path / "log.csv"
        write_readings_csv(_sample_readings(), path)
        source = ReplaySource.from_file(path)
        assert [b.second for b in source.batches()] == [1, 2, 4]

    def test_from_jsonl_file(self, tmp_path):
        path = tmp_path / "log.jsonl"
        write_readings_jsonl(_sample_readings(), path)
        assert read_readings_jsonl(path) == sorted(_sample_readings())
        source = ReplaySource.from_file(path)
        assert [b.second for b in source.batches()] == [1, 2, 4]

    def test_load_readings_rejects_unknown_extension(self, tmp_path):
        path = tmp_path / "log.parquet"
        path.write_text("nope")
        with pytest.raises(ValueError, match="unsupported"):
            load_readings(path)

    def test_jsonl_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"time": 1.0, "tag_id": "t"}\n')
        with pytest.raises(ValueError, match="bad reading record"):
            read_readings_jsonl(path)


class TestLiveSimSource:
    def test_yields_one_batch_per_tick(self):
        config = DEFAULT_CONFIG.with_overrides(num_objects=4, seed=3)
        sim = Simulation(config, build_symbolic=False)
        batches = list(LiveSimSource(sim, seconds=5).batches())
        assert [b.second for b in batches] == [1, 2, 3, 4, 5]
        assert sim.now == 5


class TestBoundedQueue:
    def test_fifo_and_close(self):
        queue = BoundedQueue(maxsize=4)
        queue.put(ReadingBatch(second=1))
        queue.put(ReadingBatch(second=2))
        queue.close()
        assert queue.get().second == 1
        assert queue.get().second == 2
        assert queue.get() is None  # closed and drained

    def test_put_after_close_is_rejected(self):
        queue = BoundedQueue(maxsize=2)
        queue.close()
        assert queue.put(ReadingBatch(second=1)) is False

    def test_backpressure_blocks_producer(self):
        queue = BoundedQueue(maxsize=1)
        queue.put(ReadingBatch(second=1))
        entered = threading.Event()
        done = threading.Event()

        def producer():
            entered.set()
            queue.put(ReadingBatch(second=2))
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert entered.wait(2.0)
        assert not done.wait(0.1)  # full queue: producer is stalled
        assert queue.get().second == 1
        assert done.wait(2.0)  # consumer freed a slot
        thread.join(2.0)

    def test_rejects_silly_sizes(self):
        with pytest.raises(ValueError):
            BoundedQueue(maxsize=0)


class TestSourceFeeder:
    def test_feeds_everything_then_closes(self):
        queue = BoundedQueue(maxsize=2)
        feeder = SourceFeeder(ReplaySource(_sample_readings()), queue)
        feeder.start()
        seconds = []
        while True:
            batch = queue.get(timeout=5.0)
            if batch is None:
                break
            seconds.append(batch.second)
        feeder.join(5.0)
        assert seconds == [1, 2, 4]
        assert feeder.batches_fed == 3
        assert feeder.error is None

    def test_source_error_is_captured(self):
        class ExplodingSource:
            def batches(self):
                yield ReadingBatch(second=1)
                raise RuntimeError("middleware died")

        queue = BoundedQueue(maxsize=2)
        feeder = SourceFeeder(ExplodingSource(), queue)
        feeder.start()
        assert queue.get(timeout=5.0).second == 1
        assert queue.get(timeout=5.0) is None  # queue closed on error
        feeder.join(5.0)
        assert isinstance(feeder.error, RuntimeError)
