"""The consistent-hash ring: determinism, coverage, resize stability."""

import pytest

from repro.gateway.partitioning import (
    DEFAULT_VNODES,
    HashRing,
    hash_key,
    ring_key,
)

OBJECTS = [f"object-{i}" for i in range(200)]


class TestHashKey:
    def test_deterministic_across_instances(self):
        assert hash_key("tenant-0/object-1") == hash_key("tenant-0/object-1")

    def test_64_bit_range(self):
        for key in ("", "a", "tenant-0/object-1", "x" * 500):
            assert 0 <= hash_key(key) < 2**64

    def test_ring_key_namespaces_tenants(self):
        assert ring_key("t0", "obj") == "t0/obj"
        assert ring_key("t0", "obj") != ring_key("t1", "obj")


class TestHashRing:
    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)

    def test_same_geometry_same_placement(self):
        one = HashRing(4)
        two = HashRing(4)
        for object_id in OBJECTS:
            assert one.partition_of("t", object_id) == two.partition_of(
                "t", object_id
            )

    def test_partitions_in_range(self):
        ring = HashRing(3)
        for object_id in OBJECTS:
            assert 0 <= ring.partition_of("t", object_id) < 3

    def test_spread_covers_every_partition(self):
        ring = HashRing(4, vnodes=DEFAULT_VNODES)
        groups = ring.spread("t", OBJECTS)
        assert sorted(groups) == [0, 1, 2, 3]
        assert all(groups[p] for p in groups)
        assert sum(len(v) for v in groups.values()) == len(OBJECTS)

    def test_tenants_are_partitioned_independently(self):
        ring = HashRing(4)
        placements = [
            tuple(ring.partition_of(t, o) for o in OBJECTS[:50])
            for t in ("tenant-0", "tenant-1")
        ]
        # Same object ids, different tenants -> (almost surely) not the
        # same placement vector; the keyspaces are namespaced.
        assert placements[0] != placements[1]

    def test_resize_moves_a_minority_of_keys(self):
        """Growing N -> N+1 must not reshuffle the world.

        The whole point of consistent hashing: a restore at a different
        partition count keeps most objects on their old partition.
        Expected churn is ~1/(N+1); assert it stays well under half.
        """
        before = HashRing(4)
        after = HashRing(5)
        moved = sum(
            1
            for object_id in OBJECTS
            if before.partition_of("t", object_id)
            != after.partition_of("t", object_id)
        )
        assert moved < len(OBJECTS) / 2
        assert moved > 0  # the new partition did take ownership of keys
