"""The `repro top` dashboard (repro.obs.dashboard): render, sources, loop."""

import json

import pytest

from repro import obs
from repro.obs.alerts import ALERTS_FORMAT, ALERTS_VERSION
from repro.obs.dashboard import (
    ANSI_CLEAR,
    SPARK_BLOCKS,
    EventLogTopSource,
    HttpTopSource,
    TopLoop,
    TopState,
    bar,
    render_top,
    sparkline,
)
from repro.obs.events import EVENTS_FORMAT, EVENTS_VERSION, EpochEventWriter
from repro.obs.expo import MetricsServer


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
    obs.set_clock(__import__("time").perf_counter)


def _record(tick, *, ess=40.0, wall=0.01, phases=None, alerts_firing=False):
    return {
        "tick": tick,
        "second": tick,
        "wall_seconds": wall,
        "phases": phases or {"filter.predict": 0.004, "filter.weight": 0.002},
        "shards": {"0": 0.003, "1": 0.002},
        "queue": {"depth": 2, "backpressure_waits": 0},
        "cache": {"hits": 5, "misses": 1, "hit_ratio": 5 / 6},
        "accuracy": {"ess_mean": ess, "kalman_entropy_mean": None},
    }


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
class TestPrimitives:
    def test_sparkline_spans_block_range(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == SPARK_BLOCKS[0]
        assert line[-1] == SPARK_BLOCKS[-1]
        assert len(line) == 4

    def test_sparkline_flat_series_uses_lowest_block(self):
        assert sparkline([5.0, 5.0, 5.0]) == SPARK_BLOCKS[0] * 3

    def test_sparkline_skips_nones_and_respects_width(self):
        assert sparkline([None, None]) == ""
        assert len(sparkline(list(range(100)), width=10)) == 10

    def test_bar_clamps_and_fills(self):
        assert bar(0.0, width=4) == "...."
        assert bar(1.0, width=4) == "####"
        assert bar(2.5, width=4) == "####"
        assert bar(0.5, width=4) == "##.."

    def test_topstate_series_extraction(self):
        state = TopState(records=[_record(1, ess=10.0), _record(2, ess=None)])
        assert state.accuracy_series("ess_mean") == [10.0, None]
        assert state.wall_series() == [0.01, 0.01]
        assert state.last_record["tick"] == 2


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
class TestRenderTop:
    def test_sections_present(self):
        state = TopState(
            health={"status": "ok", "ticks": 9, "last_second": 8,
                    "filter_backend": "particle", "queue_depth": 2,
                    "queue_capacity": 64},
            records=[_record(t) for t in range(1, 6)],
            alerts={"rules": []},
        )
        text = render_top(state)
        assert "status=ok" in text
        assert "epoch wall" in text and "ticks/s" in text
        assert "phase seconds (last epoch)" in text
        assert "filter.predict" in text
        assert "shard seconds" in text and "s0=" in text
        assert "cache  hits=5" in text
        assert "ESS" in text
        assert "alerts: none firing" in text

    def test_active_alerts_section(self):
        state = TopState(
            records=[_record(1)],
            alerts={
                "rules": [
                    {"rule": "ess_collapse", "severity": "critical",
                     "field": "accuracy.ess_mean", "firing": True,
                     "last_value": 1.0},
                    {"rule": "backpressure", "severity": "info",
                     "firing": False},
                ]
            },
        )
        text = render_top(state)
        assert "ALERTS (1 active)" in text
        assert "[critical] ess_collapse" in text
        assert "backpressure" not in text

    def test_empty_state_renders_header_only(self):
        text = render_top(TopState())
        assert text.startswith("repro top   status=?")

    def test_lines_clipped_to_width(self):
        state = TopState(records=[_record(t) for t in range(1, 40)])
        text = render_top(state, width=40)
        assert all(len(line) <= 40 for line in text.splitlines())


# ----------------------------------------------------------------------
# sources
# ----------------------------------------------------------------------
class TestEventLogSource:
    def _write_log(self, path, records):
        with EpochEventWriter(str(path)) as writer:
            for record in records:
                writer.write(record)

    def test_reads_records_and_health_from_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_log(path, [_record(1), _record(2, ess=20.0)])
        state = EventLogTopSource(str(path)).poll()
        assert state.health["status"] == "log"
        assert state.health["ticks"] == 2
        assert state.health["queue_depth"] == 2
        assert [r["tick"] for r in state.records] == [1, 2]

    def test_missing_log_yields_empty_state(self, tmp_path):
        state = EventLogTopSource(str(tmp_path / "absent.jsonl")).poll()
        assert state.records == []

    def test_fold_alerts_replays_transitions(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        self._write_log(events_path, [_record(1)])
        alerts_path = tmp_path / "alerts.jsonl"
        with EpochEventWriter(str(alerts_path), fmt=ALERTS_FORMAT,
                              version=ALERTS_VERSION) as writer:
            writer.write({"action": "fired", "rule": "a", "severity":
                          "critical", "field": "f", "tick": 3, "value": 1.0})
            writer.write({"action": "resolved", "rule": "a", "severity":
                          "critical", "field": "f", "tick": 4, "value": 9.0})
            writer.write({"action": "fired", "rule": "b", "severity":
                          "warning", "field": "g", "tick": 5, "value": 2.0})
        state = EventLogTopSource(
            str(events_path), alerts_path=str(alerts_path)
        ).poll()
        assert state.alerts["active_count"] == 1
        by_rule = {r["rule"]: r for r in state.alerts["rules"]}
        assert by_rule["a"]["firing"] is False
        assert by_rule["a"]["fired_count"] == 1
        assert by_rule["b"]["firing"] is True
        assert "ALERTS (1 active)" in render_top(state)


class TestHttpSource:
    def test_polls_real_server_and_diffs_ticks(self):
        obs.enable()
        health = {"status": "ok", "ticks": 0, "last_second": 0,
                  "last_tick_seconds": 0.01}
        server = MetricsServer(
            snapshot_provider=obs.snapshot,
            health_provider=lambda: dict(health),
        )
        with server:
            source = HttpTopSource(server.url(""))
            first = source.poll()  # primes the delta baseline
            assert first.health["status"] == "ok"
            assert first.records == []
            obs.add("filter.runs", 5)
            obs.observe("filter.ess", 30.0)
            health["ticks"] = 1
            second = source.poll()
            assert len(second.records) == 1
            assert second.records[0]["accuracy"]["ess_mean"] == 30.0
            # No tick advance -> no new record.
            third = source.poll()
            assert len(third.records) == 1

    def test_alerts_endpoint_absent_is_tolerated(self):
        obs.enable()
        with MetricsServer(snapshot_provider=obs.snapshot) as server:
            state = HttpTopSource(server.url("")).poll()
        # /alerts 404s without an engine; /snapshot is still folded.
        assert state.alerts == {} or "error" in state.alerts

    def test_unreachable_server_degrades(self):
        state = HttpTopSource("http://127.0.0.1:1").poll()
        assert state.health["status"] == "unreachable"
        assert state.records == []


# ----------------------------------------------------------------------
# the loop
# ----------------------------------------------------------------------
class _StubSource:
    def __init__(self):
        self.polls = 0

    def poll(self):
        self.polls += 1
        return TopState(health={"status": "ok", "ticks": self.polls})


class TestTopLoop:
    def _loop(self, **kwargs):
        frames = []
        sleeps = []
        loop = TopLoop(
            source=_StubSource(),
            clock=lambda: 0.0,
            sleep=sleeps.append,
            emit=frames.append,
            use_ansi=False,
            **kwargs,
        )
        return loop, frames, sleeps

    def test_renders_requested_frames_then_stops(self):
        loop, frames, sleeps = self._loop(frames=3, interval=0.5)
        assert loop.run() == 3
        assert len(frames) == 3
        assert sleeps == [0.5, 0.5]  # no sleep after the final frame

    def test_ansi_prefix_only_when_enabled(self):
        loop, frames, _ = self._loop(frames=1)
        loop.use_ansi = True
        assert loop.render_frame().startswith(ANSI_CLEAR)
        loop.use_ansi = False
        assert loop.render_frame().startswith("repro top")

    def test_q_key_quits(self):
        keys = iter(["q"])
        loop = TopLoop(
            source=_StubSource(), clock=lambda: 0.0, sleep=lambda _: None,
            emit=lambda _: None, key_reader=lambda: next(keys, None),
            use_ansi=False,
        )
        assert loop.run() == 0

    def test_p_key_pauses_and_resumes(self):
        keys = iter(["p", None, "p", "q"])
        emitted = []
        loop = TopLoop(
            source=_StubSource(), clock=lambda: 0.0, sleep=lambda _: None,
            emit=emitted.append, key_reader=lambda: next(keys, "q"),
            use_ansi=False,
        )
        loop.run()
        # Paused for two iterations, rendered once after resuming.
        assert len(emitted) == 1

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            TopLoop(source=_StubSource(), clock=lambda: 0.0,
                    sleep=lambda _: None, interval=0.0)
