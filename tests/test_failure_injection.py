"""Failure injection: reader outages and how the system degrades."""

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.floorplan import small_test_plan
from repro.geometry import Point, Rect
from repro.queries import IndoorQueryEngine
from repro.rfid import DetectionModel, RFIDReader, ReaderOutage
from repro.sim.readings_sim import RawReadingGenerator

READERS = [
    RFIDReader("d1", Point(3.0, 5.0), 2.0, "H1"),
    RFIDReader("d2", Point(10.0, 5.0), 2.0, "H1"),
    RFIDReader("d3", Point(17.0, 5.0), 2.0, "H1"),
]


class TestReaderOutage:
    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            ReaderOutage("d1", 5, 5)

    def test_covers(self):
        outage = ReaderOutage("d1", 5, 10)
        assert not outage.covers(4)
        assert outage.covers(5)
        assert outage.covers(9)
        assert not outage.covers(10)

    def test_unknown_reader_rejected(self):
        with pytest.raises(ValueError, match="unknown reader"):
            DetectionModel(READERS, outages=[ReaderOutage("d99", 0, 5)])


class TestDarkReader:
    def _model(self, outages):
        return DetectionModel(
            READERS, detection_probability=1.0, samples_per_second=5,
            outages=outages,
        )

    def test_dark_reader_is_silent(self):
        model = self._model([ReaderOutage("d2", 5, 10)])
        in_range = {"tag1": Point(10, 5)}
        assert model.sample_second(7, in_range, rng=0) == []

    def test_dark_reader_recovers(self):
        model = self._model([ReaderOutage("d2", 5, 10)])
        in_range = {"tag1": Point(10, 5)}
        assert len(model.sample_second(10, in_range, rng=0)) == 5
        assert len(model.sample_second(4, in_range, rng=0)) == 5

    def test_other_readers_unaffected(self):
        model = self._model([ReaderOutage("d2", 0, 100)])
        readings = model.sample_second(
            3, {"tag1": Point(10, 5), "tag2": Point(3, 5)}, rng=0
        )
        assert {r.reader_id for r in readings} == {"d1"}

    def test_generator_passthrough(self):
        generator = RawReadingGenerator(
            READERS, 1.0, 5, rng=0, outages=[ReaderOutage("d1", 0, 50)]
        )
        readings = generator.generate(1, {"tag1": Point(3, 5)})
        assert readings == []


class TestSystemUnderOutage:
    def test_engine_survives_coverage_hole(self):
        """An object walks past a dead reader: the filter bridges the gap.

        The object walks right from d1 to d3 while d2 (the middle reader)
        is dark the entire time. At arrival the engine must still place
        the object near d3 from the d1 -> d3 reading sequence alone.
        """
        plan = small_test_plan()
        engine = IndoorQueryEngine(
            plan, READERS, {"tag1": "o1"}, config=DEFAULT_CONFIG
        )
        model = DetectionModel(
            READERS, detection_probability=1.0, samples_per_second=5,
            outages=[ReaderOutage("d2", 0, 100)],
        )
        rng = np.random.default_rng(0)
        for second in range(0, 16):
            x = 2.0 + second  # 1 m/s to the right from x=2
            readings = model.sample_second(second, {"tag1": Point(x, 5.0)}, rng)
            engine.ingest_second(second, readings)

        # Only d1 and d3 ever reported (d2 dark).
        history = engine.collector.history("o1")
        assert {run.reader_id for run in history.runs} <= {"d1", "d3"}
        result = engine.range_query(
            Rect(15, 4, 20, 6), 15, rng=np.random.default_rng(1)
        )
        assert result.probabilities.get("o1", 0.0) > 0.5
