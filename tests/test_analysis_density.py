"""Tests for localization analysis and zone density queries."""

import pytest

from repro.geometry import Point, Rect
from repro.index import AnchorObjectTable
from repro.queries.density import (
    busiest_zone,
    room_densities,
    total_expected_objects,
    zone_densities,
)
from repro.sim.analysis import (
    ErrorSummary,
    by_staleness_bucket,
    compare_methods,
    localization_samples,
)


def table_at(anchors, placements):
    table = AnchorObjectTable()
    for object_id, point in placements.items():
        anchor = anchors.nearest(point)
        table.set_distribution(object_id, {anchor.ap_id: 1.0})
    return table


class TestLocalizationSamples:
    def test_perfect_localization(self, small_anchors):
        truth = {"o1": Point(10, 5)}
        table = table_at(small_anchors, truth)
        samples = localization_samples(
            table, small_anchors, truth, {"o1": 0}, second=10
        )
        assert len(samples) == 1
        sample = samples[0]
        assert sample.mode_error == pytest.approx(0.0, abs=0.5)
        assert sample.expected_error == pytest.approx(0.0, abs=0.5)
        assert sample.mass_within_3m == pytest.approx(1.0)
        assert sample.staleness == 0

    def test_split_distribution(self, small_anchors):
        table = AnchorObjectTable()
        near = small_anchors.nearest(Point(10, 5))
        far = small_anchors.nearest(Point(2, 5))
        table.set_distribution("o1", {near.ap_id: 0.5, far.ap_id: 0.5})
        samples = localization_samples(
            table, small_anchors, {"o1": Point(10, 5)}, {"o1": 4}, second=9
        )
        sample = samples[0]
        assert sample.mass_within_3m == pytest.approx(0.5)
        assert sample.expected_error == pytest.approx(0.5 * 8.0, abs=0.6)

    def test_unknown_truth_skipped(self, small_anchors):
        table = table_at(small_anchors, {"o1": Point(10, 5)})
        assert localization_samples(table, small_anchors, {}, {}, 0) == []

    def test_bucketing(self, small_anchors):
        truth = {"a": Point(10, 5), "b": Point(10, 5)}
        table = table_at(small_anchors, truth)
        samples = localization_samples(
            table, small_anchors, truth, {"a": 0, "b": 10}, second=10
        )
        buckets = by_staleness_bucket(samples)
        assert buckets["0-0s"].count == 1
        assert buckets["6-15s"].count == 1
        assert buckets["1-5s"] is None

    def test_compare_methods(self, small_anchors):
        truth = {"a": Point(10, 5)}
        table = table_at(small_anchors, truth)
        samples = localization_samples(table, small_anchors, truth, {"a": 0}, 0)
        rows = compare_methods(samples, samples)
        assert set(rows) == {"particle_filter", "symbolic"}
        assert rows["particle_filter"]["count"] == 1

    def test_summary_of_empty(self):
        assert ErrorSummary.of([]) is None


class TestZoneDensity:
    def test_room_densities(self, small_plan, small_anchors):
        r1_center = small_plan.room("R1").center
        table = table_at(
            small_anchors, {"a": r1_center, "b": r1_center, "c": Point(18, 5)}
        )
        densities = {z.zone_id: z.expected_count for z in room_densities(
            small_plan, small_anchors, table
        )}
        assert densities["R1"] == pytest.approx(2.0, abs=0.1)
        assert densities["R2"] == pytest.approx(0.0, abs=0.05)

    def test_sorted_densest_first(self, small_plan, small_anchors):
        table = table_at(
            small_anchors,
            {"a": small_plan.room("R3").center, "b": small_plan.room("R3").center},
        )
        ranked = room_densities(small_plan, small_anchors, table)
        assert ranked[0].zone_id == "R3"
        assert ranked[0].expected_count >= ranked[-1].expected_count

    def test_custom_zones_and_busiest(self, small_plan, small_anchors):
        table = table_at(small_anchors, {"a": Point(5, 5), "b": Point(15, 5)})
        zones = {
            "west": Rect(0, 4, 10, 6),
            "east": Rect(10, 4, 20, 6),
        }
        ranked = zone_densities(zones, small_plan, small_anchors, table)
        assert {z.zone_id for z in ranked} == {"west", "east"}
        top = busiest_zone(zones, small_plan, small_anchors, table)
        assert top.expected_count >= 0.9

    def test_busiest_of_empty(self, small_plan, small_anchors):
        assert busiest_zone({}, small_plan, small_anchors, AnchorObjectTable()) is None

    def test_top_objects_listed(self, small_plan, small_anchors):
        table = table_at(small_anchors, {"a": Point(5, 5)})
        zones = {"west": Rect(0, 4, 10, 6)}
        (zone,) = zone_densities(zones, small_plan, small_anchors, table)
        assert zone.top_objects[0][0] == "a"

    def test_total_expected(self):
        assert total_expected_objects({"a": 1.5, "b": 0.5}) == 2.0
