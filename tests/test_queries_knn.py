"""Tests for indoor kNN query evaluation (paper Algorithm 4)."""

import pytest

from repro.geometry import Point
from repro.index import AnchorObjectTable
from repro.queries import KNNQuery, evaluate_knn_query


def place(anchor_index, placements):
    table = AnchorObjectTable()
    for object_id, (point, mass) in placements.items():
        anchor = anchor_index.nearest(point)
        table.set_distribution(object_id, {anchor.ap_id: mass})
    return table


class TestExpansion:
    def test_returns_nearest_objects_first(self, small_graph, small_anchors):
        table = place(
            small_anchors,
            {
                "near": (Point(11, 5), 1.0),
                "mid": (Point(15, 5), 1.0),
                "far": (Point(2, 5), 1.0),
            },
        )
        result = evaluate_knn_query(
            KNNQuery("q", Point(10, 5), k=1), small_graph, small_anchors, table
        )
        assert "near" in result.probabilities
        assert result.total_probability >= 1.0
        assert "far" not in result.probabilities

    def test_total_probability_reaches_k(self, small_graph, small_anchors):
        table = place(
            small_anchors,
            {f"o{i}": (Point(2 + 2 * i, 5), 1.0) for i in range(8)},
        )
        result = evaluate_knn_query(
            KNNQuery("q", Point(10, 5), k=3), small_graph, small_anchors, table
        )
        assert result.total_probability >= 3.0
        assert len(result.objects()) >= 3

    def test_returns_all_when_total_mass_below_k(self, small_graph, small_anchors):
        table = place(small_anchors, {"o1": (Point(3, 5), 1.0)})
        result = evaluate_knn_query(
            KNNQuery("q", Point(10, 5), k=5), small_graph, small_anchors, table
        )
        assert result.objects() == ["o1"]
        assert result.total_probability == pytest.approx(1.0)

    def test_split_mass_accumulates(self, small_graph, small_anchors):
        table = AnchorObjectTable()
        a = small_anchors.nearest(Point(9, 5))
        b = small_anchors.nearest(Point(11, 5))
        table.set_distribution("o1", {a.ap_id: 0.6, b.ap_id: 0.4})
        result = evaluate_knn_query(
            KNNQuery("q", Point(10, 5), k=1), small_graph, small_anchors, table
        )
        assert result.probabilities["o1"] == pytest.approx(1.0)

    def test_network_distance_not_euclidean(self, small_graph, small_anchors):
        # Object in room R1 (center (5,2)): its network distance from a
        # hallway point at x=5 goes through the door spur. An object
        # further along the hallway but network-closer must win.
        table = place(
            small_anchors,
            {
                "room_obj": (Point(5, 2), 1.0),   # spur length ~3.16+
                "hall_obj": (Point(7, 5), 1.0),   # 2 m along hallway
            },
        )
        result = evaluate_knn_query(
            KNNQuery("q", Point(5, 5), k=1), small_graph, small_anchors, table
        )
        ranked = result.ranked()
        assert ranked[0][0] == "hall_obj"

    def test_expansion_matches_bruteforce_order(self, paper_graph, paper_anchors):
        # Probabilities spread over many anchors: the returned set must be
        # exactly the objects whose nearest anchors are within the search
        # radius implied by the accumulated mass.
        table = AnchorObjectTable()
        points = [Point(10, 5), Point(20, 5), Point(30, 5), Point(40, 5), Point(20, 27)]
        for i, p in enumerate(points):
            anchor = paper_anchors.nearest(p)
            table.set_distribution(f"o{i}", {anchor.ap_id: 1.0})
        q_point = Point(12, 5)
        result = evaluate_knn_query(
            KNNQuery("q", q_point, k=2), paper_graph, paper_anchors, table
        )
        q_loc, _ = paper_graph.locate(q_point)
        brute = sorted(
            (paper_graph.distance(q_loc, paper_anchors.nearest(p).location), f"o{i}")
            for i, p in enumerate(points)
        )
        expected = {name for _, name in brute[:2]}
        assert set(result.objects()) == expected

    def test_query_on_room_spur(self, small_graph, small_anchors):
        table = place(small_anchors, {"o1": (Point(5, 2), 1.0)})
        result = evaluate_knn_query(
            KNNQuery("q", Point(5, 2.5), k=1), small_graph, small_anchors, table
        )
        assert result.probabilities["o1"] == pytest.approx(1.0)

    def test_empty_table(self, small_graph, small_anchors):
        result = evaluate_knn_query(
            KNNQuery("q", Point(10, 5), k=3), small_graph, small_anchors,
            AnchorObjectTable(),
        )
        assert result.probabilities == {}
        assert result.total_probability == 0.0


class TestResultApi:
    def test_ranked_and_top(self, small_graph, small_anchors):
        table = place(
            small_anchors,
            {
                "a": (Point(9, 5), 0.9),
                "b": (Point(11, 5), 0.5),
                "c": (Point(12, 5), 0.7),
            },
        )
        result = evaluate_knn_query(
            KNNQuery("q", Point(10, 5), k=3), small_graph, small_anchors, table
        )
        ranked = result.ranked()
        probs = [p for _, p in ranked]
        assert probs == sorted(probs, reverse=True)
        assert result.top(1) == [ranked[0][0]]
