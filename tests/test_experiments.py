"""End-to-end tests for the experiment harness (scaled-down sweeps)."""


from repro.config import DEFAULT_CONFIG
from repro.sim import Simulation, evaluate_accuracy
from repro.sim.experiments import (
    format_rows,
    query_timestamps,
    run_figure9,
    run_figure10,
)

FAST = DEFAULT_CONFIG.with_overrides(
    num_objects=12,
    duration_seconds=50,
    warmup_seconds=30,
    num_query_timestamps=2,
    num_range_queries=4,
    num_knn_queries=3,
)


class TestTimestamps:
    def test_within_window(self):
        stamps = query_timestamps(FAST)
        assert all(30 <= t <= 80 for t in stamps)
        assert stamps == sorted(stamps)

    def test_count(self):
        assert len(query_timestamps(FAST)) == 2


class TestEvaluateAccuracy:
    def test_full_report(self):
        report = evaluate_accuracy(FAST)
        assert report.range_kl_pf is not None
        assert report.range_kl_sm is not None
        assert report.knn_hit_pf is not None
        assert report.knn_hit_sm is not None
        assert 0.0 <= report.knn_hit_pf <= 1.0
        assert 0.0 <= report.knn_hit_sm <= 1.0
        assert report.top1_success is not None
        assert 0.0 <= report.top1_success <= report.top2_success <= 1.0
        assert report.range_query_count > 0
        assert report.topk_sample_count > 0

    def test_selective_metrics(self):
        report = evaluate_accuracy(FAST, measure_range=False, measure_topk=False)
        assert report.range_kl_pf is None
        assert report.top1_success is None
        assert report.knn_hit_pf is not None

    def test_as_row(self):
        report = evaluate_accuracy(FAST, measure_knn=False, measure_topk=False)
        row = report.as_row(window_ratio=0.02)
        assert row["window_ratio"] == 0.02
        assert isinstance(row["range_kl_pf"], float)
        assert row["knn_hit_pf"] is None

    def test_reusable_simulation(self):
        sim = Simulation(FAST)
        report = evaluate_accuracy(FAST, simulation=sim, measure_topk=False)
        assert report.range_kl_pf is not None
        assert sim.now >= FAST.warmup_seconds


class TestFigureSweeps:
    def test_figure9_rows(self):
        rows = run_figure9(FAST, window_ratios=(0.02, 0.04))
        assert len(rows) == 2
        assert rows[0]["window_ratio"] == 0.02
        assert rows[0]["range_kl_pf"] is not None
        assert rows[0]["knn_hit_pf"] is None  # kNN not measured for Fig 9

    def test_figure10_rows(self):
        rows = run_figure10(FAST, ks=(2, 3))
        assert len(rows) == 2
        assert rows[0]["k"] == 2
        assert rows[0]["knn_hit_pf"] is not None
        assert rows[0]["range_kl_pf"] is None

    def test_format_rows(self):
        rows = [{"a": 1, "b": None}, {"a": 22, "b": 0.5}]
        text = format_rows(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 4

    def test_format_empty(self):
        assert "(no rows)" in format_rows([], title="X")


class TestPaperShape:
    """The headline comparison: PF must beat SM on this workload."""

    def test_pf_beats_sm(self):
        config = DEFAULT_CONFIG.with_overrides(
            num_objects=25,
            duration_seconds=90,
            warmup_seconds=40,
            num_query_timestamps=3,
            num_range_queries=8,
            num_knn_queries=5,
        )
        report = evaluate_accuracy(config)
        assert report.range_kl_pf < report.range_kl_sm
        assert report.knn_hit_pf > report.knn_hit_sm
