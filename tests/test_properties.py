"""System-level property tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collector.collector import DeviceRun, ReadingHistory
from repro.config import DEFAULT_CONFIG
from repro.core import CompiledAnchors, CompiledGraph, ParticleFilter
from repro.core.discretize import particles_to_anchor_distribution
from repro.geometry import Point, Rect
from repro.index import AnchorObjectTable
from repro.queries import RangeQuery, evaluate_range_query
from repro.rfid import RFIDReader


@pytest.fixture(scope="module")
def world(small_graph, small_anchors):
    compiled = CompiledGraph(small_graph)
    compiled_anchors = CompiledAnchors(small_anchors)
    readers = {
        "d1": RFIDReader("d1", Point(3.0, 5.0), 2.0, "H1"),
        "d2": RFIDReader("d2", Point(10.0, 5.0), 2.0, "H1"),
        "d3": RFIDReader("d3", Point(17.0, 5.0), 2.0, "H1"),
    }
    pf = ParticleFilter(compiled, readers, DEFAULT_CONFIG.with_overrides(num_particles=32))
    return compiled, compiled_anchors, readers, pf


class TestFilterInvariants:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_particles_stay_on_graph_and_distribution_normalizes(self, world, data):
        compiled, compiled_anchors, readers, pf = world
        devices = data.draw(
            st.lists(st.sampled_from(["d1", "d2", "d3"]), min_size=1, max_size=2,
                     unique=True),
        )
        runs = []
        second = 0
        for device in devices:
            length = data.draw(st.integers(min_value=1, max_value=3))
            runs.append(DeviceRun(device, list(range(second, second + length))))
            second += length + data.draw(st.integers(min_value=1, max_value=8))
        history = ReadingHistory("o1", tuple(runs))
        horizon = data.draw(st.integers(min_value=0, max_value=30))
        seed = data.draw(st.integers(min_value=0, max_value=2**20))

        result = pf.run(
            history,
            current_second=history.last_second + horizon,
            rng=np.random.default_rng(seed),
        )
        particles = result.particles
        lengths = compiled.edge_length[particles.edge]
        assert (particles.offset >= -1e-9).all()
        assert (particles.offset <= lengths + 1e-9).all()
        assert particles.weight.sum() == pytest.approx(1.0)

        distribution = particles_to_anchor_distribution(
            particles, compiled, compiled_anchors
        )
        assert sum(distribution.values()) == pytest.approx(1.0)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20),
           horizon=st.integers(min_value=0, max_value=40))
    def test_posterior_within_reachability(self, world, seed, horizon):
        """No particle can be farther from the last device than max walk."""
        compiled, compiled_anchors, readers, pf = world
        history = ReadingHistory("o1", (DeviceRun("d2", [0, 1]),))
        result = pf.run(
            history, current_second=1 + horizon, rng=np.random.default_rng(seed)
        )
        elapsed = result.end_second - 1
        x, y = compiled.points(result.particles.edge, result.particles.offset)
        center = readers["d2"].position
        # Max speed of particles ~ N(1, 0.1) floored; allow generous bound.
        bound = 2.0 + (elapsed + 1) * 1.6
        distances = np.hypot(x - center.x, y - center.y)
        assert (distances <= bound).all()


class TestRangeQueryProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        x=st.floats(min_value=-2, max_value=22),
        y=st.floats(min_value=-2, max_value=12),
        w=st.floats(min_value=0.5, max_value=20),
        h=st.floats(min_value=0.5, max_value=10),
        ax=st.floats(min_value=0, max_value=20),
    )
    def test_probability_bounds(self, small_plan, small_anchors, x, y, w, h, ax):
        table = AnchorObjectTable()
        anchor = small_anchors.nearest(Point(ax, 5.0))
        table.set_distribution("o1", {anchor.ap_id: 1.0})
        query = RangeQuery("q", Rect(x, y, x + w, y + h))
        result = evaluate_range_query(query, small_plan, small_anchors, table)
        p = result.probabilities.get("o1", 0.0)
        assert -1e-9 <= p <= 1.0 + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        x=st.floats(min_value=0, max_value=14),
        w=st.floats(min_value=1, max_value=6),
        grow=st.floats(min_value=0.1, max_value=5),
        ax=st.floats(min_value=0, max_value=20),
    )
    def test_monotone_in_window(self, small_plan, small_anchors, x, w, grow, ax):
        """A larger window can only gain probability (same center line)."""
        table = AnchorObjectTable()
        anchor = small_anchors.nearest(Point(ax, 5.0))
        table.set_distribution("o1", {anchor.ap_id: 1.0})
        small = Rect(x, 0.0, x + w, 10.0)
        large = Rect(max(x - grow, 0.0), 0.0, x + w + grow, 10.0)
        p_small = evaluate_range_query(
            RangeQuery("s", small), small_plan, small_anchors, table
        ).probabilities.get("o1", 0.0)
        p_large = evaluate_range_query(
            RangeQuery("l", large), small_plan, small_anchors, table
        ).probabilities.get("o1", 0.0)
        assert p_large >= p_small - 1e-6

    def test_building_wide_window_captures_everything(self, small_plan, small_anchors):
        table = AnchorObjectTable()
        spread = {
            ap.ap_id: 1.0 / len(small_anchors)
            for ap in small_anchors.anchors
        }
        table.set_distribution("o1", spread)
        whole = small_plan.bounds.expanded(1.0)
        p = evaluate_range_query(
            RangeQuery("q", whole), small_plan, small_anchors, table
        ).probabilities["o1"]
        assert p == pytest.approx(1.0, abs=0.01)
