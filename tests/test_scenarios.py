"""Tests for staggered arrival/departure scenarios."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.geometry import Point
from repro.sim.scenarios import (
    ArrivalEvent,
    ArrivalTraceGenerator,
    rush_hour_arrivals,
)

ENTRIES = [Point(4, 5), Point(60, 27)]


def make_generator(paper_graph, arrivals, departure_after=None, seed=3):
    return ArrivalTraceGenerator(
        paper_graph,
        DEFAULT_CONFIG,
        arrivals=arrivals,
        entry_points=ENTRIES,
        rng=seed,
        departure_after=departure_after,
    )


class TestArrivalEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalEvent(second=-1, count=1)
        with pytest.raises(ValueError):
            ArrivalEvent(second=0, count=0)


class TestArrivals:
    def test_starts_empty(self, paper_graph):
        generator = make_generator(paper_graph, [ArrivalEvent(5, 3)])
        assert generator.population == 0

    def test_spawns_on_schedule(self, paper_graph):
        generator = make_generator(
            paper_graph, [ArrivalEvent(2, 3), ArrivalEvent(5, 2)]
        )
        for _ in range(2):
            generator.step()
        assert generator.population == 3
        for _ in range(3):
            generator.step()
        assert generator.population == 5
        assert generator.total_spawned == 5

    def test_newcomers_appear_at_entry_points(self, paper_graph):
        generator = make_generator(paper_graph, [ArrivalEvent(1, 10)])
        generator.step()
        for obj in generator.objects:
            point = paper_graph.point_of(obj.location)
            # Within one step of some entry point.
            assert min(point.distance_to(e) for e in ENTRIES) <= 2.0

    def test_ids_unique(self, paper_graph):
        generator = make_generator(
            paper_graph, [ArrivalEvent(1, 4), ArrivalEvent(2, 4)]
        )
        for _ in range(3):
            generator.step()
        ids = [o.object_id for o in generator.objects]
        assert len(set(ids)) == 8

    def test_requires_entry_points(self, paper_graph):
        with pytest.raises(ValueError):
            ArrivalTraceGenerator(
                paper_graph, DEFAULT_CONFIG, arrivals=[], entry_points=[]
            )


class TestDepartures:
    def test_objects_eventually_leave(self, paper_graph):
        generator = make_generator(
            paper_graph, [ArrivalEvent(1, 5)], departure_after=10
        )
        for _ in range(120):
            generator.step()
        assert generator.population == 0
        assert len(generator.departed) == 5

    def test_departed_before_timeout_none(self, paper_graph):
        generator = make_generator(
            paper_graph, [ArrivalEvent(1, 5)], departure_after=50
        )
        for _ in range(10):
            generator.step()
        assert generator.population == 5
        assert generator.departed == []

    def test_departure_after_validated(self, paper_graph):
        with pytest.raises(ValueError):
            make_generator(paper_graph, [ArrivalEvent(1, 1)], departure_after=0)


class TestRushHour:
    def test_total_preserved(self):
        events = rush_hour_arrivals(start=10, duration=60, total=47)
        assert sum(e.count for e in events) == 47
        assert all(10 <= e.second < 70 for e in events)

    def test_single_burst(self):
        events = rush_hour_arrivals(start=0, duration=3, total=5, burst_every=10)
        assert len(events) == 1
        assert events[0].count == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            rush_hour_arrivals(0, 10, 0)
        with pytest.raises(ValueError):
            rush_hour_arrivals(0, 0, 5)

    def test_end_to_end_with_collector(self, paper_graph, paper_readers):
        """Arriving objects become observable as they pass readers."""
        from repro.collector import EventDrivenCollector
        from repro.rfid.detection import DetectionModel

        generator = ArrivalTraceGenerator(
            paper_graph,
            DEFAULT_CONFIG,
            arrivals=rush_hour_arrivals(1, 20, 10),
            entry_points=[Point(4, 5)],
            rng=9,
        )
        model = DetectionModel(paper_readers, 1.0, 5)
        # Tags appear over time: build the mapping dynamically.
        collector = None
        for second in range(1, 40):
            generator.step()
            mapping = generator.tag_to_object()
            if collector is None and mapping:
                collector = EventDrivenCollector(mapping)
            if collector is not None:
                collector.register_tags(mapping)  # newly arrived tags
                readings = model.sample_second(
                    second, generator.tag_positions(), rng=second
                )
                collector.ingest_second(second, readings)
        assert collector is not None
        assert len(collector.observed_objects()) >= 5
