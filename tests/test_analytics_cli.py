"""The ``repro analytics`` verbs and analytics wiring, through main()."""

import json
import urllib.error
import urllib.request

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def analytics_run(tmp_path_factory):
    """One recorded ``analytics serve`` run: event log + summary doc."""
    root = tmp_path_factory.mktemp("analytics-run")
    events = root / "events.jsonl"
    out = root / "summary.json"
    assert main(
        [
            "analytics", "serve",
            "--objects", "5",
            "--seconds", "12",
            "--seed", "3",
            "--events", str(events),
            "--out", str(out),
        ]
    ) == 0
    return {"events": events, "out": out}


class TestAnalyticsServe:
    def test_report_and_equivalence_lines(self, analytics_run, capsys):
        assert main(
            ["analytics", "serve", "--objects", "4", "--seconds", "6",
             "--seed", "9"]
        ) == 0
        out = capsys.readouterr().out
        assert "== analytics ==" in out
        assert "accuracy vs ground truth" in out
        assert "recompute equivalence: OK" in out

    def test_out_document_shape(self, analytics_run):
        doc = json.loads(analytics_run["out"].read_text())
        assert doc["summary"]["epochs"] == 12
        assert "__hallways__" in doc["summary"]["occupancy"]
        assert "occupancy_mae" in doc["accuracy"]

    def test_event_log_carries_analytics_sections(self, analytics_run):
        lines = analytics_run["events"].read_text().splitlines()
        records = [json.loads(line) for line in lines[1:]]
        assert len(records) == 12
        assert all("analytics" in record for record in records)
        assert all("occupancy" in record["analytics"] for record in records)


class TestAnalyticsWindowVerbs:
    def test_window_renders_table(self, analytics_run, capsys):
        assert main(
            ["analytics", "window", str(analytics_run["events"]),
             "--from", "3", "--to", "9"]
        ) == 0
        out = capsys.readouterr().out
        assert "== analytics window [3..9]" in out
        assert "__hallways__" in out

    def test_window_json_boundaries_inclusive(self, analytics_run, capsys):
        assert main(
            ["analytics", "window", str(analytics_run["events"]),
             "--from", "3", "--to", "9", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["epochs"] == 7
        assert doc["first_second"] == 3
        assert doc["last_second"] == 9

    def test_empty_window_notes_no_epochs(self, analytics_run, capsys):
        assert main(
            ["analytics", "window", str(analytics_run["events"]),
             "--from", "100"]
        ) == 0
        assert "no analytics epochs" in capsys.readouterr().out

    def test_report_covers_full_log(self, analytics_run, capsys):
        assert main(
            ["analytics", "report", str(analytics_run["events"]), "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["epochs"] == 12
        assert doc["window"] == {"t0": None, "t1": None}

    def test_missing_log_exits_nonzero(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["analytics", "window", str(tmp_path / "nope.jsonl")])


class TestServeIntegration:
    def test_serve_analytics_summary_line(self, tmp_path, capsys):
        root = tmp_path
        log = root / "readings.csv"
        plan = root / "plan.json"
        deployment = root / "deployment.json"
        assert main(
            ["simulate", "--objects", "6", "--seconds", "8", "--seed", "4",
             "--readings", str(log), "--plan", str(plan),
             "--deployment", str(deployment)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["serve", "--replay", str(log), "--plan", str(plan),
             "--deployment", str(deployment), "--quiet", "--analytics",
             "--events", str(root / "epochs.jsonl")]
        ) == 0
        out = capsys.readouterr().out
        assert "analytics: 8 epochs" in out
        records = [
            json.loads(line)
            for line in (root / "epochs.jsonl").read_text().splitlines()[1:]
        ]
        assert all("analytics" in record for record in records)

    def test_analytics_endpoint_serves_summary(self):
        from repro.config import DEFAULT_CONFIG
        from repro.obs.expo import MetricsServer
        from repro.service import LiveSimSource, TrackingService
        from repro.sim import Simulation

        config = DEFAULT_CONFIG.with_overrides(seed=6, num_objects=4)
        with TrackingService(config, seed=6) as service:
            engine = service.enable_analytics()
            sim = Simulation(
                config, plan=service.plan, readers=service.readers,
                build_symbolic=False,
            )
            for batch in LiveSimSource(sim, 5).batches():
                service.process_batch(batch)
            server = MetricsServer(
                snapshot_provider=lambda: {},
                analytics_provider=engine.summary,
                port=0,
            )
            port = server.start()
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/analytics"
                ) as response:
                    doc = json.load(response)
            finally:
                server.stop()
        assert doc["epochs"] == 5
        assert doc["top_regions"]
        assert doc == json.loads(json.dumps(engine.summary()))

    def test_analytics_endpoint_404_when_unattached(self):
        from repro.obs.expo import MetricsServer

        server = MetricsServer(snapshot_provider=lambda: {}, port=0)
        port = server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"http://127.0.0.1:{port}/analytics")
            assert excinfo.value.code == 404
        finally:
            server.stop()


class TestTopPanel:
    def test_top_once_renders_occupancy_panel(self, analytics_run, capsys):
        assert main(
            ["top", "--events", str(analytics_run["events"]),
             "--once", "--no-ansi"]
        ) == 0
        out = capsys.readouterr().out
        assert "analytics" in out
        assert "flow events=" in out

    def test_top_without_analytics_sections_has_no_panel(
        self, tmp_path, capsys
    ):
        root = tmp_path
        log = root / "readings.csv"
        plan = root / "plan.json"
        deployment = root / "deployment.json"
        assert main(
            ["simulate", "--objects", "4", "--seconds", "5", "--seed", "2",
             "--readings", str(log), "--plan", str(plan),
             "--deployment", str(deployment)]
        ) == 0
        assert main(
            ["serve", "--replay", str(log), "--plan", str(plan),
             "--deployment", str(deployment), "--quiet",
             "--events", str(root / "epochs.jsonl")]
        ) == 0
        capsys.readouterr()
        assert main(
            ["top", "--events", str(root / "epochs.jsonl"),
             "--once", "--no-ansi"]
        ) == 0
        out = capsys.readouterr().out
        assert "flow events=" not in out


class TestPromBuildInfoFix:
    def test_offline_prom_reports_producing_build(self, tmp_path, capsys):
        """`repro stats --prom` renders the build that wrote the trace."""
        trace = tmp_path / "trace.json"
        assert main(
            ["simulate", "--objects", "4", "--seconds", "5", "--seed", "2",
             "--trace", str(trace)]
        ) == 0
        doc = json.loads(trace.read_text())
        assert "build" in doc, "trace snapshots must embed build info"
        # Forge a foreign build to prove --prom prefers the embedded one.
        doc["build"] = {"version": "0.0.0-recorded", "python": "3.0.0"}
        trace.write_text(json.dumps(doc))
        capsys.readouterr()
        assert main(["stats", str(trace), "--prom"]) == 0
        out = capsys.readouterr().out
        assert 'version="0.0.0-recorded"' in out
        assert "repro_build_info" in out
