"""Tests for walking graph construction, locations, and distances."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.floorplan import FloorPlanBuilder
from repro.geometry import Point
from repro.graph import (
    EdgeKind,
    GraphLocation,
    NodeKind,
    build_walking_graph,
    plan_route,
)


class TestConstruction:
    def test_small_plan_structure(self, small_graph):
        # 1 hallway with 2 endpoints + 4 door attachment nodes = 6 hallway
        # nodes, plus 4 room nodes.
        rooms = [n for n in small_graph.nodes if n.kind is NodeKind.ROOM]
        hall_nodes = [n for n in small_graph.nodes if n.kind is NodeKind.HALLWAY]
        assert len(rooms) == 4
        assert len(hall_nodes) == 4  # doors at x=5 and x=15 shared by 2 rooms each
        door_edges = [e for e in small_graph.edges if e.kind is EdgeKind.DOOR]
        assert len(door_edges) == 4

    def test_connected(self, paper_graph):
        # Validation would raise otherwise; double-check via distances.
        nodes = paper_graph.nodes
        for node in nodes[:10]:
            assert paper_graph.node_distance(nodes[0].node_id, node.node_id) < 1e9

    def test_room_nodes_have_degree_one(self, paper_graph):
        for room_id in paper_graph.room_ids():
            assert paper_graph.degree(paper_graph.room_node(room_id)) == 1

    def test_door_edge_lookup(self, paper_graph):
        edge = paper_graph.door_edge("R1")
        assert edge.kind is EdgeKind.DOOR
        assert edge.room_id == "R1"

    def test_edges_join_node_points(self, paper_graph):
        for edge in paper_graph.edges:
            assert edge.path.start.is_close(
                paper_graph.node(edge.node_a).point, tol=1e-6
            )
            assert edge.path.end.is_close(
                paper_graph.node(edge.node_b).point, tol=1e-6
            )

    def test_loop_intersections_merge_nodes(self, paper_graph):
        # The loop corners are crossings of horizontal and vertical
        # hallways; each must be a single shared node of degree >= 3.
        corner_points = [Point(5, 5), Point(59, 5), Point(5, 27), Point(59, 27)]
        corner_nodes = [
            n for n in paper_graph.nodes
            if any(n.point.is_close(c, tol=1e-6) for c in corner_points)
        ]
        assert len(corner_nodes) == 4
        for node in corner_nodes:
            assert paper_graph.degree(node.node_id) >= 3

    def test_total_edge_length_matches_hallways_plus_spurs(self, paper_graph):
        plan = paper_graph.floorplan
        hallway_total = sum(h.length for h in plan.hallways)
        spur_total = sum(
            paper_graph.door_edge(r.room_id).length for r in plan.rooms
        )
        assert paper_graph.total_edge_length == pytest.approx(
            hallway_total + spur_total, rel=1e-9
        )

    def test_disconnected_plan_rejected(self):
        builder = FloorPlanBuilder()
        builder.add_hallway("H1", Point(0, 5), Point(10, 5), width=2.0)
        builder.add_hallway("H2", Point(0, 25), Point(10, 25), width=2.0)
        plan = builder.build()
        with pytest.raises(ValueError, match="connected"):
            build_walking_graph(plan)


class TestEdgeApi:
    def test_other_and_offset_of(self, small_graph):
        edge = small_graph.edges[0]
        assert edge.other(edge.node_a) == edge.node_b
        assert edge.other(edge.node_b) == edge.node_a
        assert edge.offset_of(edge.node_a) == 0.0
        assert edge.offset_of(edge.node_b) == pytest.approx(edge.length)

    def test_other_rejects_stranger(self, small_graph):
        edge = small_graph.edges[0]
        with pytest.raises(ValueError):
            edge.other("not-a-node")


class TestLocate:
    def test_locate_on_hallway(self, small_graph):
        loc, dist = small_graph.locate(Point(7.0, 5.0))
        assert dist == pytest.approx(0.0, abs=1e-9)
        assert small_graph.point_of(loc).is_close(Point(7.0, 5.0))

    def test_locate_off_graph_snaps(self, small_graph):
        loc, dist = small_graph.locate(Point(7.0, 6.5))
        assert dist == pytest.approx(1.5)
        assert small_graph.point_of(loc).is_close(Point(7.0, 5.0))

    def test_node_location_roundtrip(self, paper_graph):
        for node in paper_graph.nodes[:20]:
            loc = paper_graph.node_location(node.node_id)
            assert paper_graph.point_of(loc).is_close(node.point, tol=1e-6)


class TestDistances:
    def test_same_edge_distance(self, small_graph):
        loc_a, _ = small_graph.locate(Point(2, 5))
        loc_b, _ = small_graph.locate(Point(4, 5))
        assert small_graph.distance(loc_a, loc_b) == pytest.approx(2.0)

    def test_symmetry(self, paper_graph):
        loc_a, _ = paper_graph.locate(Point(10, 5))
        loc_b, _ = paper_graph.locate(Point(30, 27))
        assert paper_graph.distance(loc_a, loc_b) == pytest.approx(
            paper_graph.distance(loc_b, loc_a)
        )

    def test_identity(self, paper_graph):
        loc, _ = paper_graph.locate(Point(10, 5))
        assert paper_graph.distance(loc, loc) == 0.0

    def test_distance_through_room_door(self, small_graph):
        # From inside R1 (center (5,2)) to the hallway point above its door.
        room_loc = small_graph.node_location(small_graph.room_node("R1"))
        hall_loc, _ = small_graph.locate(Point(5, 5))
        expected = small_graph.door_edge("R1").length
        assert small_graph.distance(room_loc, hall_loc) == pytest.approx(expected)

    def test_loop_takes_shorter_way_around(self, paper_graph):
        # Two points on the loop: network distance must be min of the two
        # ways around, never longer than half the loop + slack.
        loc_a, _ = paper_graph.locate(Point(10, 5))
        loc_b, _ = paper_graph.locate(Point(10, 27))
        direct = paper_graph.distance(loc_a, loc_b)
        # Going straight up the left vertical hallway: 5->10 = 22 plus 2*5
        # horizontal legs to reach x=5 and back.
        assert direct <= 22 + 10 + 1e-6

    def test_distance_to_node(self, paper_graph):
        loc, _ = paper_graph.locate(Point(10, 5))
        room_node = paper_graph.room_node("R1")
        via_generic = paper_graph.distance(
            loc, paper_graph.node_location(room_node)
        )
        assert paper_graph.distance_to_node(loc, room_node) == pytest.approx(
            via_generic
        )

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0, max_value=60),
        st.floats(min_value=0, max_value=30),
        st.floats(min_value=0, max_value=60),
        st.floats(min_value=0, max_value=30),
        st.floats(min_value=0, max_value=60),
        st.floats(min_value=0, max_value=30),
    )
    def test_triangle_inequality(self, paper_graph, x1, y1, x2, y2, x3, y3):
        a, _ = paper_graph.locate(Point(x1, y1))
        b, _ = paper_graph.locate(Point(x2, y2))
        c, _ = paper_graph.locate(Point(x3, y3))
        ab = paper_graph.distance(a, b)
        bc = paper_graph.distance(b, c)
        ac = paper_graph.distance(a, c)
        assert ac <= ab + bc + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0, max_value=60),
        st.floats(min_value=0, max_value=30),
        st.floats(min_value=0, max_value=60),
        st.floats(min_value=0, max_value=30),
    )
    def test_network_distance_lower_bounded_by_euclidean(
        self, paper_graph, x1, y1, x2, y2
    ):
        a, da = paper_graph.locate(Point(x1, y1))
        b, db = paper_graph.locate(Point(x2, y2))
        pa = paper_graph.point_of(a)
        pb = paper_graph.point_of(b)
        assert paper_graph.distance(a, b) >= pa.distance_to(pb) - 1e-6


class TestRouting:
    def test_route_end_is_destination(self, paper_graph):
        start, _ = paper_graph.locate(Point(10, 5))
        dest = paper_graph.room_node("R20")
        route = plan_route(paper_graph, start, dest)
        end_point = paper_graph.point_of(route.end)
        assert end_point.is_close(paper_graph.node(dest).point, tol=1e-6)

    def test_route_length_matches_distance(self, paper_graph):
        start, _ = paper_graph.locate(Point(10, 5))
        dest = paper_graph.room_node("R20")
        route = plan_route(paper_graph, start, dest)
        assert route.total_length == pytest.approx(
            paper_graph.distance_to_node(start, dest), rel=1e-9
        )

    def test_route_from_destination_is_empty(self, paper_graph):
        dest = paper_graph.room_node("R5")
        start = paper_graph.node_location(dest)
        route = plan_route(paper_graph, start, dest)
        assert route.total_length == pytest.approx(0.0, abs=1e-9)

    def test_location_at_walks_monotonically(self, paper_graph):
        start, _ = paper_graph.locate(Point(10, 5))
        dest = paper_graph.room_node("R25")
        route = plan_route(paper_graph, start, dest)
        previous = None
        for arc in [0.0, 0.5, 1.5, route.total_length / 2, route.total_length]:
            loc = route.location_at(arc)
            point = paper_graph.point_of(loc)
            if previous is not None:
                # Each sampled point advances along the path: its remaining
                # distance to the destination must not increase.
                rem_prev = paper_graph.distance_to_node(previous, dest)
                rem_now = paper_graph.distance_to_node(loc, dest)
                assert rem_now <= rem_prev + 1e-6
            previous = loc
            del point

    def test_location_at_clamps(self, paper_graph):
        start, _ = paper_graph.locate(Point(10, 5))
        dest = paper_graph.room_node("R25")
        route = plan_route(paper_graph, start, dest)
        assert route.location_at(route.total_length + 100) == route.end

    def test_connecting_edge_rejects_non_adjacent(self, paper_graph):
        room_a = paper_graph.room_node("R1")
        room_b = paper_graph.room_node("R2")
        with pytest.raises(ValueError):
            paper_graph.connecting_edge(room_a, room_b)


class TestGraphLocation:
    def test_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            GraphLocation(0, -1.0)

    def test_moved_to(self):
        loc = GraphLocation(3, 2.0)
        assert loc.moved_to(5.0) == GraphLocation(3, 5.0)
