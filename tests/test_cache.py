"""Tests for the cache management module."""

import numpy as np
import pytest

from repro.cache import CacheStats, ParticleCacheManager
from repro.core import ParticleSet


def particles(offset=1.0):
    ps = ParticleSet.empty(8)
    ps.offset[:] = offset
    return ps


class TestCacheBasics:
    def test_miss_on_empty(self):
        cache = ParticleCacheManager()
        assert cache.lookup("o1", 0) is None
        assert cache.stats.misses == 1

    def test_store_and_hit(self):
        cache = ParticleCacheManager()
        cache.store("o1", particles(2.0), state_second=5, device_generation=3)
        hit = cache.lookup("o1", 3)
        assert hit is not None
        ps, second = hit
        assert second == 5
        assert np.allclose(ps.offset, 2.0)
        assert cache.stats.hits == 1

    def test_lookup_returns_copy(self):
        cache = ParticleCacheManager()
        cache.store("o1", particles(2.0), 5, 3)
        ps, _ = cache.lookup("o1", 3)
        ps.offset[:] = 99.0
        ps2, _ = cache.lookup("o1", 3)
        assert np.allclose(ps2.offset, 2.0)

    def test_store_copies_input(self):
        cache = ParticleCacheManager()
        source = particles(2.0)
        cache.store("o1", source, 5, 3)
        source.offset[:] = 99.0
        ps, _ = cache.lookup("o1", 3)
        assert np.allclose(ps.offset, 2.0)

    def test_generation_mismatch_invalidates(self):
        cache = ParticleCacheManager()
        cache.store("o1", particles(), 5, 3)
        assert cache.lookup("o1", 4) is None
        assert cache.stats.invalidations == 1
        # Entry is evicted, not retried.
        assert "o1" not in cache
        assert cache.lookup("o1", 3) is None

    def test_replace(self):
        cache = ParticleCacheManager()
        cache.store("o1", particles(1.0), 5, 3)
        cache.store("o1", particles(7.0), 9, 3)
        ps, second = cache.lookup("o1", 3)
        assert second == 9
        assert np.allclose(ps.offset, 7.0)

    def test_evict_and_clear(self):
        cache = ParticleCacheManager()
        cache.store("o1", particles(), 5, 3)
        cache.store("o2", particles(), 6, 1)
        cache.evict("o1")
        assert "o1" not in cache
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_evict_missing_is_noop(self):
        ParticleCacheManager().evict("ghost")


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == pytest.approx(0.75)

    def test_hit_rate_empty(self):
        assert CacheStats().hit_rate == 0.0
