"""Tests for resampling algorithms (paper Algorithm 1 and alternatives)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    effective_sample_size,
    residual_resample,
    systematic_resample,
)
from repro.core.resampling import RESAMPLERS

ALL = list(RESAMPLERS.values())


def weight_arrays():
    return st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=64,
    ).filter(lambda ws: sum(ws) > 1e-9).map(np.array)


@pytest.mark.parametrize("resampler", ALL, ids=list(RESAMPLERS))
class TestCommonProperties:
    def test_output_length_default(self, resampler):
        weights = np.array([0.25, 0.25, 0.5])
        indices = resampler(weights, rng=0)
        assert len(indices) == 3

    def test_output_length_custom(self, resampler):
        weights = np.array([0.25, 0.25, 0.5])
        assert len(resampler(weights, 10, rng=0)) == 10

    def test_indices_in_range(self, resampler):
        weights = np.array([0.1, 0.2, 0.3, 0.4])
        indices = resampler(weights, 100, rng=1)
        assert indices.min() >= 0
        assert indices.max() < 4

    def test_zero_weight_never_selected(self, resampler):
        weights = np.array([0.5, 0.0, 0.5])
        indices = resampler(weights, 200, rng=2)
        assert not (indices == 1).any()

    def test_certain_weight_always_selected(self, resampler):
        weights = np.array([0.0, 1.0, 0.0])
        indices = resampler(weights, 50, rng=3)
        assert (indices == 1).all()

    def test_unnormalized_weights_accepted(self, resampler):
        a = resampler(np.array([1.0, 3.0]), 1000, rng=4)
        frac = (a == 1).mean()
        assert 0.6 < frac < 0.9

    def test_rejects_invalid(self, resampler):
        with pytest.raises(ValueError):
            resampler(np.array([]))
        with pytest.raises(ValueError):
            resampler(np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            resampler(np.array([0.0, 0.0]))

    @settings(max_examples=30, deadline=None)
    @given(weights=weight_arrays())
    def test_replication_proportional_to_weight(self, resampler, weights):
        n = 2000
        indices = resampler(weights, n, rng=9)
        counts = np.bincount(indices, minlength=len(weights))
        expected = weights / weights.sum() * n
        # Each count must be within a generous tolerance of expectation.
        assert np.all(np.abs(counts - expected) <= 0.12 * n + 2)


class TestSystematicSpecific:
    def test_low_variance(self):
        # Systematic resampling replicates deterministically up to +-1.
        weights = np.array([0.1, 0.2, 0.3, 0.4])
        indices = systematic_resample(weights, 100, rng=0)
        counts = np.bincount(indices, minlength=4)
        assert np.all(np.abs(counts - np.array([10, 20, 30, 40])) <= 1)

    def test_deterministic_given_seed(self):
        weights = np.array([0.5, 0.5])
        a = systematic_resample(weights, 10, rng=7)
        b = systematic_resample(weights, 10, rng=7)
        assert np.array_equal(a, b)

    def test_preserves_order(self):
        # Systematic indices are non-decreasing by construction.
        weights = np.array([0.2, 0.3, 0.1, 0.4])
        indices = systematic_resample(weights, 50, rng=5)
        assert np.all(np.diff(indices) >= 0)


class TestResidualSpecific:
    def test_guaranteed_copies(self):
        weights = np.array([0.5, 0.25, 0.25])
        indices = residual_resample(weights, 8, rng=0)
        counts = np.bincount(indices, minlength=3)
        # floor(8 * w) copies are guaranteed.
        assert counts[0] >= 4
        assert counts[1] >= 2
        assert counts[2] >= 2

    def test_exact_when_weights_divide(self):
        weights = np.array([0.25, 0.75])
        counts = np.bincount(residual_resample(weights, 8, rng=1), minlength=2)
        assert list(counts) == [2, 6]


class TestEffectiveSampleSize:
    def test_uniform_weights(self):
        assert effective_sample_size(np.ones(10) / 10) == pytest.approx(10.0)

    def test_degenerate_weights(self):
        weights = np.zeros(10)
        weights[3] = 1.0
        assert effective_sample_size(weights) == pytest.approx(1.0)

    def test_between_bounds(self):
        weights = np.array([0.7, 0.1, 0.1, 0.1])
        ess = effective_sample_size(weights)
        assert 1.0 < ess < 4.0
