"""Tests for the RFID substrate: readers, detection, deployment, readings."""

import numpy as np
import pytest

from repro.geometry import Point
from repro.rfid import (
    DetectionModel,
    RFIDReader,
    RFIDTag,
    deploy_readers_uniform,
    ranges_are_disjoint,
    reader_by_id,
)
from repro.rfid.readings import AggregatedReading, RawReading


class TestReader:
    def test_rejects_non_positive_range(self):
        with pytest.raises(ValueError):
            RFIDReader("d1", Point(0, 0), 0.0)

    def test_covers(self):
        reader = RFIDReader("d1", Point(0, 0), 2.0)
        assert reader.covers(Point(1.9, 0))
        assert not reader.covers(Point(2.1, 0))

    def test_with_range(self):
        reader = RFIDReader("d1", Point(0, 0), 2.0, hallway_id="H1")
        bigger = reader.with_range(3.0)
        assert bigger.activation_range == 3.0
        assert bigger.reader_id == "d1"
        assert bigger.hallway_id == "H1"

    def test_tag_record(self):
        tag = RFIDTag("tag1", "o1")
        assert tag.tag_id == "tag1"
        assert tag.object_id == "o1"


class TestDeployment:
    def test_count(self, paper_plan):
        readers = deploy_readers_uniform(paper_plan, 19, 2.0)
        assert len(readers) == 19
        assert len({r.reader_id for r in readers}) == 19

    def test_positions_on_hallway_centerlines(self, paper_plan):
        for reader in deploy_readers_uniform(paper_plan, 19, 2.0):
            hallway = paper_plan.hallway(reader.hallway_id)
            _, dist = hallway.project(reader.position)
            assert dist < 1e-9

    def test_disjoint_at_default_range(self, paper_plan):
        readers = deploy_readers_uniform(paper_plan, 19, 2.0)
        assert ranges_are_disjoint(readers)

    def test_disjoint_at_largest_sweep_range(self, paper_plan):
        readers = deploy_readers_uniform(paper_plan, 19, 2.5)
        assert ranges_are_disjoint(readers)

    def test_single_reader(self, paper_plan):
        readers = deploy_readers_uniform(paper_plan, 1, 2.0)
        assert len(readers) == 1

    def test_rejects_zero_count(self, paper_plan):
        with pytest.raises(ValueError):
            deploy_readers_uniform(paper_plan, 0, 2.0)

    def test_rejects_negative_margin(self, paper_plan):
        with pytest.raises(ValueError):
            deploy_readers_uniform(paper_plan, 19, 2.0, end_margin=-1.0)

    def test_reader_by_id(self, paper_plan):
        readers = deploy_readers_uniform(paper_plan, 5, 2.0)
        table = reader_by_id(readers)
        assert set(table) == {f"d{i}" for i in range(1, 6)}

    def test_reader_by_id_rejects_duplicates(self):
        reader = RFIDReader("d1", Point(0, 0), 2.0)
        with pytest.raises(ValueError):
            reader_by_id([reader, reader])


class TestDetectionModel:
    def _model(self, p=1.0, samples=10):
        readers = [RFIDReader("d1", Point(0, 0), 2.0), RFIDReader("d2", Point(10, 0), 2.0)]
        return DetectionModel(readers, detection_probability=p, samples_per_second=samples)

    def test_in_range_always_detected_at_p1(self):
        model = self._model(p=1.0)
        readings = model.sample_second(5, {"tag1": Point(1, 0)}, rng=0)
        assert len(readings) == 10
        assert all(r.reader_id == "d1" for r in readings)
        assert all(5 <= r.time < 6 for r in readings)

    def test_out_of_range_never_detected(self):
        model = self._model(p=1.0)
        assert model.sample_second(0, {"tag1": Point(5, 0)}, rng=0) == []

    def test_zero_probability_never_detects(self):
        model = self._model(p=0.0)
        assert model.sample_second(0, {"tag1": Point(1, 0)}, rng=0) == []

    def test_false_negative_rate_statistical(self):
        model = self._model(p=0.5, samples=1)
        rng = np.random.default_rng(7)
        hits = sum(
            bool(model.sample_second(s, {"tag1": Point(1, 0)}, rng=rng))
            for s in range(400)
        )
        assert 150 < hits < 250

    def test_multiple_tags(self):
        model = self._model(p=1.0)
        readings = model.sample_second(
            0, {"tag1": Point(1, 0), "tag2": Point(10.5, 0), "tag3": Point(50, 50)}, rng=0
        )
        by_tag = {r.tag_id for r in readings}
        assert by_tag == {"tag1", "tag2"}

    def test_readings_sorted_by_time(self):
        model = self._model(p=0.8)
        readings = model.sample_second(
            3, {"tag1": Point(1, 0), "tag2": Point(0.5, 0)}, rng=1
        )
        times = [r.time for r in readings]
        assert times == sorted(times)

    def test_missed_second_probability(self):
        model = self._model(p=0.85, samples=10)
        assert model.probability_of_missed_second() == pytest.approx(0.15 ** 10)

    def test_detecting_reader(self):
        model = self._model()
        assert model.detecting_reader(Point(1, 0)).reader_id == "d1"
        assert model.detecting_reader(Point(10.5, 0)).reader_id == "d2"
        assert model.detecting_reader(Point(5, 0)) is None

    def test_rejects_bad_parameters(self):
        readers = [RFIDReader("d1", Point(0, 0), 2.0)]
        with pytest.raises(ValueError):
            DetectionModel(readers, detection_probability=1.5)
        with pytest.raises(ValueError):
            DetectionModel(readers, samples_per_second=0)

    def test_deterministic_given_seed(self):
        model = self._model(p=0.7)
        a = model.sample_second(0, {"tag1": Point(1, 0)}, rng=42)
        b = model.sample_second(0, {"tag1": Point(1, 0)}, rng=42)
        assert a == b


class TestReadingRecords:
    def test_raw_reading_ordering(self):
        a = RawReading(1.0, "t", "d")
        b = RawReading(2.0, "t", "d")
        assert a < b

    def test_aggregated_rejects_negative_second(self):
        with pytest.raises(ValueError):
            AggregatedReading(second=-1, object_id="o", reader_id="d")
