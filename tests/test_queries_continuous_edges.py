"""Edge cases of ContinuousQueryMonitor that the sessions layer leans on:
leave/re-enter churn, the ``min_change`` boundary, and unregistering a
query mid-stream."""

import pytest

from repro.index import AnchorObjectTable
from repro.queries.continuous import ContinuousQueryMonitor
from repro.queries.engine import EngineSnapshot
from repro.queries.types import KNNQuery, RangeQuery, RangeResult
from repro.geometry import Point, Rect


class ScriptedEngine:
    """Engine stub whose per-query probabilities are set directly, so the
    monitor's diff logic can be pinned to exact values."""

    def __init__(self):
        self.results = {}
        self._range_queries = []
        self._knn_queries = []

    def register_range_query(self, query: RangeQuery) -> None:
        self._range_queries.append(query)

    def register_knn_query(self, query: KNNQuery) -> None:
        self._knn_queries.append(query)

    def unregister_query(self, query_id: str) -> bool:
        for queries in (self._range_queries, self._knn_queries):
            for index, query in enumerate(queries):
                if query.query_id == query_id:
                    del queries[index]
                    return True
        return False

    def clear_queries(self) -> None:
        self._range_queries.clear()
        self._knn_queries.clear()

    def evaluate(self, now, rng=None) -> EngineSnapshot:
        snapshot = EngineSnapshot(
            second=now, candidates=set(), table=AnchorObjectTable()
        )
        for query in self._range_queries:
            snapshot.range_results[query.query_id] = RangeResult(
                query.query_id, dict(self.results.get(query.query_id, {}))
            )
        return snapshot


WINDOW = Rect(0, 0, 10, 10)


@pytest.fixture()
def engine():
    return ScriptedEngine()


@pytest.fixture()
def monitor(engine):
    monitor = ContinuousQueryMonitor(engine, report_threshold=0.05, min_change=0.10)
    monitor.add_range_query("q", WINDOW)
    return monitor


class TestLeaveReenter:
    def test_object_leaving_and_reentering_across_ticks(self, engine, monitor):
        engine.results["q"] = {"o1": 0.5}
        first = monitor.tick(1)[0]
        assert first.entered == {"o1": 0.5}

        engine.results["q"] = {}
        second = monitor.tick(2)[0]
        assert second.left == ["o1"]
        assert not second.entered

        engine.results["q"] = {"o1": 0.4}
        third = monitor.tick(3)[0]
        # Re-entry is a fresh ENTER, not an update against the stale value.
        assert third.entered == {"o1": 0.4}
        assert not third.updated
        assert not third.left

    def test_drop_below_report_threshold_counts_as_leave(self, engine, monitor):
        engine.results["q"] = {"o1": 0.5}
        monitor.tick(1)
        engine.results["q"] = {"o1": 0.04}  # below report_threshold=0.05
        delta = monitor.tick(2)[0]
        assert delta.left == ["o1"]

    def test_exactly_at_report_threshold_is_in_result(self, engine, monitor):
        engine.results["q"] = {"o1": 0.05}
        delta = monitor.tick(1)[0]
        assert delta.entered == {"o1": 0.05}


class TestMinChangeBoundary:
    # min_change=0.125 is exactly representable in binary floating point,
    # so "exactly at the threshold" is a well-defined comparison.
    @pytest.fixture()
    def exact_monitor(self, engine):
        monitor = ContinuousQueryMonitor(
            engine, report_threshold=0.05, min_change=0.125
        )
        monitor.add_range_query("q", WINDOW)
        return monitor

    def test_change_exactly_at_threshold_is_reported(self, engine, exact_monitor):
        engine.results["q"] = {"o1": 0.500}
        exact_monitor.tick(1)
        engine.results["q"] = {"o1": 0.625}  # |Δ| == min_change == 0.125
        delta = exact_monitor.tick(2)[0]
        assert delta.updated == {"o1": 0.625}

    def test_change_just_below_threshold_is_silent(self, engine, exact_monitor):
        engine.results["q"] = {"o1": 0.500}
        exact_monitor.tick(1)
        engine.results["q"] = {"o1": 0.615}
        delta = exact_monitor.tick(2)[0]
        assert delta.is_empty

    def test_downward_change_at_threshold_is_reported(self, engine, exact_monitor):
        engine.results["q"] = {"o1": 0.500}
        exact_monitor.tick(1)
        engine.results["q"] = {"o1": 0.375}
        delta = exact_monitor.tick(2)[0]
        assert delta.updated == {"o1": 0.375}


class TestUnregisterMidStream:
    def test_removed_query_stops_producing_deltas(self, engine, monitor):
        monitor.add_range_query("other", WINDOW)
        engine.results["q"] = {"o1": 0.5}
        engine.results["other"] = {"o2": 0.5}
        assert {d.query_id for d in monitor.tick(1)} == {"q", "other"}

        assert monitor.remove_query("q") is True
        assert monitor.monitored_queries() == ["other"]
        deltas = monitor.tick(2)
        assert {d.query_id for d in deltas} == {"other"}
        # The engine no longer evaluates the removed query either.
        assert all(q.query_id != "q" for q in engine._range_queries)

    def test_remove_unknown_query_returns_false(self, monitor):
        assert monitor.remove_query("nope") is False

    def test_readded_query_starts_fresh(self, engine, monitor):
        engine.results["q"] = {"o1": 0.5}
        monitor.tick(1)
        monitor.remove_query("q")
        monitor.add_range_query("q", WINDOW)
        delta = monitor.tick(2)[0]
        # No stale baseline: everything present re-reports as entered.
        assert delta.entered == {"o1": 0.5}

    def test_engine_unregister_api(self):
        from repro.floorplan import small_test_plan
        from repro.queries.engine import IndoorQueryEngine

        engine = IndoorQueryEngine(small_test_plan(), [], {})
        engine.register_range_query(RangeQuery("a", WINDOW))
        engine.register_knn_query(KNNQuery("b", Point(5, 5), 2))
        assert engine.unregister_query("a") is True
        assert engine.unregister_query("a") is False
        assert engine.unregister_query("b") is True
        assert engine.range_queries == [] and engine.knn_queries == []
