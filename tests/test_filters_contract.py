"""Cross-backend contract of :mod:`repro.filters`.

Every registered backend — whatever its estimator — must honor the same
observable contract: posteriors are probability distributions over
anchors, states checkpoint and restore bit-exactly, results are
invariant to shard count, and incompatible state documents are refused
loudly instead of mis-decoded.
"""

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.filters import (
    DEFAULT_BACKEND,
    FACTORY,
    FilterStateError,
    available_backends,
    create_backend,
)
from repro.geometry import Point, Rect
from repro.rng import filter_run_rng
from repro.service import (
    CheckpointCompatibilityError,
    ReplaySource,
    TrackingService,
    load_checkpoint,
    restore_from_file,
    restore_service,
    save_checkpoint,
)
from repro.sim import Simulation

ALL_BACKENDS = ("particle", "kalman", "symbolic")

FAST = DEFAULT_CONFIG.with_overrides(num_objects=6, seed=19)


@pytest.fixture(scope="module")
def world():
    """A small simulated world with real reading histories."""
    sim = Simulation(FAST, build_symbolic=False)
    sim.run_for(30)
    collector = sim.pf_engine.collector
    histories = {
        obj: collector.history(obj) for obj in sorted(collector.observed_objects())
    }
    assert histories, "simulation produced no observed objects"
    return sim, histories


@pytest.fixture(scope="module")
def backends(world):
    sim, _ = world
    return {
        name: create_backend(
            name, sim.graph, sim.anchor_index, sim.readers, FAST
        )
        for name in ALL_BACKENDS
    }


@pytest.fixture(scope="module")
def replay_readings():
    sim = Simulation(FAST, build_symbolic=False)
    readings = []
    for _ in range(20):
        readings.extend(sim.step())
    return readings


def _rng_for(object_id, second):
    return filter_run_rng(FAST.seed, second, object_id)


class TestFactory:
    def test_all_backends_registered(self):
        assert set(ALL_BACKENDS) <= set(available_backends())

    def test_default_backend_is_particle(self):
        assert DEFAULT_BACKEND == "particle"

    def test_unknown_name_lists_known_backends(self, world):
        sim, _ = world
        with pytest.raises(ValueError, match="particle"):
            create_backend(
                "bogus", sim.graph, sim.anchor_index, sim.readers, FAST
            )

    def test_instance_passes_through(self, world, backends):
        sim, _ = world
        backend = backends["kalman"]
        assert (
            create_backend(backend, sim.graph, sim.anchor_index, sim.readers, FAST)
            is backend
        )

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_state_version_is_positive(self, name):
        assert FACTORY.state_version_of(name) >= 1


@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestBackendContract:
    def test_posterior_is_a_distribution(self, name, world, backends):
        _, histories = world
        backend = backends[name]
        for object_id, history in histories.items():
            run = backend.run(history, 30, rng=_rng_for(object_id, 30))
            posterior = run.posterior()
            assert posterior, (name, object_id)
            assert all(p >= 0.0 for p in posterior.values())
            assert sum(posterior.values()) == pytest.approx(1.0)

    def test_state_round_trip_is_bit_exact(self, name, world, backends):
        _, histories = world
        backend = backends[name]
        object_id, history = next(iter(histories.items()))
        run = backend.run(history, 30, rng=_rng_for(object_id, 30))
        document = run.state().to_state()
        decoded = backend.state_from_dict(document)
        assert decoded.to_state() == document

    def test_restored_state_reproduces_posterior(self, name, world, backends):
        _, histories = world
        backend = backends[name]
        object_id, history = next(iter(histories.items()))
        run = backend.run(history, 30, rng=_rng_for(object_id, 30))
        restored = backend.filter_from_state(
            backend.state_from_dict(run.state().to_state()),
            _rng_for(object_id, 30),
        )
        assert restored.posterior() == run.posterior()

    def test_missing_state_field_raises_filter_state_error(
        self, name, world, backends
    ):
        _, histories = world
        backend = backends[name]
        object_id, history = next(iter(histories.items()))
        run = backend.run(history, 30, rng=_rng_for(object_id, 30))
        document = run.state().to_state()
        document.pop(next(iter(document)))
        with pytest.raises(FilterStateError):
            backend.state_from_dict(document)

    def test_state_version_check(self, name, backends):
        backend = backends[name]
        backend.check_state_version(backend.state_version)
        with pytest.raises(FilterStateError):
            backend.check_state_version(backend.state_version + 1)

    def test_empty_history_is_rejected(self, name, backends):
        from repro.collector.collector import ReadingHistory

        backend = backends[name]
        empty = ReadingHistory(object_id="ghost", runs=())
        with pytest.raises(ValueError, match="ghost"):
            backend.run(empty, 10)


@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestShardInvariance:
    def test_serial_1_shard_equals_thread_3_shards(
        self, name, replay_readings
    ):
        """Shard count and execution mode never change any backend's output."""

        def run(num_shards, mode):
            service = TrackingService(
                FAST, num_shards=num_shards, mode=mode, filter_backend=name
            )
            service.sessions.subscribe_range(Rect(4, 0, 30, 12), session_id="r0")
            service.sessions.subscribe_knn(Point(30, 5), 3, session_id="k0")
            deltas = []
            try:
                for batch in ReplaySource(replay_readings, max_seconds=14).batches():
                    deltas.extend(service.process_batch(batch))
                table = service.snapshot().table
                tables = {
                    obj: table.distribution_of(obj) for obj in sorted(table.objects())
                }
            finally:
                service.close()
            keyed = [
                (d.query_id, d.second, d.entered, d.left, d.updated) for d in deltas
            ]
            return keyed, tables

        deltas_a, tables_a = run(1, "serial")
        deltas_b, tables_b = run(3, "thread")
        assert deltas_a == deltas_b
        assert tables_a == tables_b


class TestParticleEquivalence:
    """``--filter particle`` must be the pre-refactor filter, bit for bit."""

    def test_backend_run_matches_legacy_filter(self, world, backends):
        _, histories = world
        backend = backends["particle"]
        for object_id, history in histories.items():
            legacy = backend.filter.run(
                history, 30, rng=_rng_for(object_id, 30)
            )
            run = backend.run(history, 30, rng=_rng_for(object_id, 30))
            state = run.state()
            for fieldname in ("edge", "offset", "direction", "speed", "dwelling"):
                assert np.array_equal(
                    getattr(legacy.particles, fieldname),
                    getattr(state, fieldname),
                ), (object_id, fieldname)

    def test_generic_replay_matches_legacy_filter(self, world, backends):
        """The base-class replay driver mirrors the legacy loop exactly."""
        from repro.filters.base import FilterBackend

        _, histories = world
        backend = backends["particle"]
        for object_id, history in histories.items():
            legacy = backend.filter.run(history, 30, rng=_rng_for(object_id, 30))
            run = FilterBackend.run(
                backend, history, 30, rng=_rng_for(object_id, 30)
            )
            state = run.state()
            assert run.end_second == legacy.end_second
            for fieldname in ("edge", "offset", "direction", "speed", "dwelling"):
                assert np.array_equal(
                    getattr(legacy.particles, fieldname),
                    getattr(state, fieldname),
                ), (object_id, fieldname)


class TestCheckpointCompatibility:
    def _served(self, readings, name, seconds=10):
        service = TrackingService(FAST, filter_backend=name)
        for batch in ReplaySource(readings, max_seconds=seconds).batches():
            service.process_batch(batch)
        return service

    @pytest.mark.parametrize("name", ["particle", "kalman"])
    def test_round_trip_any_cacheable_backend(
        self, name, replay_readings, tmp_path
    ):
        path = tmp_path / "ckpt.json"
        service = self._served(replay_readings, name)
        try:
            save_checkpoint(service, path)
        finally:
            service.close()
        restored = restore_from_file(path)
        try:
            assert restored.executor.filter_backend.name == name
            assert restored.ticks == 10
        finally:
            restored.close()

    def test_mismatched_backend_is_refused(self, replay_readings, tmp_path):
        path = tmp_path / "ckpt.json"
        service = self._served(replay_readings, "particle")
        try:
            save_checkpoint(service, path)
        finally:
            service.close()
        with pytest.raises(CheckpointCompatibilityError, match="particle"):
            restore_from_file(path, filter_backend="kalman")

    def test_restore_state_refuses_foreign_backend(self, replay_readings):
        service = self._served(replay_readings, "particle")
        try:
            state = service.state_dict()
        finally:
            service.close()
        other = TrackingService(FAST, filter_backend="kalman")
        try:
            with pytest.raises(CheckpointCompatibilityError, match="kalman"):
                other.restore_state(state)
        finally:
            other.close()

    def test_mismatched_state_version_is_refused(self, replay_readings):
        service = self._served(replay_readings, "particle")
        try:
            state = service.state_dict()
        finally:
            service.close()
        state["filter"]["state_version"] = 99
        with pytest.raises(CheckpointCompatibilityError, match="version"):
            restore_service(state)

    def test_v1_checkpoint_is_migrated(self, replay_readings, tmp_path):
        """Pre-backend checkpoints load as implicit particle state."""
        import json

        path = tmp_path / "ckpt.json"
        service = self._served(replay_readings, "particle")
        try:
            save_checkpoint(service, path)
        finally:
            service.close()
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        # Rewrite the file in the version-1 layout.
        state = document["state"]
        state.pop("filter")
        state["cache"] = {
            object_id: {
                "state_second": entry["state_second"],
                "device_generation": entry["device_generation"],
                "particles": entry["state"],
            }
            for object_id, entry in state["cache"]["entries"].items()
        }
        document["checkpoint_version"] = 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)

        migrated = load_checkpoint(path)
        assert migrated["filter"] == {"backend": "particle", "state_version": 1}
        restored = restore_from_file(path)
        try:
            assert restored.executor.filter_backend.name == "particle"
            assert restored.ticks == 10
        finally:
            restored.close()

    def test_v1_migration_refused_onto_other_backend(
        self, replay_readings, tmp_path
    ):
        import json

        path = tmp_path / "ckpt.json"
        service = self._served(replay_readings, "particle")
        try:
            save_checkpoint(service, path)
        finally:
            service.close()
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        document["state"].pop("filter")
        document["checkpoint_version"] = 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        with pytest.raises(CheckpointCompatibilityError, match="symbolic"):
            restore_from_file(path, filter_backend="symbolic")


class TestResumeEquivalence:
    """Resuming from a cached state must equal a cold replay (kalman).

    The Kalman backend draws no randomness, so a resumed run and a fresh
    run must agree bit-for-bit — the property the cache layer relies on.
    """

    def test_kalman_resume_equals_fresh(self, world, backends):
        _, histories = world
        backend = backends["kalman"]
        object_id, history = next(iter(histories.items()))
        mid = backend.run(history, 20)
        resumed = backend.run(
            history, 30, resume=(mid.state(), mid.end_second)
        )
        fresh = backend.run(history, 30)
        assert resumed.state().to_state() == fresh.state().to_state()
        assert resumed.posterior() == fresh.posterior()
