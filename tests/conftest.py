"""Shared fixtures.

Expensive immutable structures (floor plans, walking graphs, anchor
indexes, deployments) are session-scoped: they are read-only for every
test that uses them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.floorplan import paper_office_plan, small_test_plan
from repro.graph import build_anchor_index, build_walking_graph
from repro.rfid import deploy_readers_uniform, reader_by_id


@pytest.fixture(scope="session")
def paper_plan():
    return paper_office_plan()


@pytest.fixture(scope="session")
def small_plan():
    return small_test_plan()


@pytest.fixture(scope="session")
def paper_graph(paper_plan):
    return build_walking_graph(paper_plan)


@pytest.fixture(scope="session")
def small_graph(small_plan):
    return build_walking_graph(small_plan)


@pytest.fixture(scope="session")
def paper_anchors(paper_graph):
    return build_anchor_index(paper_graph, spacing=1.0)


@pytest.fixture(scope="session")
def small_anchors(small_graph):
    return build_anchor_index(small_graph, spacing=1.0)


@pytest.fixture(scope="session")
def paper_readers(paper_plan):
    return deploy_readers_uniform(
        paper_plan, DEFAULT_CONFIG.num_readers, DEFAULT_CONFIG.activation_range
    )


@pytest.fixture(scope="session")
def paper_readers_by_id(paper_readers):
    return reader_by_id(paper_readers)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
