"""Tests for floor plan entities, validation, builder, and presets."""

import pytest

from repro.floorplan import (
    FloorPlan,
    FloorPlanBuilder,
    FloorPlanError,
    paper_office_plan,
)
from repro.floorplan.entities import Hallway
from repro.geometry import Point, Rect, Segment


class TestHallway:
    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            Hallway("H", Segment(Point(0, 0), Point(10, 0)), 0.0)

    def test_rejects_degenerate_centerline(self):
        with pytest.raises(ValueError):
            Hallway("H", Segment(Point(1, 1), Point(1, 1)), 2.0)

    def test_rejects_diagonal_centerline(self):
        with pytest.raises(ValueError):
            Hallway("H", Segment(Point(0, 0), Point(5, 5)), 2.0)

    def test_band_horizontal(self):
        h = Hallway("H", Segment(Point(0, 5), Point(10, 5)), 2.0)
        assert h.band == Rect(0, 4, 10, 6)

    def test_band_vertical(self):
        h = Hallway("H", Segment(Point(5, 0), Point(5, 10)), 2.0)
        assert h.band == Rect(4, 0, 6, 10)

    def test_contains(self):
        h = Hallway("H", Segment(Point(0, 5), Point(10, 5)), 2.0)
        assert h.contains(Point(5, 5.9))
        assert not h.contains(Point(5, 6.1))

    def test_project_and_point_at(self):
        h = Hallway("H", Segment(Point(0, 5), Point(10, 5)), 2.0)
        offset, dist = h.project(Point(3, 6))
        assert offset == pytest.approx(3.0)
        assert dist == pytest.approx(1.0)
        assert h.point_at(3) == Point(3, 5)


class TestBuilder:
    def _builder(self):
        builder = FloorPlanBuilder()
        builder.add_hallway("H1", Point(0, 5), Point(20, 5), width=2.0)
        return builder

    def test_room_with_door_below_hallway(self):
        builder = self._builder()
        room = builder.add_room("R1", Rect(2, 0, 8, 4), "H1")
        assert room.door.position == Point(5, 4)
        assert room.door.hallway_point == Point(5, 5)
        assert room.door.spur_length == pytest.approx(1.0)

    def test_room_with_door_above_hallway(self):
        builder = self._builder()
        room = builder.add_room("R1", Rect(2, 6, 8, 12), "H1")
        assert room.door.position == Point(5, 6)

    def test_custom_door_x(self):
        builder = self._builder()
        room = builder.add_room("R1", Rect(2, 0, 8, 4), "H1", door_x=3.0)
        assert room.door.position == Point(3, 4)

    def test_door_x_outside_room_rejected(self):
        builder = self._builder()
        with pytest.raises(FloorPlanError):
            builder.add_room("R1", Rect(2, 0, 8, 4), "H1", door_x=9.0)

    def test_unknown_hallway_rejected(self):
        builder = self._builder()
        with pytest.raises(FloorPlanError):
            builder.add_room("R1", Rect(2, 0, 8, 4), "NOPE")

    def test_far_room_rejected(self):
        builder = self._builder()
        with pytest.raises(FloorPlanError):
            # Room ends 3 m below the centerline: door cannot reach.
            builder.add_room("R1", Rect(2, 0, 8, 2), "H1")

    def test_vertical_hallway_room(self):
        builder = FloorPlanBuilder()
        builder.add_hallway("V", Point(5, 0), Point(5, 20), width=2.0)
        room = builder.add_room("R1", Rect(6, 2, 12, 8), "V")
        assert room.door.position == Point(6, 5)
        assert room.door.hallway_point == Point(5, 5)


class TestFloorPlanValidation:
    def test_needs_hallway(self):
        with pytest.raises(FloorPlanError):
            FloorPlan([], [])

    def test_duplicate_hallway_ids(self):
        h = Hallway("H", Segment(Point(0, 5), Point(10, 5)), 2.0)
        with pytest.raises(FloorPlanError):
            FloorPlan([h, h], [])

    def test_overlapping_rooms_rejected(self):
        builder = FloorPlanBuilder()
        builder.add_hallway("H1", Point(0, 5), Point(20, 5), width=2.0)
        builder.add_room("R1", Rect(0, 0, 8, 4), "H1")
        builder.add_room("R2", Rect(6, 0, 12, 4), "H1")
        with pytest.raises(FloorPlanError):
            builder.build()

    def test_room_overlapping_hallway_rejected(self):
        builder = FloorPlanBuilder()
        builder.add_hallway("H1", Point(0, 5), Point(20, 5), width=2.0)
        builder.add_room("R1", Rect(0, 0, 8, 5), "H1")
        with pytest.raises(FloorPlanError):
            builder.build()


class TestFloorPlanQueries:
    def test_room_at(self, small_plan):
        assert small_plan.room_at(Point(5, 2)).room_id == "R1"
        assert small_plan.room_at(Point(5, 5)) is None

    def test_hallway_at(self, small_plan):
        assert small_plan.hallway_at(Point(5, 5)).hallway_id == "H1"
        assert small_plan.hallway_at(Point(5, 2)) is None

    def test_contains(self, small_plan):
        assert small_plan.contains(Point(5, 5))
        assert small_plan.contains(Point(5, 2))
        assert not small_plan.contains(Point(50, 50))

    def test_lookup_unknown_raises(self, small_plan):
        with pytest.raises(FloorPlanError):
            small_plan.room("NOPE")
        with pytest.raises(FloorPlanError):
            small_plan.hallway("NOPE")

    def test_has_room(self, small_plan):
        assert small_plan.has_room("R1")
        assert not small_plan.has_room("R99")

    def test_total_area_small_plan(self, small_plan):
        # Hallway 20x2 plus four 10x4 rooms.
        assert small_plan.total_area == pytest.approx(40 + 160)


class TestPaperPreset:
    def test_counts(self, paper_plan):
        assert len(paper_plan.rooms) == 30
        assert len(paper_plan.hallways) == 4

    def test_every_room_has_distinct_door(self, paper_plan):
        door_ids = [room.door.door_id for room in paper_plan.rooms]
        assert len(set(door_ids)) == 30

    def test_doors_attach_to_their_hallways(self, paper_plan):
        for room in paper_plan.rooms:
            hallway = paper_plan.hallway(room.door.hallway_id)
            _, dist = hallway.project(room.door.hallway_point)
            assert dist < 1e-6

    def test_rooms_dont_overlap_bands(self, paper_plan):
        for room in paper_plan.rooms:
            for hallway in paper_plan.hallways:
                assert room.boundary.overlap_area(hallway.band) < 1e-9

    def test_bounds(self, paper_plan):
        bounds = paper_plan.bounds
        assert bounds.width == pytest.approx(56.0)
        assert bounds.height == pytest.approx(32.0)

    def test_custom_size(self):
        plan = paper_office_plan(width=80, height=40)
        assert len(plan.rooms) == 30
        assert plan.bounds.width == pytest.approx(72.0)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            paper_office_plan(width=10, height=8)

    def test_deterministic(self):
        a = paper_office_plan()
        b = paper_office_plan()
        assert [r.boundary for r in a.rooms] == [r.boundary for r in b.rooms]
