"""Sharded filter execution: partitioning and the determinism guarantee.

The acceptance property of the service layer: a replay run with 1 shard
and with 4 shards produces identical standing-query results *and*
identical final particle states, because every filter run draws from a
private ``(seed, second, object_id)`` RNG stream.
"""

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.geometry import Point, Rect
from repro.service import (
    ReplaySource,
    TrackingService,
    partition_objects,
    shard_of,
)
from repro.sim import Simulation

FAST = DEFAULT_CONFIG.with_overrides(num_objects=8, seed=11)


@pytest.fixture(scope="module")
def replay_readings():
    sim = Simulation(FAST, build_symbolic=False)
    readings = []
    for _ in range(25):
        readings.extend(sim.step())
    return readings


def _delta_key(delta):
    return (delta.query_id, delta.second, delta.entered, delta.left, delta.updated)


def _run_service(readings, num_shards, mode, use_cache=True, seconds=None):
    service = TrackingService(
        FAST, num_shards=num_shards, mode=mode, use_cache=use_cache
    )
    service.sessions.subscribe_range(Rect(4, 0, 30, 12), session_id="r0")
    service.sessions.subscribe_knn(Point(30, 5), 3, session_id="k0")
    deltas = []
    for batch in ReplaySource(readings, max_seconds=seconds).batches():
        deltas.extend(service.process_batch(batch))
    return service, deltas


def _final_tables(service):
    table = service.snapshot().table
    return {obj: table.distribution_of(obj) for obj in sorted(table.objects())}


def _final_particles(service):
    cache = service.executor.cache
    assert cache is not None
    document = cache.state_dict()
    assert document["backend"] == "particle"
    return document["entries"]


class TestPartitioning:
    def test_shard_of_is_stable(self):
        assert shard_of("tag1", 4) == shard_of("tag1", 4)
        assert 0 <= shard_of("tag1", 4) < 4

    def test_partition_covers_everything_once(self):
        objects = [f"tag{i}" for i in range(20)]
        shards = partition_objects(objects, 3)
        assert sorted(sum(shards, [])) == sorted(objects)
        assert len(shards) == 3

    def test_partition_is_order_insensitive(self):
        objects = [f"tag{i}" for i in range(10)]
        assert partition_objects(objects, 4) == partition_objects(
            list(reversed(objects)), 4
        )

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_of("x", 0)


class TestShardDeterminism:
    def test_shards_1_vs_4_identical(self, replay_readings):
        """The acceptance criterion: shard count never changes results."""
        one, deltas_one = _run_service(replay_readings, 1, "thread")
        four, deltas_four = _run_service(replay_readings, 4, "thread")
        try:
            assert [_delta_key(d) for d in deltas_one] == [
                _delta_key(d) for d in deltas_four
            ]
            assert _final_tables(one) == _final_tables(four)
            # Final particle states, bit for bit.
            particles_one = _final_particles(one)
            particles_four = _final_particles(four)
            assert particles_one.keys() == particles_four.keys()
            for object_id in particles_one:
                state_a = particles_one[object_id]["state"]
                state_b = particles_four[object_id]["state"]
                for fieldname in state_a:
                    assert np.array_equal(
                        np.asarray(state_a[fieldname]),
                        np.asarray(state_b[fieldname]),
                    ), (object_id, fieldname)
        finally:
            one.close()
            four.close()

    def test_serial_equals_thread(self, replay_readings):
        serial, deltas_serial = _run_service(replay_readings, 3, "serial", seconds=12)
        thread, deltas_thread = _run_service(replay_readings, 3, "thread", seconds=12)
        try:
            assert [_delta_key(d) for d in deltas_serial] == [
                _delta_key(d) for d in deltas_thread
            ]
            assert _final_tables(serial) == _final_tables(thread)
        finally:
            serial.close()
            thread.close()

    def test_process_mode_shard_count_invariant(self, replay_readings):
        one, deltas_one = _run_service(
            replay_readings, 1, "process", use_cache=False, seconds=10
        )
        two, deltas_two = _run_service(
            replay_readings, 2, "process", use_cache=False, seconds=10
        )
        try:
            assert [_delta_key(d) for d in deltas_one] == [
                _delta_key(d) for d in deltas_two
            ]
            assert _final_tables(one) == _final_tables(two)
        finally:
            one.close()
            two.close()

    def test_process_mode_has_no_cache(self, replay_readings):
        service, _ = _run_service(
            replay_readings, 2, "process", use_cache=True, seconds=3
        )
        try:
            assert service.executor.cache is None
        finally:
            service.close()


class TestExecutorValidation:
    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            TrackingService(FAST, mode="fiber")

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="num_shards"):
            TrackingService(FAST, num_shards=0)
