"""Fleet telemetry: federation, tracing, SLO alerts — and their inertness.

Two properties anchor this file:

* **Inertness** — flipping observability on changes no query answer,
  table, or session delta, at any partition count, on both transports
  (the obs switch must never touch the RNG or placement).
* **Determinism of the merged view** — two same-seed runs produce the
  same federated registry modulo wall-clock-valued fields (timer
  totals, span timestamps): same families, same labels, same counter
  values, same histogram counts.
"""

import json

import pytest

import repro.obs as obs
from repro.gateway import GatewayCoordinator, GatewayServer, TenantWorld, demo_tenants
from repro.obs.alerts import AlertEngine, gateway_rules
from repro.obs.chrometrace import chrome_trace_events
from repro.obs.dashboard import TopState, render_top
from repro.service import LiveSimSource
from repro.sim import Simulation

SECONDS = 6


def _specs():
    return demo_tenants(2, base_seed=23, num_objects=4, plan="small")


def _batches(spec, seconds=SECONDS):
    world = TenantWorld(spec)
    sim = Simulation(
        world.config, plan=world.plan, readers=world.readers,
        build_symbolic=False,
    )
    return list(LiveSimSource(sim, seconds).batches())


@pytest.fixture(scope="module")
def tenant_batches():
    return {spec.tenant_id: _batches(spec) for spec in _specs()}


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with observability globally off."""
    obs.disable()
    yield
    obs.disable()


def _serve(tenant_batches, num_partitions, transport, observability):
    """One full run; returns (tables, deltas, coordinator-before-close)."""
    if observability:
        obs.enable(fresh=True)
    coordinator = GatewayCoordinator(
        _specs(),
        num_partitions=num_partitions,
        transport=transport,
        observability=observability,
        telemetry_interval=2,
    )
    deltas = {tid: [] for tid in tenant_batches}
    try:
        for spec in _specs():
            coordinator.subscribe_range(
                spec.tenant_id, TenantWorld(spec).plan.bounds, session_id="r0"
            )
        for step in range(SECONDS):
            for tid in tenant_batches:
                coordinator.submit_tick(tid, tenant_batches[tid][step])
            for _ in tenant_batches:
                tid, _second, tick_deltas = coordinator.collect_tick()
                deltas[tid].extend(
                    (d.query_id, d.second, d.entered, d.left, d.updated)
                    for d in tick_deltas
                )
        tables = {}
        for tid in tenant_batches:
            table = coordinator.latest_snapshot(tid).table
            tables[tid] = {
                obj: table.distribution_of(obj) for obj in sorted(table.objects())
            }
        return tables, deltas, coordinator
    except BaseException:
        coordinator.close()
        raise


def _run_and_close(tenant_batches, num_partitions, transport, observability):
    tables, deltas, coordinator = _serve(
        tenant_batches, num_partitions, transport, observability
    )
    coordinator.close()
    obs.disable()
    return tables, deltas


def _counter_view(snapshot):
    """(name, sorted labels, value) for every counter series."""
    return sorted(
        (
            series["name"],
            tuple(sorted(series.get("labels", {}).items())),
            series["value"],
        )
        for series in snapshot["counters"]
    )


def _histogram_view(snapshot):
    """(name, sorted labels, count): totals are wall-clock-valued."""
    return sorted(
        (
            series["name"],
            tuple(sorted(series.get("labels", {}).items())),
            series["count"],
        )
        for series in snapshot["histograms"]
    )


def _span_view(document):
    """(name, process, trace attr) multiset: timestamps are wall clock."""
    spans = document["trace"]["spans"]
    return sorted(
        (
            span["name"],
            span.get("process", 0),
            str((span.get("attrs") or {}).get("trace")),
        )
        for span in spans
    )


class TestInertness:
    """Telemetry on ≡ telemetry off, bit for bit."""

    @pytest.fixture(scope="class")
    def reference(self, tenant_batches):
        """Telemetry-off inline run at 1 partition."""
        return _run_and_close(tenant_batches, 1, "inline", False)

    @pytest.mark.parametrize("num_partitions", [1, 2, 4])
    def test_inline_observability_is_inert(
        self, tenant_batches, reference, num_partitions
    ):
        observed = _run_and_close(tenant_batches, num_partitions, "inline", True)
        assert observed == reference

    def test_process_observability_is_inert(self, tenant_batches, reference):
        observed = _run_and_close(tenant_batches, 2, "process", True)
        assert observed == reference


class TestFederation:
    def test_merged_registry_is_deterministic(self, tenant_batches):
        """Same seed twice → identical merged snapshots modulo wall clock."""
        views = []
        for _ in range(2):
            _tables, _deltas, coordinator = _serve(
                tenant_batches, 2, "process", True
            )
            try:
                polled = coordinator.poll_telemetry()
                assert polled == [0, 1]
                document = coordinator.fleet_snapshot()
                views.append(
                    (
                        _counter_view(document["metrics"]),
                        _histogram_view(document["metrics"]),
                        _span_view(document),
                    )
                )
            finally:
                coordinator.close()
                obs.disable()
        assert views[0] == views[1]

    #: Families produced only by the worker compute path, whose totals
    #: cannot depend on where the work ran. Session fan-out counters are
    #: excluded: delta non-emptiness is judged per partition slice in
    #: workers but against the merged table inline, so their attribution
    #: (not the query answers) legitimately differs between transports.
    COMPUTE_PREFIXES = ("cache.", "collector.", "filter.")

    def test_partition_labels_and_inline_totals_agree(self, tenant_batches):
        """Process-fleet compute counters, summed over partitions, match inline."""
        _t, _d, coordinator = _serve(tenant_batches, 2, "process", True)
        try:
            coordinator.poll_telemetry()
            fleet = coordinator.fleet_snapshot()["metrics"]
        finally:
            coordinator.close()
            obs.disable()
        partitioned = {}
        for name, labels, value in _counter_view(fleet):
            labels = dict(labels)
            if "partition" in labels and name.startswith(self.COMPUTE_PREFIXES):
                partitioned[name] = partitioned.get(name, 0) + value
        assert partitioned, "no worker-originated partition-labeled counters"
        assert "collector.aggregated_readings" in partitioned

        _t, _d, coordinator = _serve(tenant_batches, 2, "inline", True)
        try:
            inline = coordinator.fleet_snapshot()["metrics"]
        finally:
            coordinator.close()
            obs.disable()
        inline_totals = {}
        for name, _labels, value in _counter_view(inline):
            inline_totals[name] = inline_totals.get(name, 0) + value
        for name, total in partitioned.items():
            assert inline_totals.get(name) == total, name

    def test_chrome_trace_spans_processes(self, tenant_batches):
        """One tick's trace id covers the gateway and both worker pids."""
        _t, _d, coordinator = _serve(tenant_batches, 2, "process", True)
        try:
            coordinator.poll_telemetry()
            document = coordinator.fleet_snapshot()
        finally:
            coordinator.close()
            obs.disable()
        assert document["trace"]["processes"] == {
            "0": "gateway", "1": "partition-0", "2": "partition-1",
        }
        events = chrome_trace_events(document)
        names = {
            event["pid"]: event["args"]["name"]
            for event in events
            if event["name"] == "process_name"
        }
        assert names == {0: "gateway", 1: "partition-0", 2: "partition-1"}
        trace_id = "tenant-0/2"
        pids = {
            event["pid"]
            for event in events
            if event.get("args", {}).get("trace") == trace_id
        }
        assert pids == {0, 1, 2}

    def test_telemetry_op_disabled_worker_reports_empty(self, tenant_batches):
        """Workers spawned with telemetry off reply enabled=False, no data."""
        _t, _d, coordinator = _serve(tenant_batches, 2, "process", False)
        try:
            assert coordinator.poll_telemetry() == []
            reply = coordinator.handles[0].call({"op": "telemetry"})
            assert reply["enabled"] is False
            assert reply["metrics"] == {
                "counters": [], "gauges": [], "histograms": [],
            }
            assert reply["spans"] == []
        finally:
            coordinator.close()


class TestSlo:
    def test_health_partition_detail(self, tenant_batches):
        _t, _d, coordinator = _serve(tenant_batches, 2, "process", True)
        try:
            health = coordinator.health()
            assert health["ticks"] == SECONDS * len(_specs())
            assert health["last_second"] == SECONDS
            assert isinstance(health["last_tick_seconds"], float)
            assert len(health["workers"]) == 2
            for worker in health["workers"]:
                assert worker["alive"] is True
                assert worker["queue_depth"] == 0
                assert worker["sheds"] == 0
                assert worker["last_second"] == SECONDS
                assert worker["last_tick_age"] == 0
        finally:
            coordinator.close()
            obs.disable()

    def test_slo_record_and_alerts(self, tenant_batches):
        _t, _d, coordinator = _serve(tenant_batches, 2, "process", True)
        try:
            coordinator.enable_alerts()
            summary = coordinator.alerts_summary()
            assert summary["enabled"] is True
            record = coordinator.last_slo()
            assert record is not None
            slo = record["gateway"]
            assert slo["partitions"] == 2
            assert slo["missing_partitions"] == 0
            assert slo["sheds"] == 0
            assert slo["barrier_wait_max"] >= 0.0
            assert slo["worker_ess_collapses"] == 0
            # Worker piggybacks attribute the tick's ESS exactly.
            assert slo["worker_ess_mean"] > 0.0
        finally:
            coordinator.close()
            obs.disable()

    def test_alerts_summary_without_engine(self, tenant_batches):
        _t, _d, coordinator = _serve(tenant_batches, 1, "inline", False)
        try:
            summary = coordinator.alerts_summary()
            assert summary["enabled"] is False
            assert summary["active_count"] == 0
        finally:
            coordinator.close()

    def test_gateway_rules_fire_on_synthetic_records(self):
        engine = AlertEngine(gateway_rules())
        quiet = {
            "gateway": {
                "straggler_ratio": 1.0,
                "sheds": 0,
                "barrier_wait_max": 0.01,
                "missing_partitions": 0,
                "worker_ess_collapses": 0,
            }
        }
        for tick in range(5):
            engine.observe_epoch(dict(quiet, tick=tick))
        assert engine.active() == []
        bad = {
            "gateway": {
                "straggler_ratio": 9.0,
                "sheds": 3,
                "barrier_wait_max": 0.01,
                "missing_partitions": 1,
                "worker_ess_collapses": 2,
            }
        }
        for tick in range(5, 9):
            engine.observe_epoch(dict(bad, tick=tick))
        firing = {alert["rule"] for alert in engine.active()}
        assert "partition_straggler" in firing
        assert "shed_surge" in firing
        assert "partition_dead" in firing
        assert "worker_ess_collapse" in firing


class TestHttpSurface:
    def test_metrics_snapshot_alerts_endpoints(self, tenant_batches):
        import urllib.request

        _t, _d, coordinator = _serve(tenant_batches, 2, "process", True)
        coordinator.enable_alerts()
        try:
            with GatewayServer(coordinator) as server:
                with urllib.request.urlopen(
                    server.url + "/metrics", timeout=10
                ) as response:
                    body = response.read().decode("utf-8")
                assert 'partition="0"' in body
                assert 'partition="1"' in body
                assert "repro_collector_aggregated_readings" in body
                # The scrape itself is instrumented per endpoint.
                with urllib.request.urlopen(
                    server.url + "/metrics", timeout=10
                ) as response:
                    body = response.read().decode("utf-8")
                assert "repro_gateway_http_requests" in body
                assert 'endpoint="/metrics"' in body
                assert "repro_gateway_http_latency" in body

                with urllib.request.urlopen(
                    server.url + "/snapshot", timeout=10
                ) as response:
                    document = json.load(response)
                assert document["trace"]["processes"]["1"] == "partition-0"

                with urllib.request.urlopen(
                    server.url + "/alerts", timeout=10
                ) as response:
                    summary = json.load(response)
                assert summary["enabled"] is True
                assert summary["format"] == "repro-alert-events"
        finally:
            coordinator.close()
            obs.disable()

    def test_snapshot_404_when_disabled(self, tenant_batches):
        import urllib.error
        import urllib.request

        _t, _d, coordinator = _serve(tenant_batches, 1, "inline", False)
        try:
            with GatewayServer(coordinator) as server:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(server.url + "/snapshot", timeout=10)
                assert excinfo.value.code == 404
        finally:
            coordinator.close()


class TestDashboard:
    def test_top_renders_gateway_panel(self, tenant_batches):
        _t, _d, coordinator = _serve(tenant_batches, 2, "process", True)
        try:
            health = coordinator.health()
        finally:
            coordinator.close()
            obs.disable()
        state = TopState()
        state.health = health
        frame = render_top(state)
        assert "gateway  partitions=2" in frame
        assert "p0  alive" in frame
        assert "p1  alive" in frame
        assert "tenants  tenant-0:6t  tenant-1:6t" in frame
