"""MetricsServer lifecycle: shutdown, port reuse, concurrent scrapes."""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.expo import MetricsServer


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read()


class TestLifecycle:
    def test_stop_releases_the_port(self):
        server = MetricsServer(snapshot_provider=obs.snapshot, port=0)
        port = server.start()
        server.stop()
        # A fresh socket can bind the exact port the server released.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            probe.bind(("127.0.0.1", port))
        finally:
            probe.close()

    def test_stopped_server_refuses_connections(self):
        server = MetricsServer(snapshot_provider=obs.snapshot, port=0)
        server.start()
        url = server.url("/metrics")
        _get(url)  # alive
        server.stop()
        with pytest.raises((urllib.error.URLError, OSError)):
            urllib.request.urlopen(url, timeout=1)

    def test_restart_on_same_ephemeral_port(self):
        first = MetricsServer(snapshot_provider=obs.snapshot, port=0)
        port = first.start()
        first.stop()
        second = MetricsServer(snapshot_provider=obs.snapshot, port=port)
        try:
            assert second.start() == port
            status, _ = _get(second.url("/metrics"))
            assert status == 200
        finally:
            second.stop()

    def test_two_servers_coexist_on_distinct_ports(self):
        a = MetricsServer(snapshot_provider=obs.snapshot, port=0)
        b = MetricsServer(snapshot_provider=obs.snapshot, port=0)
        try:
            assert a.start() != b.start()
            assert _get(a.url("/metrics"))[0] == 200
            assert _get(b.url("/metrics"))[0] == 200
        finally:
            a.stop()
            b.stop()

    def test_concurrent_scrapes_during_metric_ticks(self):
        """Scrapes racing live registry writes must all succeed."""
        obs.enable()
        stop = threading.Event()

        def ticker():
            second = 0
            while not stop.is_set():
                second += 1
                obs.add("service.epochs")
                obs.observe("filter.ess", float(second % 64))
                obs.gauge_set("service.queue_depth", second % 8)

        errors = []
        bodies = []

        def scraper(url):
            try:
                for _ in range(25):
                    status, body = _get(url)
                    assert status == 200
                    bodies.append(body)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        with MetricsServer(snapshot_provider=obs.snapshot) as server:
            writer = threading.Thread(target=ticker)
            writer.start()
            scrapers = [
                threading.Thread(
                    target=scraper, args=(server.url("/metrics"),)
                )
                for _ in range(3)
            ]
            for t in scrapers:
                t.start()
            for t in scrapers:
                t.join()
            stop.set()
            writer.join()
        assert not errors
        assert len(bodies) == 75
        assert any(b"repro_service_epochs_total" in body for body in bodies)

    def test_health_transitions_503_then_200(self):
        health = {"status": "starting", "ticks": 0}
        server = MetricsServer(
            snapshot_provider=obs.snapshot,
            health_provider=lambda: dict(health),
        )
        with server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url("/healthz"))
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["status"] == "starting"
            health["status"] = "ok"
            health["ticks"] = 3
            status, body = _get(server.url("/healthz"))
            assert status == 200
            assert json.loads(body)["ticks"] == 3

    def test_context_manager_stops_on_exception(self):
        server = MetricsServer(snapshot_provider=obs.snapshot, port=0)
        with pytest.raises(RuntimeError):
            with server:
                port = server.port
                raise RuntimeError("boom")
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            probe.bind(("127.0.0.1", port))
        finally:
            probe.close()
