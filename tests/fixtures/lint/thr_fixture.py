"""THR rule fixture: shared-state patterns, violating and compliant.

Parsed (never executed) by ``tests/test_analysis_lint.py`` under a
virtual ``src/repro/service/`` path. ``violating_*`` functions each draw
at least one THR finding; ``compliant_*`` functions draw none.
"""

import threading
from typing import Dict, Set

_REGISTRY: Dict[str, int] = {}
_SEEN: Set[str] = set()
_REGISTRY_LOCK = threading.Lock()


def violating_unguarded_store(key: str, value: int) -> None:
    _REGISTRY[key] = value


def violating_unguarded_method(key: str) -> None:
    _SEEN.add(key)


def violating_bare_acquire() -> None:
    # Draws two findings: the bare .acquire() itself, and the mutation it
    # "guards" — the linter (correctly) cannot see a lock held this way.
    _REGISTRY_LOCK.acquire()
    try:
        _REGISTRY.clear()
    finally:
        _REGISTRY_LOCK.release()


def compliant_guarded_store(key: str, value: int) -> None:
    with _REGISTRY_LOCK:
        _REGISTRY[key] = value


def compliant_read_only(key: str) -> int:
    return _REGISTRY.get(key, 0)
