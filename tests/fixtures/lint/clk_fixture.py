"""CLK rule fixture: wall-clock patterns, violating and compliant.

Parsed (never executed) by ``tests/test_analysis_lint.py`` under a
virtual ``src/repro/service/`` path. ``violating_*`` functions each draw
at least one CLK finding; ``compliant_*`` / the injected-clock class
draw none.
"""

import time
from datetime import datetime
from typing import Callable


def violating_wall_clock_read() -> float:
    return time.time()


def violating_real_sleep(seconds: float) -> None:
    time.sleep(seconds)


def violating_datetime_factory() -> str:
    return datetime.now().isoformat()


def violating_default_argument(clock: Callable[[], float] = time.monotonic) -> float:
    return clock()


class CompliantInjectedClock:
    """The sanctioned shape: time arrives as a constructor argument."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def compliant_now(self) -> float:
        return self._clock()
