"""DET rule fixture: RNG patterns, violating and compliant.

This module is *parsed* by ``tests/test_analysis_lint.py`` under a
virtual ``src/repro/service/`` path — it is never imported or executed.
Functions named ``violating_*`` must each draw at least one DET finding;
functions named ``compliant_*`` must draw none.
"""

import random

import numpy as np

from repro.rng import child_rng


def violating_global_stream() -> float:
    return random.random()


def violating_unseeded_engine() -> float:
    engine = random.Random()
    return engine.random()


def violating_numpy_global_state(n: int) -> float:
    np.random.seed(n)
    return float(np.random.random())


def violating_unseeded_default_rng() -> float:
    return float(np.random.default_rng().random())


def compliant_child_stream(seed: int, second: int, object_id: str) -> float:
    rng = child_rng(seed, f"pf:{second}:{object_id}")
    return float(rng.random())


def compliant_seeded_default_rng(seed: int) -> float:
    return float(np.random.default_rng(seed).random())
