"""SCHEMA project fixture: the three producer shapes plus a version tag.

``to_state`` returns a dict literal; ``state_dict`` builds a local dict
and fills it with constant-subscript stores; ``save_checkpoint`` hands
its envelope to ``json.dump``. All three key sets, and ``STATE_VERSION``,
belong in the lockfile the tests generate and then perturb.
"""

import json

STATE_VERSION = 2


class Tracker:
    def __init__(self) -> None:
        self.ticks = 0
        self.seed = 0

    def to_state(self) -> dict:
        return {"ticks": self.ticks, "seed": self.seed}

    def state_dict(self) -> dict:
        doc = {"version": STATE_VERSION}
        doc["payload"] = self.to_state()
        return doc


def save_checkpoint(state: dict, path: str) -> None:
    document = {"format": "fixture-checkpoint", "state": state}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
