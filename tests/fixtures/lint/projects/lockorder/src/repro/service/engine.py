"""LOCKORDER project fixture, half two: the opposite acquisition order.

``publish`` holds the engine lock while calling ``evict``, whose closure
takes the store lock — ENGINE -> STORE, closing the cycle started in
``cache/store.py``. (The circular module-level import is fine: fixtures
are parsed, never executed.)
"""

import threading

from repro.cache.store import evict

_ENGINE_LOCK = threading.Lock()


def flush_engine() -> int:
    with _ENGINE_LOCK:
        return 1


def publish() -> int:
    with _ENGINE_LOCK:
        return evict()
