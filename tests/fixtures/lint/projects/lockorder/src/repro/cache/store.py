"""LOCKORDER project fixture, half one of the inversion.

``put`` takes the store lock and then calls into the service engine,
whose acquires-closure takes the engine lock — the STORE -> ENGINE edge.
``engine.py`` builds the opposite edge; together they form the cycle the
rule must report. ``Store.drain`` adds a harmless method-lock edge so
tests can check ``self._lock`` identity qualification.
"""

import threading

from repro.service.engine import flush_engine

_STORE_LOCK = threading.Lock()


def evict() -> int:
    with _STORE_LOCK:
        return 1


def put() -> int:
    with _STORE_LOCK:
        return flush_engine()


class Store:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.items: dict = {}

    def drain(self) -> None:
        with self._lock:
            with _STORE_LOCK:
                self.items.clear()
