"""LOCKORDER project fixture: consistent nesting (must draw no finding).

Both functions take ALPHA before BETA, so the graph gains one direction
only — a consistent global order, not an inversion.
"""

import threading

_ALPHA_LOCK = threading.Lock()
_BETA_LOCK = threading.Lock()


def compliant_first() -> int:
    with _ALPHA_LOCK:
        with _BETA_LOCK:
            return 1


def compliant_second() -> int:
    with _ALPHA_LOCK:
        with _BETA_LOCK:
            return 2
