"""SEED project fixture: an in-scope callee with a generator-shaped param.

``run_filter`` neither creates nor launders generators (its provenance
is NONE); it exists so callers handing it a raw generator (see
``cli/main.py``) can be flagged at the call site.
"""


def run_filter(history: list, rng: object) -> object:
    return rng
