"""SEED project fixture: RAW creation in core via a cross-module helper.

The ``fresh_rng()`` call below must draw a SEED finding — the generator
is minted two modules away with no ``repro.rng`` provenance, and the
interprocedural fixpoint is what carries that fact into ``core``.
"""

from repro.sim.helpers import fresh_rng


def violating_step() -> object:
    rng = fresh_rng()
    return rng
