"""SEED project fixture: a RAW-provenance helper outside the scope packages.

Creating a raw generator in ``sim`` is legal by itself — the violation
only appears when ``repro.core`` calls this helper (see ``core/engine.py``),
which the per-file DET rule structurally cannot see.
"""

import numpy as np


def fresh_rng() -> object:
    return np.random.default_rng()
