"""SEED project fixture: a raw generator handed into scope code.

The creation happens in ``cli`` (ungoverned), but the value flows into
the ``rng`` parameter of a ``repro.core`` function — SEED must flag the
argument at this call site.
"""

import numpy as np

from repro.core.runner import run_filter


def violating_handoff() -> object:
    return run_filter([], rng=np.random.default_rng(7))
