"""SEED project fixture: the sanctioned shape (must draw no finding)."""

from repro.rng import child_rng


def compliant_tick(seed: int) -> object:
    rng = child_rng(seed, "tick")
    return rng
