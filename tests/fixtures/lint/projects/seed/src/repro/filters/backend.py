"""SEED project fixture: direct raw construction inside ``filters``."""

import numpy as np


def violating_make_rng() -> object:
    return np.random.default_rng(0)
