"""ARCH project fixture: a layer-2 module importing layer 11 at import time.

Parsed (never executed) by ``tests/test_analysis_project.py``; the
module-level ``repro.sim`` import below must draw exactly one ARCH
layer-violation finding.
"""

from repro.sim.simulator import Simulation


def violating_build() -> object:
    return Simulation
