"""ARCH project fixture: bypassing the ``repro.obs`` no-op facade.

``from repro.obs.registry import ...`` wires a submodule directly into
a hot-path module, skipping the enable/disable seam; ARCH must flag it
even though ``obs`` (layer 3) sits below ``core`` (layer 5).
"""

from repro.obs.registry import counter


def violating_bump() -> None:
    counter("arch.fixture")
