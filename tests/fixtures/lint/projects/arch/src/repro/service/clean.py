"""ARCH project fixture: the compliant shapes (must draw no finding).

Downward imports, the ``import repro.obs as obs`` facade form, and an
upward reference tucked inside ``if TYPE_CHECKING:`` are all sanctioned.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import repro.obs as obs
from repro.core.engine import violating_bump

if TYPE_CHECKING:
    from repro.cli.main import CliHandle


def compliant_serve(handle: CliHandle) -> None:
    obs.add("arch.fixture.served")
    violating_bump()
