"""FP rule fixture: float-comparison patterns, violating and compliant.

Parsed (never executed) by ``tests/test_analysis_lint.py`` under a
virtual ``src/repro/geometry/`` path. ``violating_*`` functions each
draw at least one FP finding; ``compliant_*`` and ``pragmad_*`` draw
none (the latter via a line pragma, which the tests count).
"""


class _Vec:
    def __init__(self, x: float, y: float) -> None:
        self.x = x
        self.y = y


def violating_coordinate_equality(p: _Vec, q: _Vec) -> bool:
    return p.x == q.x and p.y == q.y


def violating_zero_guard(length: float) -> bool:
    return length == 0.0


def pragmad_zero_guard(length: float) -> bool:
    return length == 0.0  # repro-lint: disable=FP -- degenerate sentinel


def compliant_tolerance(p: _Vec, q: _Vec, eps: float = 1e-9) -> bool:
    return abs(p.x - q.x) <= eps and abs(p.y - q.y) <= eps
