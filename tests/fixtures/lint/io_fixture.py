"""IO rule fixture: durable-write patterns, violating and compliant.

Parsed (never executed) by ``tests/test_analysis_lint.py`` under a
virtual ``src/repro/service/`` path. ``violating_*`` functions each draw
at least one IO finding; ``compliant_*`` functions draw none.
"""

import json
import os
from typing import Dict


def violating_bare_write(path: str, payload: Dict[str, int]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def compliant_atomic_write(path: str, payload: Dict[str, int]) -> None:
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    os.replace(tmp_path, path)


def compliant_read(path: str) -> Dict[str, int]:
    with open(path, encoding="utf-8") as handle:
        data: Dict[str, int] = json.load(handle)
    return data
