"""Unit tests of the graph-constrained Kalman filter backend.

The mixture semantics mirror the particle motion/sensing model in
closed form; these tests pin the behaviors that make it a sound
estimator: junction splits conserve probability, dwelling atoms follow
the stay/leave dynamics, the mixture stays bounded, depletion reseeds,
and the whole filter is deterministic.
"""

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.filters.kalman import (
    GraphKalmanFilter,
    KalmanBackend,
    KalmanState,
    _interval_mass,
)
from repro.sim import Simulation

FAST = DEFAULT_CONFIG.with_overrides(num_objects=4, seed=23)


@pytest.fixture(scope="module")
def sim_world():
    sim = Simulation(FAST, build_symbolic=False)
    sim.run_for(25)
    return sim


@pytest.fixture(scope="module")
def backend(sim_world):
    return KalmanBackend(
        sim_world.graph, sim_world.anchor_index, sim_world.readers, FAST
    )


def _weights(state):
    return [r[6] for r in state.rows()]


def _junction_and_arrival(backend):
    """A hallway node with >= 3 edges, plus one arriving edge at node_a."""
    compiled = backend.compiled_graph
    for node in range(compiled.num_nodes):
        if compiled.node_is_room[node]:
            continue
        edges = compiled.adjacency[node]
        if len(edges) >= 3:
            for edge in edges:
                if int(compiled.edge_node_b[edge]) == node:
                    return node, int(edge)
    pytest.skip("floor plan has no hallway junction")


def _room_door_edge(backend):
    """An edge whose node_b is a room node (a door spur)."""
    compiled = backend.compiled_graph
    for edge in range(compiled.num_edges):
        if compiled.node_is_room[int(compiled.edge_node_b[edge])]:
            return edge
    pytest.skip("floor plan has no room nodes")


class TestIntervalMass:
    def test_whole_line_is_one(self):
        assert _interval_mass(0.0, 1.0, -100.0, 100.0) == pytest.approx(1.0)

    def test_symmetric_half(self):
        assert _interval_mass(0.0, 1.0, 0.0, 100.0) == pytest.approx(0.5)

    def test_far_interval_is_zero(self):
        assert _interval_mass(0.0, 0.01, 50.0, 60.0) == pytest.approx(0.0)


class TestCoverage:
    def test_every_reader_covers_something(self, backend):
        for reader_id in backend.readers:
            rows = backend.initial_rows(reader_id)
            assert rows
            assert sum(r[6] for r in rows) == pytest.approx(1.0)

    def test_initial_rows_have_both_directions(self, backend):
        rows = backend.initial_rows(sorted(backend.readers)[0])
        velocities = {r[2] > 0 for r in rows}
        assert velocities == {True, False}

    def test_initial_rows_capped_and_sorted(self, backend):
        for reader_id in backend.readers:
            rows = backend.initial_rows(reader_id)
            assert len(rows) <= FAST.kalman_max_hypotheses * 2
            assert _weights_sorted(rows)

    def test_coverage_mass_inside_vs_outside(self, backend):
        reader_id = sorted(backend.readers)[0]
        per_edge = backend._coverage[reader_id]
        edge = sorted(per_edge)[0]
        lo, hi = per_edge[edge][0]
        center = (lo + hi) / 2.0
        inside = (edge, center, 1.0, 1e-4, 0.0, 0.01, 1.0, False)
        assert backend.coverage_mass(inside, reader_id) > 0.5
        uncovered = [
            e for e in range(backend.compiled_graph.num_edges) if e not in per_edge
        ]
        if uncovered:
            outside = (uncovered[0], 0.5, 1.0, 0.01, 0.0, 0.01, 1.0, False)
            assert backend.coverage_mass(outside, reader_id) == 0.0


def _weights_sorted(rows):
    weights = [r[6] for r in rows]
    return weights == sorted(weights, reverse=True)


class TestTransitions:
    def test_weights_sum_to_one_at_every_junction(self, backend):
        compiled = backend.compiled_graph
        for node in range(compiled.num_nodes):
            edges = compiled.adjacency[node]
            if len(edges) == 0:
                continue
            arrival = int(edges[0])
            fanout = backend.transition_weights(node, arrival)
            assert sum(f for _, f in fanout) == pytest.approx(1.0)
            if len(edges) > 1:
                assert all(e != arrival for e, _ in fanout), "U-turn allowed"

    def test_dead_end_turns_back(self, backend):
        compiled = backend.compiled_graph
        for node in range(compiled.num_nodes):
            edges = compiled.adjacency[node]
            if len(edges) == 1 and not compiled.node_is_room[node]:
                fanout = backend.transition_weights(node, int(edges[0]))
                assert fanout == [(int(edges[0]), 1.0)]
                return
        pytest.skip("floor plan has no non-room dead end")


class TestPredict:
    def test_weight_is_conserved(self, backend):
        node, edge = _junction_and_arrival(backend)
        length = float(backend.compiled_graph.edge_length[edge])
        state = KalmanState.from_rows(
            [(edge, length - 0.2, 1.0, 0.05, 0.0, 0.01, 1.0, False)]
        )
        filt = GraphKalmanFilter(backend, state)
        filt.predict(1.0)
        assert sum(_weights(filt.state())) == pytest.approx(1.0)

    def test_junction_split_spreads_over_outgoing_edges(self, backend):
        node, edge = _junction_and_arrival(backend)
        length = float(backend.compiled_graph.edge_length[edge])
        # Mean crosses node_b by 0.8m: the mass must fan out and no
        # hypothesis may remain on (or return to) the arrival edge.
        state = KalmanState.from_rows(
            [(edge, length - 0.2, 1.0, 0.05, 0.0, 0.01, 1.0, False)]
        )
        filt = GraphKalmanFilter(backend, state)
        filt.predict(1.0)
        edges_after = {r[0] for r in filt.state().rows()}
        expected = {e for e, _ in backend.transition_weights(node, edge)}
        assert edges_after <= expected
        assert len(edges_after) >= 2

    def test_room_crossing_becomes_dwelling(self, backend):
        edge = _room_door_edge(backend)
        length = float(backend.compiled_graph.edge_length[edge])
        state = KalmanState.from_rows(
            [(edge, length - 0.1, 1.0, 0.05, 0.0, 0.01, 1.0, False)]
        )
        filt = GraphKalmanFilter(backend, state)
        filt.predict(1.0)
        rows = filt.state().rows()
        dwelling = [r for r in rows if r[7]]
        assert dwelling
        assert dwelling[0][0] == edge
        assert dwelling[0][1] == length  # pinned at the room end

    def test_dwelling_splits_stay_and_leave(self, backend):
        edge = _room_door_edge(backend)
        length = float(backend.compiled_graph.edge_length[edge])
        state = KalmanState.from_rows(
            [(edge, length, 0.0, 0.01, 0.0, 1e-4, 1.0, True)]
        )
        filt = GraphKalmanFilter(backend, state)
        filt.predict(1.0)
        rows = filt.state().rows()
        stay = [r for r in rows if r[7]]
        leave = [r for r in rows if not r[7]]
        assert stay and leave
        assert stay[0][6] == pytest.approx(1.0 - FAST.room_exit_probability)
        assert sum(r[6] for r in leave) == pytest.approx(
            FAST.room_exit_probability
        )
        # The leaver walks back out of the room, towards node_a.
        assert leave[0][2] < 0.0

    def test_covariance_grows_without_observations(self, backend):
        edge = _junction_and_arrival(backend)[1]
        state = KalmanState.from_rows(
            [(edge, 0.1, 0.0, 0.01, 0.0, 0.01, 1.0, False)]
        )
        filt = GraphKalmanFilter(backend, state)
        before = filt.state().var_offset[0]
        filt.predict(1.0)
        assert filt.state().var_offset[0] > before


class TestMixtureBounds:
    def test_cap_is_enforced(self, backend, sim_world):
        collector = sim_world.pf_engine.collector
        for object_id in sorted(collector.observed_objects()):
            run = backend.run(collector.history(object_id), 25)
            assert len(run.state()) <= FAST.kalman_max_hypotheses

    def test_close_hypotheses_merge(self, backend):
        edge = _junction_and_arrival(backend)[1]
        gap = FAST.kalman_merge_distance / 2.0
        state = KalmanState.from_rows(
            [
                (edge, 1.0, 1.0, 0.01, 0.0, 0.01, 0.5, False),
                (edge, 1.0 + gap, 1.0, 0.01, 0.0, 0.01, 0.5, False),
            ]
        )
        filt = GraphKalmanFilter(backend, state)
        merged = filt._consolidate(state.rows())
        assert len(merged) == 1
        assert merged[0][1] == pytest.approx(1.0 + gap / 2.0)
        assert merged[0][6] == pytest.approx(1.0)

    def test_opposite_headings_do_not_merge(self, backend):
        edge = _junction_and_arrival(backend)[1]
        state = KalmanState.from_rows(
            [
                (edge, 1.0, 1.0, 0.01, 0.0, 0.01, 0.5, False),
                (edge, 1.0, -1.0, 0.01, 0.0, 0.01, 0.5, False),
            ]
        )
        filt = GraphKalmanFilter(backend, state)
        assert len(filt._consolidate(state.rows())) == 2

    def test_negligible_weight_is_pruned(self, backend):
        edge = _junction_and_arrival(backend)[1]
        rows = [
            (edge, 1.0, 1.0, 0.01, 0.0, 0.01, 1.0, False),
            (edge, 8.0, -1.0, 0.01, 0.0, 0.01, 1e-15, False),
        ]
        filt = GraphKalmanFilter(backend, KalmanState.from_rows(rows))
        assert len(filt._consolidate(rows)) == 1


class TestObserve:
    def test_detection_pulls_mass_into_coverage(self, backend):
        reader_id = sorted(backend.readers)[0]
        per_edge = backend._coverage[reader_id]
        edge = sorted(per_edge)[0]
        lo, hi = per_edge[edge][0]
        center = (lo + hi) / 2.0
        off = center + 1.5
        state = KalmanState.from_rows(
            [(edge, off, 0.5, 1.0, 0.0, 0.01, 1.0, False)]
        )
        filt = GraphKalmanFilter(backend, state)
        filt.update(second=1, readings=(reader_id,), negative_info=False)
        new_off = filt.state().offset[0]
        assert abs(new_off - center) < abs(off - center)
        assert filt.state().var_offset[0] < 1.0

    def test_depletion_reseeds_from_reader(self, sim_world):
        # weight_miss == 0 makes an impossible detection truly
        # zero-likelihood, which must trigger the reseed path.
        config = FAST.with_overrides(weight_miss=0.0)
        backend = KalmanBackend(
            sim_world.graph, sim_world.anchor_index, sim_world.readers, config
        )
        reader_id = sorted(backend.readers)[0]
        per_edge = backend._coverage[reader_id]
        uncovered = next(
            e
            for e in range(backend.compiled_graph.num_edges)
            if e not in per_edge
        )
        state = KalmanState.from_rows(
            [(uncovered, 0.1, 1.0, 0.0001, 0.0, 0.01, 1.0, False)]
        )
        filt = GraphKalmanFilter(backend, state)
        filt.update(second=1, readings=(reader_id,), negative_info=False)
        assert filt.state().rows() == backend.initial_rows(reader_id)

    def test_silence_pushes_mass_out_of_coverage(self, backend):
        reader_id = sorted(backend.readers)[0]
        per_edge = backend._coverage[reader_id]
        edge = sorted(per_edge)[0]
        lo, hi = per_edge[edge][0]
        center = (lo + hi) / 2.0
        inside = (edge, center, 1.0, 0.05, 0.0, 0.01, 0.5, False)
        uncovered = next(
            e
            for e in range(backend.compiled_graph.num_edges)
            if e not in backend._silence_coverage
        )
        outside = (uncovered, 0.5, 1.0, 0.05, 0.0, 0.01, 0.5, False)
        filt = GraphKalmanFilter(backend, KalmanState.from_rows([inside, outside]))
        filt.update(second=1, readings=(), negative_info=True)
        by_edge = {r[0]: r[6] for r in filt.state().rows()}
        assert by_edge[uncovered] > 0.5
        assert by_edge.get(edge, 0.0) < 0.5


class TestPosterior:
    def test_dwelling_mass_lands_on_room_anchor(self, backend):
        edge = _room_door_edge(backend)
        length = float(backend.compiled_graph.edge_length[edge])
        state = KalmanState.from_rows(
            [(edge, length, 0.0, 0.01, 0.0, 1e-4, 1.0, True)]
        )
        filt = GraphKalmanFilter(backend, state)
        posterior = filt.posterior()
        assert posterior == {backend.room_anchor(edge, length): 1.0}

    def test_posterior_concentrates_near_the_mean(self, backend):
        edge = _junction_and_arrival(backend)[1]
        state = KalmanState.from_rows(
            [(edge, 1.0, 1.0, 0.05, 0.0, 0.01, 1.0, False)]
        )
        filt = GraphKalmanFilter(backend, state)
        posterior = filt.posterior()
        assert sum(posterior.values()) == pytest.approx(1.0)
        best = max(posterior, key=posterior.get)
        anchors = dict(
            (ap, off) for off, ap in backend.anchor_index.on_edge(edge)
        )
        assert abs(anchors[best] - 1.0) <= FAST.anchor_spacing


class TestDeterminism:
    def test_runs_are_bit_identical(self, backend, sim_world):
        collector = sim_world.pf_engine.collector
        for object_id in sorted(collector.observed_objects()):
            history = collector.history(object_id)
            a = backend.run(history, 25, rng=np.random.default_rng(1))
            b = backend.run(history, 25, rng=np.random.default_rng(999))
            assert a.state().to_state() == b.state().to_state()
            assert a.posterior() == b.posterior()
