"""Unit and property tests for rectangles and circles."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Circle, Point, Rect, Segment

coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
sizes = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


def rects():
    return st.builds(
        lambda x, y, w, h: Rect(x, y, x + w, y + h), coords, coords, sizes, sizes
    )


class TestRect:
    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_from_corners_normalizes(self):
        r = Rect.from_corners(Point(5, 1), Point(2, 7))
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (2, 1, 5, 7)

    def test_from_center(self):
        r = Rect.from_center(Point(5, 5), 4, 2)
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (3, 4, 7, 6)

    def test_from_center_rejects_negative(self):
        with pytest.raises(ValueError):
            Rect.from_center(Point(0, 0), -1, 1)

    def test_dimensions(self):
        r = Rect(0, 0, 4, 3)
        assert r.width == 4
        assert r.height == 3
        assert r.area == 12
        assert r.center == Point(2, 1.5)

    def test_contains_boundary(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains(Point(0, 0))
        assert r.contains(Point(2, 2))
        assert not r.contains(Point(2.01, 1))

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 9, 9))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 11, 9))

    def test_intersection(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 2, 6, 6)
        inter = a.intersection(b)
        assert inter == Rect(2, 2, 4, 4)
        assert a.overlap_area(b) == 4.0

    def test_disjoint_intersection_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None
        assert Rect(0, 0, 1, 1).overlap_area(Rect(2, 2, 3, 3)) == 0.0

    def test_touching_rects_intersect(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_expanded(self):
        assert Rect(1, 1, 2, 2).expanded(1) == Rect(0, 0, 3, 3)

    def test_distance_to_point(self):
        r = Rect(0, 0, 2, 2)
        assert r.distance_to_point(Point(1, 1)) == 0.0
        assert r.distance_to_point(Point(5, 2)) == 3.0
        assert r.distance_to_point(Point(5, 6)) == 5.0

    def test_clamp_point(self):
        r = Rect(0, 0, 2, 2)
        assert r.clamp_point(Point(5, -1)) == Point(2, 0)
        assert r.clamp_point(Point(1, 1)) == Point(1, 1)

    @given(rects(), rects())
    def test_intersects_symmetry(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rects(), rects())
    def test_overlap_bounded_by_min_area(self, a, b):
        overlap = a.overlap_area(b)
        assert overlap <= min(a.area, b.area) + 1e-6
        assert overlap >= 0.0

    @given(rects(), st.builds(Point, coords, coords))
    def test_clamped_point_is_inside(self, r, p):
        assert r.contains(r.clamp_point(p))


class TestCircle:
    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            Circle(Point(0, 0), -1)

    def test_area(self):
        assert Circle(Point(0, 0), 2).area == pytest.approx(4 * math.pi)

    def test_contains(self):
        c = Circle(Point(0, 0), 5)
        assert c.contains(Point(3, 4))
        assert not c.contains(Point(3.01, 4.01))

    def test_intersects_rect(self):
        c = Circle(Point(0, 0), 1)
        assert c.intersects_rect(Rect(0.5, -1, 2, 1))
        assert not c.intersects_rect(Rect(2, 2, 3, 3))

    def test_intersects_circle(self):
        a = Circle(Point(0, 0), 1)
        assert a.intersects_circle(Circle(Point(1.5, 0), 1))
        assert not a.intersects_circle(Circle(Point(3, 0), 1))

    def test_tangent_circles_intersect(self):
        assert Circle(Point(0, 0), 1).intersects_circle(Circle(Point(2, 0), 1))

    def test_intersects_segment(self):
        c = Circle(Point(0, 0), 1)
        assert c.intersects_segment(Segment(Point(-5, 0.5), Point(5, 0.5)))
        assert not c.intersects_segment(Segment(Point(-5, 2), Point(5, 2)))

    def test_segment_overlap_full_chord(self):
        c = Circle(Point(0, 0), 1)
        seg = Segment(Point(-5, 0), Point(5, 0))
        lo, hi = c.segment_overlap(seg)
        assert lo == pytest.approx(4.0)
        assert hi == pytest.approx(6.0)

    def test_segment_overlap_miss(self):
        c = Circle(Point(0, 0), 1)
        assert c.segment_overlap(Segment(Point(-5, 3), Point(5, 3))) is None

    def test_segment_overlap_partial(self):
        c = Circle(Point(0, 0), 1)
        seg = Segment(Point(0, 0), Point(5, 0))
        lo, hi = c.segment_overlap(seg)
        assert lo == pytest.approx(0.0)
        assert hi == pytest.approx(1.0)

    def test_bounding_rect(self):
        r = Circle(Point(1, 2), 3).bounding_rect()
        assert r == Rect(-2, -1, 4, 5)

    @given(
        st.builds(Point, coords, coords),
        st.floats(min_value=0.1, max_value=50),
        st.builds(Point, coords, coords),
        st.builds(Point, coords, coords),
    )
    def test_segment_overlap_points_inside(self, center, radius, a, b):
        circle = Circle(center, radius)
        seg = Segment(a, b)
        overlap = circle.segment_overlap(seg)
        if overlap is None:
            return
        lo, hi = overlap
        mid = seg.point_at((lo + hi) / 2.0)
        # The chord midpoint must be inside (allow generous float slack for
        # near-tangent configurations).
        assert center.distance_to(mid) <= radius + 1e-3
