"""Tests for the observability layer (repro.obs)."""

import json

import pytest

from repro import obs
from repro.obs.registry import Histogram, MetricsRegistry, Stopwatch
from repro.obs.report import (
    build_snapshot,
    load_trace,
    metric_rows,
    render_summary,
    write_csv,
    write_json,
)
from repro.obs.tracer import Tracer


class FakeClock:
    """Monotonic fake: every read advances by a fixed tick."""

    def __init__(self, tick=1.0, start=0.0):
        self.tick = tick
        self.now = start

    def __call__(self):
        self.now += self.tick
        return self.now


@pytest.fixture(autouse=True)
def clean_obs():
    """Leave the process-local obs state exactly as the suite expects."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
    obs.set_clock(__import__("time").perf_counter)


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.counter("c").value == 5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3)
        registry.gauge("g").set(7.5)
        assert registry.gauge("g").value == 7.5

    def test_histogram_summary(self):
        h = Histogram("h")
        for v in [1.0, 2.0, 3.0, 4.0, 5.0]:
            h.observe(v)
        assert h.count == 5
        assert h.total == 15.0
        assert h.mean == 3.0
        assert h.min == 1.0
        assert h.max == 5.0
        assert h.quantile(0.0) == 1.0
        assert h.quantile(0.5) == 3.0
        assert h.quantile(1.0) == 5.0

    def test_histogram_quantile_bounds(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_histogram_sample_cap_keeps_exact_totals(self):
        h = Histogram("h", max_samples=3)
        for v in range(10):
            h.observe(float(v))
        assert h.count == 10
        assert h.total == 45.0
        assert h.max == 9.0
        assert h.dropped == 7
        # Quantiles degrade to the retained prefix but never crash.
        assert h.quantile(1.0) == 2.0

    def test_timer_uses_injected_clock(self):
        registry = MetricsRegistry(clock=FakeClock(tick=2.0))
        with registry.timer("t"):
            pass
        assert registry.histogram("t").count == 1
        assert registry.histogram("t").total == 2.0

    def test_timer_nests(self):
        registry = MetricsRegistry(clock=FakeClock(tick=1.0))
        with registry.timer("outer"):
            with registry.timer("inner"):
                pass
        # outer spans 3 ticks (enter=1, inner consumes 2,3, exit=4).
        assert registry.histogram("inner").total == 1.0
        assert registry.histogram("outer").total == 3.0

    def test_stopwatch_accumulates_laps(self):
        sw = Stopwatch(clock=FakeClock(tick=1.0))
        with sw:
            pass
        with sw:
            pass
        assert sw.laps == 2
        assert sw.total == 2.0

    def test_clear_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.clear()
        assert registry.snapshot() == {
            "counters": [], "gauges": [], "histograms": []
        }


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_depth_and_parents(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                assert tracer.depth == 2
            with tracer.span("c"):
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["a"].depth == 0 and spans["a"].parent is None
        assert spans["b"].depth == 1 and spans["b"].parent == spans["a"].index
        assert spans["c"].depth == 1 and spans["c"].parent == spans["a"].index

    def test_durations_from_fake_clock(self):
        tracer = Tracer(clock=FakeClock(tick=1.0))
        with tracer.span("a"):
            pass
        (span,) = tracer.spans()
        assert span.start == 1.0 and span.end == 2.0 and span.duration == 1.0

    def test_aggregates_exact_past_cap(self):
        tracer = Tracer(clock=FakeClock(tick=1.0), max_spans=2)
        for _ in range(5):
            with tracer.span("x"):
                pass
        assert len(tracer.spans()) == 2
        assert tracer.dropped == 3
        assert tracer.aggregates()["x"].count == 5

    def test_out_of_order_close_raises(self):
        tracer = Tracer(clock=FakeClock())
        a = tracer.span("a")
        b = tracer.span("b")
        with pytest.raises(RuntimeError):
            a.__exit__(None, None, None)
        b.__exit__(None, None, None)

    def test_attrs_recorded(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a", object="o1") as active:
            active.set_attr("extra", 2)
        (span,) = tracer.spans()
        assert span.attrs == {"object": "o1", "extra": 2}


# ----------------------------------------------------------------------
# facade on/off switch and no-op fast path
# ----------------------------------------------------------------------
class TestFacade:
    def test_disabled_records_nothing(self):
        obs.add("c", 5)
        obs.gauge_set("g", 1.0)
        obs.observe("h", 2.0)
        with obs.span("s"):
            with obs.timer("t"):
                pass
        snap = obs.registry().snapshot()
        assert snap == {"counters": [], "gauges": [], "histograms": []}
        assert obs.tracer().spans() == []

    def test_disabled_span_is_shared_noop(self):
        assert obs.span("a") is obs.span("b")
        assert obs.timer("a") is obs.span("b")

    def test_enable_records(self):
        obs.enable()
        obs.add("c", 2)
        with obs.span("s"):
            pass
        assert obs.registry().counter("c").value == 2
        assert [s.name for s in obs.tracer().spans()] == ["s"]

    def test_enable_fresh_clears_previous_run(self):
        obs.enable()
        obs.add("c")
        obs.enable(fresh=True)
        assert obs.registry().snapshot()["counters"] == []

    def test_disable_preserves_data(self):
        obs.enable()
        obs.add("c")
        obs.disable()
        assert obs.registry().counter("c").value == 1

    def test_timed_decorator(self):
        obs.enable()

        @obs.timed("work")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert obs.tracer().aggregates()["work"].count == 1

    def test_timed_decorator_noop_when_disabled(self):
        @obs.timed("work")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert obs.tracer().spans() == []

    def test_set_clock_applies_everywhere(self):
        obs.enable()
        obs.set_clock(FakeClock(tick=0.5))
        with obs.span("s"):
            with obs.timer("t"):
                pass
        assert obs.registry().histogram("t").total == 0.5
        (span,) = obs.tracer().spans()
        assert span.duration == 1.5


# ----------------------------------------------------------------------
# export / report
# ----------------------------------------------------------------------
class TestReport:
    def _populated(self):
        registry = MetricsRegistry(clock=FakeClock(tick=1.0))
        tracer = Tracer(clock=FakeClock(tick=1.0))
        registry.counter("prune.objects_pruned").inc(9)
        registry.gauge("objects").set(12)
        with registry.timer("filter.predict"):
            pass
        with tracer.span("engine.evaluate"):
            with tracer.span("engine.filter"):
                pass
        return registry, tracer

    def test_snapshot_roundtrip_through_json(self, tmp_path):
        registry, tracer = self._populated()
        data = build_snapshot(registry, tracer, meta={"seed": 7})
        path = tmp_path / "trace.json"
        write_json(data, str(path))
        loaded = load_trace(str(path))
        assert loaded == json.loads(json.dumps(data))
        assert loaded["meta"] == {"seed": 7}
        names = [s["name"] for s in loaded["trace"]["spans"]]
        assert names == ["engine.filter", "engine.evaluate"]

    def test_snapshot_is_deterministic_with_fake_clock(self, tmp_path):
        a = build_snapshot(*self._populated())
        b = build_snapshot(*self._populated())
        assert json.dumps(a) == json.dumps(b)

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            load_trace(str(path))

    def test_metric_rows_cover_all_kinds(self):
        data = build_snapshot(*self._populated())
        kinds = {row["kind"] for row in metric_rows(data)}
        assert kinds == {"counter", "gauge", "histogram", "span"}

    def test_csv_export(self, tmp_path):
        data = build_snapshot(*self._populated())
        path = tmp_path / "rows.csv"
        write_csv(data, str(path))
        text = path.read_text()
        assert text.startswith("kind,name,value")
        assert "prune.objects_pruned" in text

    def test_summary_renders_all_sections(self):
        text = render_summary(build_snapshot(*self._populated()))
        assert "counters" in text
        assert "gauges" in text
        assert "histograms" in text
        assert "spans" in text
        assert "engine.evaluate" in text

    def test_summary_of_empty_trace(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        text = render_summary(build_snapshot(registry, tracer))
        assert "empty trace" in text


# ----------------------------------------------------------------------
# pipeline integration
# ----------------------------------------------------------------------
class TestPipelineIntegration:
    CFG = None  # built lazily to keep import cost out of collection

    def _config(self):
        from repro.config import DEFAULT_CONFIG

        return DEFAULT_CONFIG.with_overrides(
            num_objects=6, duration_seconds=25, warmup_seconds=10, seed=11
        )

    def test_simulation_config_toggle_enables_obs(self):
        from repro.sim import Simulation

        Simulation(
            self._config().with_overrides(observability=True),
            build_symbolic=False,
        )
        assert obs.enabled()

    def test_trace_covers_filter_pruning_cache_collector(self):
        from repro.geometry import Rect
        from repro.sim import Simulation

        obs.enable()
        sim = Simulation(self._config(), build_symbolic=False)
        sim.run_until(25)
        sim.pf_engine.range_query(Rect(0, 0, 60, 40), 25, rng=sim.pf_rng)
        snap = obs.snapshot()
        counters = {c["name"] for c in snap["metrics"]["counters"]}
        histograms = {h["name"] for h in snap["metrics"]["histograms"]}
        assert "prune.objects_seen" in counters
        assert "collector.raw_readings" in counters
        assert {"filter.predict", "filter.weight"} <= histograms
        span_names = {a["name"] for a in snap["trace"]["aggregates"]}
        assert "engine.evaluate" in span_names
        assert "filter.run" in span_names

    def test_disabled_pipeline_records_nothing(self):
        from repro.sim import Simulation

        sim = Simulation(self._config(), build_symbolic=False)
        sim.run_until(15)
        assert obs.registry().snapshot()["counters"] == []
        assert obs.tracer().spans() == []
