"""Tests for anchor point generation and the anchor index."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Circle, Point, Rect
from repro.graph import build_anchor_index


class TestGeneration:
    def test_spacing_rejected_when_non_positive(self, paper_graph):
        with pytest.raises(ValueError):
            build_anchor_index(paper_graph, spacing=0.0)

    def test_every_node_has_anchor(self, paper_anchors, paper_graph):
        for node in paper_graph.nodes:
            anchor = paper_anchors.node_anchor(node.node_id)
            assert anchor.point.is_close(node.point, tol=1e-6)

    def test_anchor_count_matches_total_length(self, paper_anchors, paper_graph):
        # Roughly one anchor per meter of edge.
        total = paper_graph.total_edge_length
        assert 0.8 * total <= len(paper_anchors) <= 1.3 * total

    def test_anchor_locations_project_back(self, paper_anchors, paper_graph):
        for anchor in paper_anchors.anchors[:100]:
            assert paper_graph.point_of(anchor.location).is_close(
                anchor.point, tol=1e-6
            )

    def test_interior_anchor_spacing(self, paper_anchors, paper_graph):
        for edge in paper_graph.edges[:20]:
            ordered = paper_anchors.on_edge(edge.edge_id)
            offsets = [off for off, _ in ordered]
            assert offsets == sorted(offsets)
            for lo, hi in zip(offsets, offsets[1:]):
                assert hi - lo <= paper_anchors.spacing * 1.5 + 1e-9

    def test_edge_lists_include_endpoints(self, paper_anchors, paper_graph):
        for edge in paper_graph.edges[:20]:
            ordered = paper_anchors.on_edge(edge.edge_id)
            assert ordered[0][0] == pytest.approx(0.0)
            assert ordered[-1][0] == pytest.approx(edge.length)

    def test_classification_room_vs_hallway(self, paper_anchors, paper_graph):
        plan = paper_graph.floorplan
        for anchor in paper_anchors.anchors:
            if anchor.room_id is not None:
                # Node anchors of rooms are at room centers.
                assert plan.room(anchor.room_id).boundary.expanded(1e-6).contains(
                    anchor.point
                )
            if anchor.hallway_id is not None:
                assert plan.hallway(anchor.hallway_id).band.expanded(1e-6).contains(
                    anchor.point
                )

    def test_room_anchor_lists(self, paper_anchors, paper_graph):
        for room_id in paper_graph.room_ids():
            anchors = paper_anchors.in_room(room_id)
            assert anchors, f"room {room_id} has no anchors"
            assert any(a.node_id == f"room:{room_id}" for a in anchors)


class TestSpatialQueries:
    def test_nearest_exact(self, paper_anchors):
        anchor = paper_anchors.anchors[10]
        assert paper_anchors.nearest(anchor.point).ap_id == anchor.ap_id

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=-5, max_value=65),
        st.floats(min_value=-5, max_value=35),
    )
    def test_nearest_matches_bruteforce(self, paper_anchors, x, y):
        p = Point(x, y)
        fast = paper_anchors.nearest(p)
        best = min(paper_anchors.anchors, key=lambda a: a.point.squared_distance_to(p))
        assert fast.point.distance_to(p) == pytest.approx(
            best.point.distance_to(p), abs=1e-9
        )

    def test_in_rect_matches_bruteforce(self, paper_anchors):
        rect = Rect(10, 3, 25, 8)
        fast = {a.ap_id for a in paper_anchors.in_rect(rect)}
        slow = {
            a.ap_id for a in paper_anchors.anchors if rect.contains(a.point)
        }
        assert fast == slow

    def test_in_circle_matches_bruteforce(self, paper_anchors):
        circle = Circle(Point(20, 5), 3.0)
        fast = {a.ap_id for a in paper_anchors.in_circle(circle)}
        slow = {
            a.ap_id for a in paper_anchors.anchors if circle.contains(a.point)
        }
        assert fast == slow

    def test_empty_rect(self, paper_anchors):
        assert paper_anchors.in_rect(Rect(-10, -10, -5, -5)) == []


class TestNeighbors:
    def test_neighbors_symmetric(self, paper_anchors):
        adjacency = paper_anchors.neighbors()
        for ap_id, links in adjacency.items():
            for other, gap in links:
                assert (ap_id, pytest.approx(gap)) in [
                    (a, pytest.approx(g)) for a, g in adjacency[other]
                ]

    def test_gaps_positive_and_bounded(self, paper_anchors):
        adjacency = paper_anchors.neighbors()
        for links in adjacency.values():
            for _, gap in links:
                assert 0 < gap <= paper_anchors.spacing * 1.5 + 1e-9

    def test_connected(self, paper_anchors):
        adjacency = paper_anchors.neighbors()
        seen = set()
        stack = [next(iter(adjacency))]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(other for other, _ in adjacency[current])
        assert len(seen) == len(paper_anchors)

    def test_interior_anchor_has_two_neighbors(self, paper_anchors, paper_graph):
        # A mid-edge anchor links to its predecessor and successor only.
        edge = paper_graph.hallway_edges()[0]
        ordered = paper_anchors.on_edge(edge.edge_id)
        if len(ordered) >= 3:
            _, mid_ap = ordered[1]
            assert len(paper_anchors.neighbors()[mid_ap]) == 2
