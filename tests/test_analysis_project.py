"""Whole-program (``--project``) lint: cross-file rules and their plumbing.

Each project rule is exercised against a small multi-module fixture tree
under ``tests/fixtures/lint/projects/<rule>/src/repro/...`` — real files
on disk, because project mode walks the filesystem, and shaped with a
``repro`` path component so the dotted-name index resolves them exactly
like repo modules. Fixtures are parsed, never imported.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from repro.analysis import Baseline, build_project, lint_paths, lint_project
from repro.analysis.project import module_name_of
from repro.analysis.rules.lock_order import build_lock_graph
from repro.analysis.rules.schema_lock import extract_schemas, render_lock, write_lock
from repro.cli import main

PROJECTS = Path(__file__).parent / "fixtures" / "lint" / "projects"
REPO_ROOT = Path(__file__).parent.parent


# ----------------------------------------------------------------------
# the dotted-name index
# ----------------------------------------------------------------------
def test_module_name_of_real_and_virtual_paths():
    assert module_name_of("src/repro/core/filter.py") == ("repro.core.filter", "core")
    assert module_name_of(
        "tests/fixtures/lint/projects/arch/src/repro/graph/builder.py"
    ) == ("repro.graph.builder", "graph")
    assert module_name_of("src/repro/obs/__init__.py") == ("repro.obs", "obs")
    assert module_name_of("src/repro/__init__.py") == ("repro", "<root>")
    assert module_name_of("scripts/tool.py") == ("tool", "tool")


# ----------------------------------------------------------------------
# ARCH
# ----------------------------------------------------------------------
def test_arch_fixture_flags_layer_violation_and_obs_bypass():
    result = lint_project([str(PROJECTS / "arch")], only=["ARCH"])
    findings = result.sorted_findings()
    assert len(findings) == 2, [f.render() for f in findings]

    layer = next(f for f in findings if "layer violation" in f.message)
    assert layer.path.endswith("graph/builder.py")
    assert "`graph` (layer 2)" in layer.message
    assert "`sim` (layer 11)" in layer.message

    facade = next(f for f in findings if "no-op facade" in f.message)
    assert facade.path.endswith("core/engine.py")
    assert "repro.obs.registry" in facade.message


def test_arch_fixture_compliant_module_is_clean():
    result = lint_project([str(PROJECTS / "arch")], only=["ARCH"])
    assert not any(f.path.endswith("service/clean.py") for f in result.findings)


# ----------------------------------------------------------------------
# SEED
# ----------------------------------------------------------------------
def test_seed_fixture_flags_all_three_flows():
    result = lint_project([str(PROJECTS / "seed")], only=["SEED"])
    findings = result.sorted_findings()
    assert len(findings) == 3, [f.render() for f in findings]

    direct = next(f for f in findings if f.path.endswith("filters/backend.py"))
    assert "`numpy.random.default_rng()`" in direct.message

    interprocedural = next(f for f in findings if f.path.endswith("core/engine.py"))
    assert "`repro.sim.helpers.fresh_rng()` (RAW provenance)" in interprocedural.message

    handoff = next(f for f in findings if f.path.endswith("cli/main.py"))
    assert "argument `rng` of `repro.core.runner.run_filter`" in handoff.message

    assert not any(f.path.endswith("service/good.py") for f in findings)
    assert not any(f.path.endswith("sim/helpers.py") for f in findings)


# ----------------------------------------------------------------------
# LOCKORDER
# ----------------------------------------------------------------------
def test_lockorder_fixture_reports_one_inversion():
    result = lint_project([str(PROJECTS / "lockorder")], only=["LOCKORDER"])
    findings = result.sorted_findings()
    assert len(findings) == 1, [f.render() for f in findings]
    message = findings[0].message
    assert "lock-order inversion between" in message
    assert "`repro.cache.store._STORE_LOCK`" in message
    assert "`repro.service.engine._ENGINE_LOCK`" in message
    assert "pick one global order" in message


def test_lockorder_graph_edges_and_identities():
    project = build_project([str(PROJECTS / "lockorder")])
    edges = build_lock_graph(project)
    # self._lock in a method qualifies to module.Class._lock.
    assert (
        "repro.cache.store.Store._lock",
        "repro.cache.store._STORE_LOCK",
    ) in edges
    # The interprocedural inversion: both directions present.
    assert (
        "repro.cache.store._STORE_LOCK",
        "repro.service.engine._ENGINE_LOCK",
    ) in edges
    assert (
        "repro.service.engine._ENGINE_LOCK",
        "repro.cache.store._STORE_LOCK",
    ) in edges
    # Consistent nesting stays one-directional.
    alpha = "repro.core.consistent._ALPHA_LOCK"
    beta = "repro.core.consistent._BETA_LOCK"
    assert (alpha, beta) in edges
    assert (beta, alpha) not in edges


# ----------------------------------------------------------------------
# SCHEMA
# ----------------------------------------------------------------------
def _schema_tree() -> str:
    return str(PROJECTS / "schema")


def test_schema_extraction_covers_all_three_producer_shapes():
    schemas, tags = extract_schemas(build_project([_schema_tree()]))
    assert schemas == {
        "repro.core.state.Tracker.to_state": ["seed", "ticks"],
        "repro.core.state.Tracker.state_dict": ["payload", "version"],
        "repro.core.state.save_checkpoint": ["format", "state"],
    }
    assert tags == {"repro.core.state.STATE_VERSION": 2}


def test_schema_lock_round_trip_is_clean(tmp_path):
    lock = str(tmp_path / "lock.json")
    write_lock(build_project([_schema_tree()]), lock)
    result = lint_project([_schema_tree()], only=["SCHEMA"], schema_lock_path=lock)
    assert result.findings == []


def test_schema_without_lock_path_is_silent():
    result = lint_project([_schema_tree()], only=["SCHEMA"])
    assert result.findings == []


def test_schema_missing_lockfile_is_a_finding(tmp_path):
    lock = str(tmp_path / "nope.json")
    result = lint_project([_schema_tree()], only=["SCHEMA"], schema_lock_path=lock)
    assert len(result.findings) == 1
    assert "is missing" in result.findings[0].message


def test_schema_unrecognized_header_is_a_finding(tmp_path):
    lock = tmp_path / "lock.json"
    lock.write_text(json.dumps({"format": "something-else"}), encoding="utf-8")
    result = lint_project(
        [_schema_tree()], only=["SCHEMA"], schema_lock_path=str(lock)
    )
    assert [f.message for f in result.findings] == [
        "schema lockfile has an unrecognized format header; "
        "regenerate with --write-schema-lock"
    ]


def _perturbed_lock(tmp_path, mutate) -> str:
    """Write the fixture's true lock, apply ``mutate`` to the document."""
    lock = tmp_path / "lock.json"
    project = build_project([_schema_tree()])
    schemas, tags = extract_schemas(project)
    document = json.loads(render_lock(schemas, tags))
    mutate(document)
    lock.write_text(json.dumps(document), encoding="utf-8")
    return str(lock)


def test_schema_key_drift_is_flagged_at_the_producer(tmp_path):
    def drop_a_key(document):
        document["schemas"]["repro.core.state.Tracker.to_state"] = ["ticks"]

    lock = _perturbed_lock(tmp_path, drop_a_key)
    result = lint_project([_schema_tree()], only=["SCHEMA"], schema_lock_path=lock)
    (finding,) = result.findings
    assert "drifted from the lockfile" in finding.message
    assert "locked ['ticks']" in finding.message
    assert "current ['seed', 'ticks']" in finding.message
    assert finding.path.endswith("core/state.py")  # anchored at the def
    assert finding.line > 0


def test_schema_new_producer_is_flagged(tmp_path):
    def forget_state_dict(document):
        del document["schemas"]["repro.core.state.Tracker.state_dict"]

    lock = _perturbed_lock(tmp_path, forget_state_dict)
    result = lint_project([_schema_tree()], only=["SCHEMA"], schema_lock_path=lock)
    (finding,) = result.findings
    assert "is not in the lockfile" in finding.message
    assert "Tracker.state_dict" in finding.message


def test_schema_removed_producer_is_flagged(tmp_path):
    def lock_a_ghost(document):
        document["schemas"]["repro.core.state.Ghost.to_state"] = ["x"]

    lock = _perturbed_lock(tmp_path, lock_a_ghost)
    result = lint_project([_schema_tree()], only=["SCHEMA"], schema_lock_path=lock)
    (finding,) = result.findings
    assert "no longer exists in the project" in finding.message


def test_schema_tag_drift_is_flagged(tmp_path):
    def bump_tag(document):
        document["tags"]["repro.core.state.STATE_VERSION"] = 1

    lock = _perturbed_lock(tmp_path, bump_tag)
    result = lint_project([_schema_tree()], only=["SCHEMA"], schema_lock_path=lock)
    (finding,) = result.findings
    assert "version tag" in finding.message
    assert "drifted from the lockfile" in finding.message


# ----------------------------------------------------------------------
# pragmas across project rules + the stale-pragma audit
# ----------------------------------------------------------------------
def _write_tree(root: Path, relpath: str, source: str) -> Path:
    target = root / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return root


def test_pragma_suppresses_project_finding_and_counts_as_used(tmp_path):
    tree = _write_tree(
        tmp_path,
        "src/repro/graph/bad.py",
        "from repro.sim.simulator import Simulation"
        "  # repro-lint: disable=ARCH -- fixture\n"
        "\n"
        "\n"
        "def build() -> object:\n"
        "    return Simulation\n",
    )
    result = lint_project([str(tree)])
    assert result.findings == []  # ARCH suppressed, pragma used -> no PRAGMA
    assert result.suppressed == 1


def test_unused_pragma_is_flagged_in_project_mode(tmp_path):
    tree = _write_tree(
        tmp_path,
        "src/repro/core/util.py",
        "X = 1  # repro-lint: disable=ARCH\n",
    )
    result = lint_project([str(tree)])
    (finding,) = result.findings
    assert finding.rule == "PRAGMA"
    assert "unused suppression pragma `disable=ARCH`" in finding.message
    assert "delete it" in finding.message


def test_unused_pragma_audit_skipped_on_filtered_runs(tmp_path):
    tree = _write_tree(
        tmp_path,
        "src/repro/core/util.py",
        "X = 1  # repro-lint: disable=ARCH\n",
    )
    assert lint_project([str(tree)], only=["ARCH"]).findings == []


def test_unused_pragma_is_flagged_in_per_file_mode_too(tmp_path):
    tree = _write_tree(
        tmp_path,
        "src/repro/core/util.py",
        "X = 1  # repro-lint: disable=DET\n",
    )
    result = lint_paths([str(tree)])
    assert [f.rule for f in result.findings] == ["PRAGMA"]


# ----------------------------------------------------------------------
# baseline: renames and deletions surface as stale entries
# ----------------------------------------------------------------------
def _arch_findings(tree: str):
    return lint_project([tree], only=["ARCH"]).sorted_findings()


def test_baseline_rename_goes_stale_and_finding_is_new(tmp_path):
    findings = _arch_findings(str(PROJECTS / "arch"))
    baseline = Baseline.from_findings(findings)
    moved = [replace(f, path=f.path.replace("builder.py", "renamed.py"))
             for f in findings]
    diff = baseline.subtract(moved)
    assert len(diff.new) == 1  # the moved finding no longer matches
    assert diff.stale == 1  # and its old entry matched nothing


def test_baseline_deleted_file_leaves_all_entries_stale():
    findings = _arch_findings(str(PROJECTS / "arch"))
    diff = Baseline.from_findings(findings).subtract([])
    assert diff.new == []
    assert diff.matched == 0
    assert diff.stale == len(findings)


# ----------------------------------------------------------------------
# CLI project mode
# ----------------------------------------------------------------------
def test_cli_lint_project_reports_arch_violation_as_json(tmp_path, capsys):
    tree = _write_tree(
        tmp_path / "tree",
        "src/repro/graph/bad.py",
        "from repro.sim.simulator import Simulation\n"
        "\n"
        "\n"
        "def build() -> object:\n"
        "    return Simulation\n",
    )
    lock = str(tmp_path / "lock.json")
    assert main(
        ["lint", "--project", "--write-schema-lock", "--schema-lock", lock, str(tree)]
    ) == 0
    capsys.readouterr()

    code = main(
        ["lint", "--project", "--format", "json", "--schema-lock", lock, str(tree)]
    )
    document = json.loads(capsys.readouterr().out)
    assert code == 1
    assert {f["rule"] for f in document["findings"]} == {"ARCH"}


def test_cli_lint_project_clean_tree_exits_zero(tmp_path, capsys):
    tree = _write_tree(
        tmp_path / "tree",
        "src/repro/core/fine.py",
        "from repro.geometry import Point\n"
        "\n"
        "\n"
        "def origin() -> Point:\n"
        "    return Point(0.0, 0.0)\n",
    )
    lock = str(tmp_path / "lock.json")
    assert main(
        ["lint", "--project", "--write-schema-lock", "--schema-lock", lock, str(tree)]
    ) == 0
    capsys.readouterr()
    assert main(["lint", "--project", "--schema-lock", lock, str(tree)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_write_schema_lock_requires_project_mode(tmp_path, capsys):
    code = main(["lint", "--write-schema-lock", str(tmp_path)])
    assert code == 2
    assert "requires --project" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the repo itself holds its own invariants
# ----------------------------------------------------------------------
def test_repo_is_project_invariant_clean():
    """src/repro passes every cross-file rule against the committed lock."""
    result = lint_project(
        [str(REPO_ROOT / "src" / "repro")],
        schema_lock_path=str(REPO_ROOT / "schema.lock.json"),
    )
    assert result.sorted_findings() == []
    assert result.files_checked > 90


def test_committed_schema_lock_matches_the_tree():
    """Regenerating the lock from source reproduces the committed bytes."""
    project = build_project(
        [str(REPO_ROOT / "src" / "repro")],
        schema_lock_path=str(REPO_ROOT / "schema.lock.json"),
    )
    schemas, tags = extract_schemas(project)
    committed = (REPO_ROOT / "schema.lock.json").read_text(encoding="utf-8")
    assert render_lock(schemas, tags) == committed
