"""Checkpoint/restore: warm restart must be invisible in the output."""

import json

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.particles import ParticleSet
from repro.geometry import Point, Rect
from repro.service import (
    ReplaySource,
    TrackingService,
    load_checkpoint,
    restore_from_file,
    restore_service,
    save_checkpoint,
)
from repro.sim import Simulation

FAST = DEFAULT_CONFIG.with_overrides(num_objects=8, seed=11)


@pytest.fixture(scope="module")
def replay_readings():
    sim = Simulation(FAST, build_symbolic=False)
    readings = []
    for _ in range(24):
        readings.extend(sim.step())
    return readings


def _new_service(num_shards=2):
    service = TrackingService(FAST, num_shards=num_shards, mode="thread")
    service.sessions.subscribe_range(Rect(4, 0, 30, 12), session_id="r0")
    service.sessions.subscribe_knn(Point(30, 5), 3, session_id="k0")
    return service


def _delta_key(delta):
    return (delta.query_id, delta.second, delta.entered, delta.left, delta.updated)


def _run(service, readings, start_after=None, max_seconds=None):
    deltas = []
    source = ReplaySource(readings, start_after=start_after, max_seconds=max_seconds)
    for batch in source.batches():
        deltas.extend(service.process_batch(batch))
    return deltas


class TestRoundTrips:
    def test_particle_set_round_trip_is_bit_exact(self):
        rng = np.random.default_rng(4)
        particles = ParticleSet(
            edge=rng.integers(0, 50, 16),
            offset=rng.uniform(0, 10, 16),
            direction=np.where(rng.random(16) < 0.5, 1, -1).astype(np.int8),
            speed=rng.uniform(0.5, 1.5, 16),
            dwelling=rng.random(16) < 0.3,
            weight=rng.dirichlet(np.ones(16)),
        )
        restored = ParticleSet.from_state(
            json.loads(json.dumps(particles.to_state()))
        )
        for name in ("edge", "offset", "direction", "speed", "dwelling", "weight"):
            original = getattr(particles, name)
            copy = getattr(restored, name)
            assert original.dtype == copy.dtype
            assert np.array_equal(original, copy)

    def test_collector_state_round_trip(self, replay_readings):
        service = _new_service()
        try:
            _run(service, replay_readings, max_seconds=10)
            state = json.loads(json.dumps(service.collector.state_dict()))
            fresh = _new_service()
            try:
                fresh.collector.restore_state(state)
                assert fresh.collector.state_dict() == service.collector.state_dict()
                for obj in service.collector.observed_objects():
                    assert (
                        fresh.collector.history(obj).runs
                        == service.collector.history(obj).runs
                    )
            finally:
                fresh.close()
        finally:
            service.close()


class TestCheckpointFile:
    def test_save_then_load(self, tmp_path, replay_readings):
        service = _new_service()
        try:
            _run(service, replay_readings, max_seconds=5)
            path = tmp_path / "ckpt.json"
            save_checkpoint(service, path)
            state = load_checkpoint(path)
            assert state["last_second"] == 5
            assert state["ticks"] == 5
            assert len(state["sessions"]["sessions"]) == 2
        finally:
            service.close()

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "repro-trace"}')
        with pytest.raises(ValueError, match="not a repro-service-checkpoint"):
            load_checkpoint(path)

    def test_load_rejects_future_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            '{"format": "repro-service-checkpoint", '
            '"checkpoint_version": 99, "state": {}}'
        )
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)


class TestResumeEquivalence:
    def test_restore_resume_matches_uninterrupted(self, tmp_path, replay_readings):
        """Checkpoint at tick 12, restore, resume: the delta stream and
        final state must match an uninterrupted 24-tick run exactly."""
        uninterrupted = _new_service()
        interrupted = _new_service()
        try:
            full_deltas = _run(uninterrupted, replay_readings)
            _run(interrupted, replay_readings, max_seconds=12)
            path = tmp_path / "ckpt.json"
            save_checkpoint(interrupted, path)
        finally:
            interrupted.close()

        # Resume at a *different* shard count: per-object determinism
        # makes even that invisible.
        resumed = restore_from_file(path, num_shards=4)
        try:
            assert resumed.last_second == 12
            resumed_deltas = _run(
                resumed, replay_readings, start_after=resumed.last_second
            )
            tail = [_delta_key(d) for d in full_deltas if d.second > 12]
            assert [_delta_key(d) for d in resumed_deltas] == tail

            table_full = uninterrupted.snapshot().table
            table_resumed = resumed.snapshot().table
            assert sorted(table_full.objects()) == sorted(table_resumed.objects())
            for obj in table_full.objects():
                assert table_full.distribution_of(obj) == table_resumed.distribution_of(obj)
            # Final particle states bit-for-bit.
            assert (
                uninterrupted.executor.cache.state_dict()
                == resumed.executor.cache.state_dict()
            )
        finally:
            uninterrupted.close()
            resumed.close()

    def test_restore_keeps_sessions_and_baseline(self, tmp_path, replay_readings):
        service = _new_service()
        try:
            _run(service, replay_readings, max_seconds=8)
            baseline = {
                sid: service.sessions.current_result(sid) for sid in ("r0", "k0")
            }
            path = tmp_path / "ckpt.json"
            save_checkpoint(service, path)
        finally:
            service.close()

        restored = restore_service(load_checkpoint(path))
        try:
            subs = {s.session_id for s in restored.sessions.subscriptions()}
            assert subs == {"r0", "k0"}
            for sid in ("r0", "k0"):
                assert restored.sessions.current_result(sid) == baseline[sid]
        finally:
            restored.close()
