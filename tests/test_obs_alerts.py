"""Accuracy-drift alerting (repro.obs.alerts): rules, engine, surfacing."""

import json
import urllib.request

import pytest

from repro import obs
from repro.obs.alerts import (
    ALERTS_FORMAT,
    ALERTS_VERSION,
    AlertEngine,
    AlertRule,
    builtin_rules,
)
from repro.obs.events import EpochEventWriter, read_events
from repro.obs.expo import MetricsServer


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
    obs.set_clock(__import__("time").perf_counter)


def _record(tick, **accuracy):
    return {
        "tick": tick,
        "second": tick,
        "wall_seconds": 0.01,
        "queue": {"backpressure_waits": 0},
        "accuracy": accuracy,
    }


# ----------------------------------------------------------------------
# rule validation
# ----------------------------------------------------------------------
class TestAlertRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", field="a", kind="sideways")

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", field="a", kind="above", severity="loud")

    def test_rejects_bad_alpha_and_min_samples(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", field="a", kind="ewma_drop", alpha=0.0)
        with pytest.raises(ValueError):
            AlertRule(name="x", field="a", kind="above", min_samples=0)

    def test_rejects_nonpositive_ewma_factor(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", field="a", kind="ewma_rise", factor=0.0)

    def test_builtin_set_includes_ess_collapse(self):
        names = {rule.name for rule in builtin_rules()}
        assert "ess_collapse" in names
        assert "depletion_surge" in names
        ess = next(r for r in builtin_rules() if r.name == "ess_collapse")
        assert ess.severity == "critical"
        assert ess.kind == "ewma_drop"

    def test_engine_rejects_duplicate_rule_names(self):
        rule = AlertRule(name="dup", field="a", kind="above")
        with pytest.raises(ValueError):
            AlertEngine(rules=[rule, rule])


# ----------------------------------------------------------------------
# evaluation semantics
# ----------------------------------------------------------------------
class TestEvaluation:
    def test_above_fires_and_resolves(self):
        engine = AlertEngine(rules=[
            AlertRule(name="r", field="accuracy.x", kind="above",
                      threshold=2.0, min_samples=1),
        ])
        assert engine.observe_epoch(_record(1, x=1.0)) == []
        fired = engine.observe_epoch(_record(2, x=3.0))
        assert [e["action"] for e in fired] == ["fired"]
        # Still breaching: a transition already reported, no repeat.
        assert engine.observe_epoch(_record(3, x=4.0)) == []
        resolved = engine.observe_epoch(_record(4, x=0.0))
        assert [e["action"] for e in resolved] == ["resolved"]

    def test_below_kind(self):
        engine = AlertEngine(rules=[
            AlertRule(name="r", field="accuracy.x", kind="below",
                      threshold=1.0, min_samples=1),
        ])
        assert engine.observe_epoch(_record(1, x=0.5))[0]["action"] == "fired"

    def test_missing_or_null_field_is_skipped(self):
        engine = AlertEngine(rules=[
            AlertRule(name="r", field="accuracy.x", kind="above",
                      threshold=0.0, min_samples=1),
        ])
        assert engine.observe_epoch(_record(1)) == []
        assert engine.observe_epoch(_record(2, x=None)) == []
        assert engine.observe_epoch(_record(3, x=True)) == []  # bools skipped

    def test_ewma_needs_min_samples_before_arming(self):
        engine = AlertEngine(rules=[
            AlertRule(name="r", field="accuracy.x", kind="ewma_drop",
                      factor=0.5, min_samples=3),
        ])
        # A collapse before the baseline is armed must not fire.
        assert engine.observe_epoch(_record(1, x=40.0)) == []
        assert engine.observe_epoch(_record(2, x=1.0)) == []
        assert engine.observe_epoch(_record(3, x=40.0)) == []

    def test_ewma_drop_fires_and_baseline_freezes_during_breach(self):
        engine = AlertEngine(rules=[
            AlertRule(name="r", field="accuracy.x", kind="ewma_drop",
                      factor=0.5, alpha=0.2, min_samples=3),
        ])
        for tick in range(1, 5):
            assert engine.observe_epoch(_record(tick, x=40.0)) == []
        fired = engine.observe_epoch(_record(5, x=10.0))
        assert [e["action"] for e in fired] == ["fired"]
        assert fired[0]["baseline"] == pytest.approx(40.0)
        # Sustained collapse: the baseline must not be absorbed, so a
        # later equally-low epoch is still breaching (no resolve).
        assert engine.observe_epoch(_record(6, x=10.0)) == []
        summary = engine.summary()
        rule = next(r for r in summary["rules"] if r["rule"] == "r")
        assert rule["baseline"] == pytest.approx(40.0)
        assert rule["firing"] is True

    def test_ewma_rise_fires_on_spike(self):
        engine = AlertEngine(rules=[
            AlertRule(name="r", field="wall_seconds", kind="ewma_rise",
                      factor=3.0, min_samples=2),
        ])
        records = [_record(t) for t in (1, 2, 3)]
        records.append({**_record(4), "wall_seconds": 0.5})
        events = []
        for record in records:
            events.extend(engine.observe_epoch(record))
        assert [e["action"] for e in events] == ["fired"]


# ----------------------------------------------------------------------
# surfacing: metrics, summary, JSONL, /alerts
# ----------------------------------------------------------------------
class TestSurfacing:
    def _engine(self, writer=None):
        return AlertEngine(
            rules=[
                AlertRule(name="surge", field="accuracy.x", kind="above",
                          threshold=0.0, severity="critical", min_samples=1),
            ],
            writer=writer,
        )

    def test_fired_counter_and_active_gauge(self):
        obs.enable()
        engine = self._engine()
        engine.observe_epoch(_record(1, x=1.0))
        snap = obs.snapshot()["metrics"]
        counters = {
            (c["name"], tuple(sorted((c.get("labels") or {}).items()))): c["value"]
            for c in snap["counters"]
        }
        key = ("obs.alerts_fired",
               (("rule", "surge"), ("severity", "critical")))
        assert counters[key] == 1
        gauges = {g["name"]: g["value"] for g in snap["gauges"]}
        assert gauges["obs.alerts_active"] == 1.0
        engine.observe_epoch(_record(2, x=0.0))
        gauges = {g["name"]: g["value"]
                  for g in obs.snapshot()["metrics"]["gauges"]}
        assert gauges["obs.alerts_active"] == 0.0

    def test_active_and_summary_views(self):
        engine = self._engine()
        assert engine.active() == []
        engine.observe_epoch(_record(7, x=2.0))
        active = engine.active()
        assert len(active) == 1
        assert active[0]["rule"] == "surge"
        assert active[0]["since_tick"] == 7
        summary = engine.summary()
        assert summary["format"] == ALERTS_FORMAT
        assert summary["version"] == ALERTS_VERSION
        assert summary["active_count"] == 1

    def test_jsonl_alert_log(self, tmp_path):
        path = str(tmp_path / "alerts.jsonl")
        with EpochEventWriter(path, fmt=ALERTS_FORMAT,
                              version=ALERTS_VERSION) as writer:
            engine = self._engine(writer=writer)
            engine.observe_epoch(_record(1, x=1.0))
            engine.observe_epoch(_record(2, x=0.0))
        header, events = read_events(path, fmt=ALERTS_FORMAT)
        assert header["version"] == ALERTS_VERSION
        assert [(e["action"], e["rule"]) for e in events] == [
            ("fired", "surge"), ("resolved", "surge"),
        ]
        assert events[0]["severity"] == "critical"

    def test_alerts_endpoint_serves_summary(self):
        engine = self._engine()
        engine.observe_epoch(_record(1, x=5.0))
        server = MetricsServer(
            snapshot_provider=obs.snapshot,
            alerts_provider=engine.summary,
        )
        with server:
            with urllib.request.urlopen(server.url("/alerts"), timeout=5) as r:
                payload = json.loads(r.read())
        assert payload["active_count"] == 1
        assert payload["rules"][0]["rule"] == "surge"


# ----------------------------------------------------------------------
# the acceptance scenario: a reader outage must trip ess_collapse
# ----------------------------------------------------------------------
class TestReaderOutage:
    def test_outage_fires_ess_collapse_through_all_channels(self, tmp_path):
        """25 healthy seconds, 55 s of dead readers, then recovery.

        While the readers are down the dispersing particle clouds get no
        corrections; on the first readings after recovery the clouds are
        inconsistent with the observations, ESS collapses (depletion
        records ESS 1.0), and the built-in ``ess_collapse`` rule must
        fire — surfacing via the JSONL alert log, the labeled
        ``obs.alerts_fired`` counter, and the ``/alerts`` endpoint.
        """
        from repro.config import DEFAULT_CONFIG
        from repro.obs.events import EpochEventRecorder
        from repro.service import ReplaySource, TrackingService
        from repro.service.ingest import ReadingBatch
        from repro.sim import Simulation

        config = DEFAULT_CONFIG.with_overrides(seed=7, num_objects=3)
        sim = Simulation(config, build_symbolic=False)
        healthy = []
        for _ in range(25):
            healthy.extend(sim.step())
        for _ in range(55):
            sim.step()  # the world keeps moving; the readers see nothing
        recovered = []
        for _ in range(8):
            recovered.extend(sim.step())

        obs.enable()
        alert_log = str(tmp_path / "alerts.jsonl")
        writer = EpochEventWriter(alert_log, fmt=ALERTS_FORMAT,
                                  version=ALERTS_VERSION)
        engine = AlertEngine(writer=writer)
        service = TrackingService(config, seed=7)
        recorder = EpochEventRecorder(None, obs.registry())
        transitions = []
        tick = 0

        def feed(batch):
            nonlocal tick
            service.process_batch(batch)
            tick += 1
            record = recorder.record_epoch(
                second=batch.second, tick=tick, wall_seconds=0.0
            )
            transitions.extend(engine.observe_epoch(record))

        for batch in ReplaySource(healthy).batches():
            feed(batch)
        healthy_ticks = tick
        outage_start = service.last_second + 1
        for second in range(outage_start, outage_start + 55):
            feed(ReadingBatch(second=second, readings=()))
        for batch in ReplaySource(recovered).batches():
            feed(batch)
        service.close()
        writer.close()

        fired = [e for e in transitions if e["action"] == "fired"]
        ess_fired = [e for e in fired if e["rule"] == "ess_collapse"]
        assert ess_fired, "reader outage did not trip ess_collapse"
        # It fired on recovery, not on cold-start noise.
        assert all(e["tick"] > healthy_ticks for e in ess_fired)
        assert ess_fired[0]["value"] < 0.5 * ess_fired[0]["baseline"]
        # The dead readers also deplete the clouds outright.
        assert any(e["rule"] == "depletion_surge" for e in fired)

        # Channel 1: the JSONL alert log.
        header, logged = read_events(alert_log, fmt=ALERTS_FORMAT)
        assert header["format"] == ALERTS_FORMAT
        assert any(
            e["rule"] == "ess_collapse" and e["action"] == "fired"
            for e in logged
        )

        # Channel 2: the labeled metrics counter.
        counters = obs.snapshot()["metrics"]["counters"]
        ess_counts = [
            c["value"] for c in counters
            if c["name"] == "obs.alerts_fired"
            and (c.get("labels") or {}).get("rule") == "ess_collapse"
        ]
        assert ess_counts and ess_counts[0] >= 1
        assert (
            next(
                (c.get("labels") or {}).get("severity") for c in counters
                if c["name"] == "obs.alerts_fired"
                and (c.get("labels") or {}).get("rule") == "ess_collapse"
            )
            == "critical"
        )

        # Channel 3: the /alerts endpoint.
        server = MetricsServer(
            snapshot_provider=obs.snapshot,
            alerts_provider=engine.summary,
        )
        with server:
            with urllib.request.urlopen(server.url("/alerts"), timeout=5) as r:
                payload = json.loads(r.read())
        ess_rule = next(
            r for r in payload["rules"] if r["rule"] == "ess_collapse"
        )
        assert ess_rule["fired_count"] >= 1
