"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_experiment_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_filter_backend_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--filter", "bogus"])
        args = build_parser().parse_args(["simulate", "--filter", "kalman"])
        assert args.filter_backend == "kalman"

    def test_serve_filter_defaults_to_none(self):
        args = build_parser().parse_args(["serve", "--live"])
        assert args.filter_backend is None


class TestSimulate:
    def test_exports_world_and_log(self, tmp_path, capsys):
        readings = tmp_path / "readings.csv"
        plan = tmp_path / "plan.json"
        deployment = tmp_path / "deployment.json"
        code = main(
            [
                "simulate",
                "--objects", "8",
                "--seconds", "20",
                "--seed", "5",
                "--readings", str(readings),
                "--plan", str(plan),
                "--deployment", str(deployment),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated 20 s" in out
        assert readings.exists()
        assert json.loads(plan.read_text())["format"] == "repro-floorplan"
        assert json.loads(deployment.read_text())["format"] == "repro-deployment"

    def test_render_flag(self, capsys):
        code = main(["simulate", "--objects", "5", "--seconds", "5", "--render"])
        assert code == 0
        out = capsys.readouterr().out
        assert ":" in out  # hallway cells in the rendering


class TestRender:
    def test_default_plan(self, capsys):
        assert main(["render", "--columns", "60"]) == 0
        out = capsys.readouterr().out
        assert ":" in out
        assert "." in out

    def test_roundtrip_through_files(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        deployment = tmp_path / "deployment.json"
        main(
            [
                "simulate", "--objects", "3", "--seconds", "3",
                "--plan", str(plan), "--deployment", str(deployment),
            ]
        )
        capsys.readouterr()
        assert main(
            ["render", "--plan", str(plan), "--deployment", str(deployment)]
        ) == 0
        assert "R" in capsys.readouterr().out


class TestExperiment:
    def test_fig9_small(self, tmp_path, capsys):
        out_csv = tmp_path / "rows.csv"
        out_json = tmp_path / "rows.json"
        code = main(
            [
                "experiment", "fig9",
                "--objects", "10",
                "--seconds", "40",
                "--seed", "2",
                "--out-csv", str(out_csv),
                "--out-json", str(out_json),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "range_kl_pf" in printed
        assert out_csv.read_text().startswith("window_ratio")
        rows = json.loads(out_json.read_text())
        assert len(rows) == 5

    def test_backend_comparison(self, tmp_path, capsys):
        out_json = tmp_path / "rows.json"
        code = main(
            [
                "experiment", "backends",
                "--objects", "6",
                "--seconds", "20",
                "--seed", "2",
                "--out-json", str(out_json),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "backend" in printed
        rows = json.loads(out_json.read_text())
        assert [row["backend"] for row in rows] == [
            "particle", "kalman", "symbolic"
        ]
        assert all(row["elapsed_s"] >= 0 for row in rows)


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "range query" in out
        assert "3NN" in out


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestTraceAndStats:
    def test_simulate_trace_then_stats(self, tmp_path, capsys):
        from repro import obs

        trace = tmp_path / "trace.json"
        code = main(
            [
                "simulate",
                "--objects", "8",
                "--seconds", "25",
                "--seed", "5",
                "--trace", str(trace),
            ]
        )
        assert code == 0
        assert not obs.enabled()  # the CLI turns recording back off
        out = capsys.readouterr().out
        assert f"trace -> {trace}" in out

        data = json.loads(trace.read_text())
        assert data["format"] == "repro-trace"
        counter_names = {c["name"] for c in data["metrics"]["counters"]}
        histogram_names = {h["name"] for h in data["metrics"]["histograms"]}
        # Acceptance: filter phases, pruning counters, collector throughput.
        assert {"filter.predict", "filter.weight"} <= histogram_names
        assert "prune.objects_seen" in counter_names
        assert "collector.raw_readings" in counter_names

        out_csv = tmp_path / "rows.csv"
        assert main(["stats", str(trace), "--out-csv", str(out_csv)]) == 0
        printed = capsys.readouterr().out
        assert "counters" in printed
        assert "prune.objects_seen" in printed
        assert out_csv.read_text().startswith("kind,name,value")

    def test_experiment_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        code = main(
            [
                "experiment", "fig9",
                "--objects", "8",
                "--seconds", "25",
                "--seed", "2",
                "--trace", str(trace),
            ]
        )
        assert code == 0
        data = json.loads(trace.read_text())
        assert data["meta"]["figure"] == "fig9"
        histogram_names = {h["name"] for h in data["metrics"]["histograms"]}
        assert "experiment.pf_evaluate" in histogram_names

    def test_stats_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not_a_trace.json"
        path.write_text('{"rows": []}')
        with pytest.raises(ValueError):
            main(["stats", str(path)])
