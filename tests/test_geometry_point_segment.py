"""Unit and property tests for points, segments, and polylines."""


import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, Polyline, Segment

coords = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_distance_to_self_is_zero(self):
        p = Point(3.0, 4.0)
        assert p.distance_to(p) == 0.0

    def test_distance_345(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_squared_distance(self):
        assert Point(0, 0).squared_distance_to(Point(3, 4)) == 25.0

    def test_manhattan_distance(self):
        assert Point(1, 1).manhattan_distance_to(Point(4, 5)) == 7.0

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_lerp_endpoints(self):
        a, b = Point(0, 0), Point(10, 20)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(4, 6)) == Point(2, 3)

    def test_as_tuple_and_iter(self):
        p = Point(1.5, 2.5)
        assert p.as_tuple() == (1.5, 2.5)
        assert tuple(p) == (1.5, 2.5)

    def test_is_close(self):
        assert Point(1, 1).is_close(Point(1 + 1e-12, 1))
        assert not Point(1, 1).is_close(Point(1.1, 1))

    def test_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2

    @given(points, points)
    def test_distance_symmetry(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(points, points)
    def test_euclidean_lower_bounds_manhattan(self, a, b):
        assert a.distance_to(b) <= a.manhattan_distance_to(b) + 1e-9


class TestSegment:
    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length == 5.0

    def test_degenerate(self):
        assert Segment(Point(1, 1), Point(1, 1)).is_degenerate

    def test_orientation_flags(self):
        assert Segment(Point(0, 1), Point(5, 1)).is_horizontal
        assert Segment(Point(2, 0), Point(2, 5)).is_vertical
        diagonal = Segment(Point(0, 0), Point(1, 1))
        assert not diagonal.is_horizontal
        assert not diagonal.is_vertical

    def test_point_at_clamps(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.point_at(-5) == Point(0, 0)
        assert seg.point_at(25) == Point(10, 0)
        assert seg.point_at(4) == Point(4, 0)

    def test_project_interior(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        offset, dist = seg.project(Point(3, 4))
        assert offset == pytest.approx(3.0)
        assert dist == pytest.approx(4.0)

    def test_project_beyond_end_clamps(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        offset, dist = seg.project(Point(15, 0))
        assert offset == pytest.approx(10.0)
        assert dist == pytest.approx(5.0)

    def test_closest_point(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.closest_point(Point(7, 3)) == Point(7, 0)

    def test_reversed(self):
        seg = Segment(Point(0, 0), Point(1, 2))
        assert seg.reversed() == Segment(Point(1, 2), Point(0, 0))

    def test_sample_spacing(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        pts = list(seg.sample(2.5))
        assert pts[0] == Point(0, 0)
        assert pts[-1] == Point(10, 0)
        assert len(pts) == 5

    def test_sample_includes_far_endpoint(self):
        seg = Segment(Point(0, 0), Point(1, 0))
        pts = list(seg.sample(0.4))
        assert pts[-1] == Point(1, 0)

    def test_sample_rejects_bad_spacing(self):
        with pytest.raises(ValueError):
            list(Segment(Point(0, 0), Point(1, 0)).sample(0.0))

    @given(points, points, points)
    def test_projection_distance_is_minimal(self, a, b, p):
        seg = Segment(a, b)
        offset, dist = seg.project(p)
        # The reported distance can never beat the distance to any sampled
        # point of the segment.
        for t in (0.0, 0.25, 0.5, 0.75, 1.0):
            candidate = a.lerp(b, t)
            assert dist <= p.distance_to(candidate) + 1e-6

    @given(points, points, st.floats(min_value=0.0, max_value=1.0))
    def test_project_recovers_interior_points(self, a, b, t):
        seg = Segment(a, b)
        target = a.lerp(b, t)
        _, dist = seg.project(target)
        assert dist == pytest.approx(0.0, abs=1e-6)


class TestPolyline:
    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            Polyline(tuple())
        with pytest.raises(ValueError):
            Polyline((Point(0, 0),))

    def test_from_points_dedupes(self):
        line = Polyline.from_points([Point(0, 0), Point(0, 0), Point(1, 0)])
        assert len(line.points) == 2

    def test_length_two_legs(self):
        line = Polyline.from_points([Point(0, 0), Point(3, 0), Point(3, 4)])
        assert line.length == pytest.approx(7.0)

    def test_point_at_crosses_legs(self):
        line = Polyline.from_points([Point(0, 0), Point(3, 0), Point(3, 4)])
        assert line.point_at(0) == Point(0, 0)
        assert line.point_at(3) == Point(3, 0)
        assert line.point_at(5).is_close(Point(3, 2))
        assert line.point_at(100) == Point(3, 4)

    def test_project_picks_best_leg(self):
        line = Polyline.from_points([Point(0, 0), Point(10, 0), Point(10, 10)])
        offset, dist = line.project(Point(9.5, 6))
        assert offset == pytest.approx(16.0)
        assert dist == pytest.approx(0.5)

    def test_reversed(self):
        line = Polyline.from_points([Point(0, 0), Point(1, 0), Point(1, 1)])
        rev = line.reversed()
        assert rev.start == Point(1, 1)
        assert rev.end == Point(0, 0)
        assert rev.length == pytest.approx(line.length)

    @given(st.lists(points, min_size=2, max_size=6))
    def test_point_at_endpoints(self, pts):
        line = Polyline.from_points(pts)
        assert line.point_at(0.0).is_close(line.start, tol=1e-6)
        assert line.point_at(line.length).is_close(line.end, tol=1e-6)

    @given(st.lists(points, min_size=2, max_size=6), st.floats(0, 1))
    def test_projection_roundtrip(self, pts, t):
        line = Polyline.from_points(pts)
        target = line.point_at(t * line.length)
        _, dist = line.project(target)
        assert dist == pytest.approx(0.0, abs=1e-6)
