"""Labeled metrics: freezing, aggregation, and thread-safety."""

import threading

import pytest

from repro import obs
from repro.obs.registry import MAX_LABELS, MetricsRegistry, freeze_labels


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
    obs.set_clock(__import__("time").perf_counter)


# ----------------------------------------------------------------------
# label freezing
# ----------------------------------------------------------------------
class TestFreezeLabels:
    def test_none_and_empty_freeze_to_unlabeled(self):
        assert freeze_labels(None) == ()
        assert freeze_labels({}) == ()

    def test_sorted_and_stringified(self):
        frozen = freeze_labels({"shard": 3, "backend": "kalman"})
        assert frozen == (("backend", "kalman"), ("shard", "3"))

    def test_insertion_order_is_irrelevant(self):
        a = freeze_labels({"a": 1, "b": 2})
        b = freeze_labels({"b": 2, "a": 1})
        assert a == b

    def test_invalid_label_name_rejected(self):
        with pytest.raises(ValueError):
            freeze_labels({"bad-name": 1})
        with pytest.raises(ValueError):
            freeze_labels({"0lead": 1})

    def test_too_many_labels_rejected(self):
        labels = {f"l{i}": i for i in range(MAX_LABELS + 1)}
        with pytest.raises(ValueError):
            freeze_labels(labels)


# ----------------------------------------------------------------------
# registry semantics with labels
# ----------------------------------------------------------------------
class TestLabeledInstruments:
    def test_label_sets_are_independent_series(self):
        registry = MetricsRegistry()
        registry.counter("q", {"query": "range"}).inc(3)
        registry.counter("q", {"query": "knn"}).inc(2)
        registry.counter("q").inc()
        assert registry.counter("q", {"query": "range"}).value == 3
        assert registry.counter("q", {"query": "knn"}).value == 2
        assert registry.counter("q").value == 1

    def test_counter_total_sums_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("q", {"query": "range"}).inc(3)
        registry.counter("q", {"query": "knn"}).inc(2)
        registry.counter("q").inc()
        assert registry.counter_total("q") == 6
        assert registry.counter_total("missing") == 0

    def test_same_labels_return_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("c", {"shard": 0})
        b = registry.counter("c", {"shard": "0"})
        assert a is b

    def test_series_of_lists_every_label_set(self):
        registry = MetricsRegistry()
        registry.gauge("g", {"shard": 1}).set(5)
        registry.gauge("g", {"shard": 0}).set(7)
        series = registry.series_of("g")
        assert [s["labels"] for s in series] == [
            {"shard": "0"},
            {"shard": "1"},
        ]

    def test_snapshot_carries_labels(self):
        registry = MetricsRegistry()
        registry.counter("c", {"backend": "kalman"}).inc()
        registry.histogram("h", {"shard": 2}).observe(1.0)
        snap = registry.snapshot()
        counter = snap["counters"][0]
        assert counter["labels"] == {"backend": "kalman"}
        histogram = snap["histograms"][0]
        assert histogram["labels"] == {"shard": "2"}

    def test_unlabeled_snapshot_has_no_labels_key(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert "labels" not in registry.snapshot()["counters"][0]

    def test_snapshot_order_is_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("b", {"x": 2}).inc()
        registry.counter("a").inc()
        registry.counter("b", {"x": 1}).inc()
        names = [
            (c["name"], c.get("labels")) for c in registry.snapshot()["counters"]
        ]
        assert names == [("a", None), ("b", {"x": "1"}), ("b", {"x": "2"})]


class TestFacadeLabels:
    def test_add_observe_gauge_with_labels(self):
        obs.enable()
        obs.add("c", 2, labels={"shard": 1})
        obs.gauge_set("g", 4.0, labels={"shard": 1})
        obs.observe("h", 0.5, labels={"shard": 1})
        with obs.timer("t", labels={"shard": 1}):
            pass
        snap = obs.snapshot()
        assert snap["metrics"]["counters"][0]["labels"] == {"shard": "1"}
        names = {h["name"] for h in snap["metrics"]["histograms"]}
        assert {"h", "t"} <= names

    def test_disabled_facade_ignores_labels(self):
        obs.add("c", labels={"shard": 1})
        assert obs.registry().snapshot()["counters"] == []


# ----------------------------------------------------------------------
# histogram sample-cap honesty
# ----------------------------------------------------------------------
class TestHistogramDropReporting:
    def test_dropped_samples_exported(self):
        registry = MetricsRegistry()
        h = registry.histogram("h")
        h.max_samples = 4
        for i in range(10):
            h.observe(float(i))
        data = h.as_dict()
        assert data["count"] == 10
        assert data["dropped_samples"] == 6
        assert data["quantiles_estimated"] is True

    def test_uncapped_histogram_reports_zero_dropped(self):
        registry = MetricsRegistry()
        h = registry.histogram("h")
        h.observe(1.0)
        data = h.as_dict()
        assert data["dropped_samples"] == 0
        assert data["quantiles_estimated"] is False


# ----------------------------------------------------------------------
# thread-safety: concurrent increments aggregate exactly
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_concurrent_labeled_increments_are_exact(self):
        obs.enable()
        workers, per_worker = 8, 500

        def work(shard):
            for _ in range(per_worker):
                obs.add("thr.counter", labels={"shard": shard % 2})

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = obs.registry().counter_total("thr.counter")
        assert total == workers * per_worker
        even = obs.registry().counter("thr.counter", {"shard": 0}).value
        odd = obs.registry().counter("thr.counter", {"shard": 1}).value
        assert even == odd == workers * per_worker // 2

    def test_concurrent_timer_use_keeps_pairing(self):
        obs.enable()
        errors = []

        def work():
            try:
                for _ in range(200):
                    with obs.timer("thr.timer"):
                        pass
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        h = obs.registry().histogram("thr.timer")
        assert h.count == 800
