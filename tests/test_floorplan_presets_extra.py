"""Tests for the additional floor plan presets and their graphs."""

import pytest

from repro.floorplan import cross_office_plan, linear_office_plan
from repro.graph import NodeKind, build_anchor_index, build_walking_graph
from repro.rfid import deploy_readers_uniform


class TestLinearPlan:
    def test_default_structure(self):
        plan = linear_office_plan()
        assert len(plan.hallways) == 1
        assert len(plan.rooms) == 10

    def test_parameterized(self):
        plan = linear_office_plan(num_rooms_per_side=3, room_width=8.0)
        assert len(plan.rooms) == 6
        assert plan.hallways[0].length == pytest.approx(24.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            linear_office_plan(num_rooms_per_side=0)

    def test_graph_buildable(self):
        graph = build_walking_graph(linear_office_plan())
        assert len(graph.room_ids()) == 10
        anchors = build_anchor_index(graph)
        assert len(anchors) > 30

    def test_deployable(self):
        plan = linear_office_plan()
        readers = deploy_readers_uniform(plan, 4, 2.0)
        assert len(readers) == 4


class TestCrossPlan:
    def test_default_structure(self):
        plan = cross_office_plan()
        assert len(plan.hallways) == 2
        assert len(plan.rooms) == 12

    def test_has_four_way_intersection(self):
        graph = build_walking_graph(cross_office_plan())
        degrees = [
            graph.degree(n.node_id)
            for n in graph.nodes
            if n.kind is NodeKind.HALLWAY
        ]
        assert max(degrees) >= 4

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            cross_office_plan(arm_length=2.0)
        with pytest.raises(ValueError):
            cross_office_plan(rooms_per_arm=0)

    def test_graph_connected_and_anchored(self):
        graph = build_walking_graph(cross_office_plan())
        anchors = build_anchor_index(graph)
        # Spot-check network distance across the intersection.
        a = graph.room_node("R1")
        b = graph.room_node("R12")
        assert 0 < graph.node_distance(a, b) < 200
        assert len(anchors) > 50

    def test_simulation_runs_on_cross_plan(self):
        from repro.config import DEFAULT_CONFIG
        from repro.rfid import deploy_readers_uniform
        from repro.sim import Simulation

        plan = cross_office_plan()
        config = DEFAULT_CONFIG.with_overrides(num_objects=5, num_readers=6)
        readers = deploy_readers_uniform(plan, 6, 2.0)
        sim = Simulation(config, plan=plan, readers=readers)
        sim.run_for(30)
        table = sim.pf_engine.locations_snapshot(sim.now, rng=sim.pf_rng)
        assert len(table.objects()) >= 1
