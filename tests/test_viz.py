"""Tests for the ASCII visualization layer."""

import pytest

from repro.geometry import Point, Rect
from repro.viz import AsciiCanvas, render_distribution, render_floorplan


class TestCanvas:
    def test_dimensions(self, paper_plan):
        canvas = AsciiCanvas(paper_plan, columns=80)
        rendered = canvas.render()
        lines = rendered.split("\n")
        assert len(lines) == canvas.rows
        assert all(len(line) <= 80 for line in lines)

    def test_rejects_tiny_width(self, paper_plan):
        with pytest.raises(ValueError):
            AsciiCanvas(paper_plan, columns=4)

    def test_cell_roundtrip(self, paper_plan):
        canvas = AsciiCanvas(paper_plan, columns=80)
        cell = canvas.cell_of(Point(30, 16))
        assert cell is not None
        center = canvas.cell_center(*cell)
        assert center.distance_to(Point(30, 16)) < 2.0

    def test_off_canvas_point_ignored(self, paper_plan):
        canvas = AsciiCanvas(paper_plan, columns=80)
        assert canvas.cell_of(Point(-100, -100)) is None
        canvas.put(Point(-100, -100), "X")  # no exception

    def test_put_rejects_multichar(self, paper_plan):
        with pytest.raises(ValueError):
            AsciiCanvas(paper_plan).put(Point(10, 10), "XX")


class TestFloorplanRendering:
    def test_contains_rooms_and_hallways(self, paper_plan):
        rendered = render_floorplan(paper_plan, columns=80)
        assert ":" in rendered  # hallway cells
        assert "." in rendered  # room cells

    def test_readers_marked(self, paper_plan, paper_readers):
        rendered = render_floorplan(paper_plan, paper_readers, columns=96)
        assert rendered.count("R") >= 15  # some may share a cell

    def test_positions_marked(self, paper_plan):
        rendered = render_floorplan(
            paper_plan, positions={"o1": Point(30, 5)}, columns=80
        )
        assert "o" in rendered

    def test_rect_overlay(self, paper_plan):
        canvas = AsciiCanvas(paper_plan, columns=80).paint_floorplan()
        canvas.paint_rect(Rect(10, 3, 20, 8))
        assert "+" in canvas.render()


class TestDistributionRendering:
    def test_heat_and_truth_marker(self, paper_plan, paper_anchors):
        anchor = paper_anchors.nearest(Point(30, 5))
        rendered = render_distribution(
            paper_plan,
            paper_anchors,
            {anchor.ap_id: 1.0},
            true_position=Point(10, 27),
            columns=80,
        )
        assert "@" in rendered  # peak heat cell
        assert "X" in rendered  # truth marker

    def test_empty_distribution(self, paper_plan, paper_anchors):
        rendered = render_distribution(paper_plan, paper_anchors, {}, columns=80)
        assert "@" not in rendered

    def test_relative_shading(self, paper_plan, paper_anchors):
        strong = paper_anchors.nearest(Point(30, 5))
        weak = paper_anchors.nearest(Point(30, 27))
        rendered = render_distribution(
            paper_plan,
            paper_anchors,
            {strong.ap_id: 0.9, weak.ap_id: 0.1},
            columns=120,
        )
        assert "@" in rendered
        # The weak cell uses a lighter ramp character.
        assert any(c in rendered for c in ".:-=+")
