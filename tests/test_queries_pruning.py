"""Tests for the query-aware optimization module (paper Section 4.3)."""

import pytest

from repro.collector import EventDrivenCollector
from repro.config import DEFAULT_CONFIG
from repro.geometry import Point, Rect
from repro.queries import KNNQuery, QueryAwareOptimizer, RangeQuery, uncertain_region
from repro.rfid.readings import RawReading


def raw(second, tag, reader):
    return [RawReading(second + 0.5, tag, reader)]


@pytest.fixture
def optimizer(paper_graph, paper_anchors, paper_readers_by_id):
    return QueryAwareOptimizer(
        paper_graph, paper_anchors, paper_readers_by_id, DEFAULT_CONFIG
    )


@pytest.fixture
def collector(paper_readers_by_id):
    tags = {f"tag{i}": f"o{i}" for i in range(1, 6)}
    c = EventDrivenCollector(tags)
    # o1..o5 each seen at a different reader at second 0.
    readings = []
    for i, reader_id in enumerate(["d1", "d4", "d8", "d12", "d16"], start=1):
        readings += raw(0, f"tag{i}", reader_id)
    c.ingest_second(0, readings)
    return c


class TestUncertainRegion:
    def test_fresh_detection(self, paper_readers_by_id):
        reader = paper_readers_by_id["d1"]
        region = uncertain_region(reader, last_second=10, now=10, max_speed=1.5)
        assert region.center == reader.position
        assert region.radius == pytest.approx(reader.activation_range)

    def test_grows_with_time(self, paper_readers_by_id):
        reader = paper_readers_by_id["d1"]
        region = uncertain_region(reader, last_second=10, now=20, max_speed=1.5)
        assert region.radius == pytest.approx(15.0 + 2.0)

    def test_rejects_time_travel(self, paper_readers_by_id):
        with pytest.raises(ValueError):
            uncertain_region(paper_readers_by_id["d1"], 10, 5, 1.5)


class TestRangeCandidates:
    def test_window_far_from_everyone(self, optimizer, collector):
        queries = [RangeQuery("q", Rect(0, 28, 3, 31))]
        candidates = optimizer.candidates(collector, now=1, range_queries=queries)
        # Window is a corner far from all five readers at t=1.
        regions = optimizer._uncertain_regions(collector, collector.observed_objects(), 1)
        expected = {
            o for o, r in regions.items() if r.intersects_rect(queries[0].window)
        }
        assert candidates == expected

    def test_window_over_reader_catches_its_object(
        self, optimizer, collector, paper_readers_by_id
    ):
        pos = paper_readers_by_id["d1"].position
        window = Rect(pos.x - 1, pos.y - 1, pos.x + 1, pos.y + 1)
        candidates = optimizer.candidates(
            collector, now=1, range_queries=[RangeQuery("q", window)]
        )
        assert "o1" in candidates

    def test_uncertainty_growth_adds_candidates(
        self, optimizer, collector, paper_readers_by_id
    ):
        pos = paper_readers_by_id["d1"].position
        window = Rect(pos.x - 1, pos.y - 1, pos.x + 1, pos.y + 1)
        soon = optimizer.candidates(
            collector, now=1, range_queries=[RangeQuery("q", window)]
        )
        later = optimizer.candidates(
            collector, now=60, range_queries=[RangeQuery("q", window)]
        )
        assert soon <= later
        assert len(later) >= len(soon)

    def test_empty_without_queries(self, optimizer, collector):
        assert optimizer.candidates(collector, now=1) == set()


class TestKnnCandidates:
    def test_all_kept_when_fewer_than_k(self, optimizer, collector, paper_readers_by_id):
        query = KNNQuery("q", paper_readers_by_id["d1"].position, k=10)
        candidates = optimizer.candidates(collector, now=1, knn_queries=[query])
        assert candidates == {"o1", "o2", "o3", "o4", "o5"}

    def test_prunes_far_objects(self, optimizer, collector, paper_readers_by_id):
        query = KNNQuery("q", paper_readers_by_id["d1"].position, k=1)
        candidates = optimizer.candidates(collector, now=1, knn_queries=[query])
        assert "o1" in candidates
        assert len(candidates) < 5

    def test_never_prunes_true_nearest(
        self, optimizer, collector, paper_graph, paper_readers_by_id
    ):
        # The object at d1 is by construction the nearest to d1's position.
        query = KNNQuery("q", paper_readers_by_id["d1"].position, k=1)
        candidates = optimizer.candidates(collector, now=5, knn_queries=[query])
        assert "o1" in candidates

    def test_safety_under_growth(self, optimizer, collector, paper_readers_by_id):
        # As uncertainty grows, pruning must only get more conservative.
        query = KNNQuery("q", paper_readers_by_id["d1"].position, k=2)
        soon = optimizer.candidates(collector, now=1, knn_queries=[query])
        later = optimizer.candidates(collector, now=120, knn_queries=[query])
        assert soon <= later


class TestQueryTypes:
    def test_knn_query_requires_positive_k(self):
        with pytest.raises(ValueError):
            KNNQuery("q", Point(0, 0), k=0)

    def test_union_over_queries(self, optimizer, collector, paper_readers_by_id):
        d1 = paper_readers_by_id["d1"].position
        d16 = paper_readers_by_id["d16"].position
        both = optimizer.candidates(
            collector,
            now=1,
            range_queries=[RangeQuery("r", Rect(d1.x - 1, d1.y - 1, d1.x + 1, d1.y + 1))],
            knn_queries=[KNNQuery("k", d16, k=1)],
        )
        assert "o1" in both
        assert "o5" in both
