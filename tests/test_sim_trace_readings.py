"""Tests for the true trace generator and the raw reading generator."""

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.sim import RawReadingGenerator, TrueTraceGenerator


@pytest.fixture
def trace(paper_graph):
    config = DEFAULT_CONFIG.with_overrides(num_objects=20)
    return TrueTraceGenerator(paper_graph, config, rng=3)


class TestTraceGenerator:
    def test_object_count(self, trace):
        assert len(trace.objects) == 20
        assert len(set(o.object_id for o in trace.objects)) == 20
        assert len(set(o.tag_id for o in trace.objects)) == 20

    def test_positions_stay_on_graph(self, trace, paper_graph):
        for _ in range(60):
            trace.step()
            for obj in trace.objects:
                edge = paper_graph.edge(obj.location.edge_id)
                assert -1e-9 <= obj.location.offset <= edge.length + 1e-9

    def test_step_displacement_bounded(self, trace, paper_graph):
        for _ in range(30):
            before = {
                o.object_id: paper_graph.point_of(o.location) for o in trace.objects
            }
            trace.step()
            for obj in trace.objects:
                after = paper_graph.point_of(obj.location)
                # Straight-line displacement <= walked distance <= max speed.
                assert before[obj.object_id].distance_to(after) <= (
                    DEFAULT_CONFIG.max_speed + 1e-6
                )

    def test_objects_visit_rooms_and_dwell(self, paper_graph):
        config = DEFAULT_CONFIG.with_overrides(num_objects=15)
        trace = TrueTraceGenerator(paper_graph, config, rng=5)
        dwelled = set()
        for _ in range(200):
            trace.step()
            for obj in trace.objects:
                if obj.is_dwelling:
                    dwelled.add(obj.object_id)
        assert len(dwelled) >= 10

    def test_dwelling_objects_sit_at_room_nodes(self, trace, paper_graph):
        for _ in range(120):
            trace.step()
            for obj in trace.objects:
                if obj.is_dwelling and obj.destination_room:
                    point = paper_graph.point_of(obj.location)
                    room = paper_graph.floorplan.room(obj.destination_room)
                    assert room.boundary.expanded(1e-6).contains(point)

    def test_speed_distribution(self, paper_graph):
        config = DEFAULT_CONFIG.with_overrides(num_objects=300)
        trace = TrueTraceGenerator(paper_graph, config, rng=8)
        speeds = [o.speed for o in trace.objects]
        assert 0.9 < np.mean(speeds) < 1.1
        assert all(s > 0 for s in speeds)

    def test_tag_mapping(self, trace):
        mapping = trace.tag_to_object()
        for obj in trace.objects:
            assert mapping[obj.tag_id] == obj.object_id

    def test_deterministic(self, paper_graph):
        config = DEFAULT_CONFIG.with_overrides(num_objects=10)
        a = TrueTraceGenerator(paper_graph, config, rng=11)
        b = TrueTraceGenerator(paper_graph, config, rng=11)
        for _ in range(50):
            a.step()
            b.step()
        assert a.locations() == b.locations()

    def test_explicit_num_objects_overrides_config(self, paper_graph):
        trace = TrueTraceGenerator(
            paper_graph, DEFAULT_CONFIG, rng=1, num_objects=3
        )
        assert len(trace.objects) == 3


class TestReadingGenerator:
    def test_only_in_range_tags_read(self, paper_readers, paper_graph):
        generator = RawReadingGenerator(paper_readers, 1.0, 10, rng=0)
        reader = paper_readers[0]
        tag_positions = {
            "near": reader.position,
            "far": paper_graph.floorplan.bounds.center,
        }
        readings = generator.generate(0, tag_positions)
        tags = {r.tag_id for r in readings}
        assert "near" in tags

    def test_reading_times_within_second(self, paper_readers):
        generator = RawReadingGenerator(paper_readers, 1.0, 10, rng=0)
        readings = generator.generate(7, {"t": paper_readers[0].position})
        assert all(7 <= r.time < 8 for r in readings)

    def test_zero_probability_silent(self, paper_readers):
        generator = RawReadingGenerator(paper_readers, 0.0, 10, rng=0)
        assert generator.generate(0, {"t": paper_readers[0].position}) == []
