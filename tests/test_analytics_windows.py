"""Historical window queries, including reads across rotated generations."""

import json

import pytest

from repro.analytics import (
    analytics_epochs,
    dwell_window,
    flow_window,
    occupancy_window,
    window_report,
)
from repro.obs.events import (
    EVENTS_FORMAT,
    EVENTS_VERSION,
    EpochEventWriter,
    generation_paths,
    read_all_events,
)


def _epoch_record(second, occupancy, flows=None, dwells=None):
    return {
        "second": second,
        "tick": second,
        "analytics": {
            "occupancy": occupancy,
            "flows": flows or {},
            "dwells": dwells or [],
            "updates": len(occupancy),
        },
    }


@pytest.fixture()
def rotated_log(tmp_path):
    """A log whose 9 epochs span three generations (two rotations)."""
    path = str(tmp_path / "events.jsonl")
    # Each record is ~120 bytes; rotate every ~3 records.
    writer = EpochEventWriter(path, rotate_bytes=400, keep=5)
    for second in range(1, 10):
        writer.write(
            _epoch_record(
                second,
                occupancy={"R1": float(second), "R2": 9.0 - second},
                flows={"R1->R2": 1} if second % 3 == 0 else None,
                dwells=[["R1", float(second)]] if second % 4 == 0 else None,
            )
        )
    writer.close()
    assert writer.rotations >= 2
    return path


# ----------------------------------------------------------------------
# generation discovery and multi-generation reads
# ----------------------------------------------------------------------
class TestGenerationReads:
    def test_generation_paths_oldest_first(self, rotated_log):
        paths = generation_paths(rotated_log)
        assert paths[-1] == rotated_log
        suffixes = [p.rsplit(".", 1)[-1] for p in paths[:-1]]
        assert suffixes == sorted(suffixes, key=int, reverse=True)

    def test_read_all_events_concatenates_in_time_order(self, rotated_log):
        headers, records = read_all_events(rotated_log)
        assert len(headers) == len(generation_paths(rotated_log))
        for header in headers:
            assert header == {"format": EVENTS_FORMAT, "version": EVENTS_VERSION}
        assert [r["second"] for r in records] == list(range(1, 10))

    def test_missing_generation_is_tolerated(self, rotated_log):
        import os

        victim = generation_paths(rotated_log)[0]
        os.remove(victim)  # rotation drops old generations by design
        _, records = read_all_events(rotated_log)
        seconds = [r["second"] for r in records]
        assert seconds == sorted(seconds)
        assert seconds[-1] == 9
        assert len(seconds) < 9

    def test_bad_generation_header_fails_the_read(self, rotated_log):
        victim = generation_paths(rotated_log)[0]
        lines = open(victim).read().splitlines()
        lines[0] = json.dumps({"format": "not-epoch-events", "version": 1})
        open(victim, "w").write("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            read_all_events(rotated_log)

    def test_no_generations_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_all_events(str(tmp_path / "absent.jsonl"))

    def test_unrotated_log_still_reads(self, tmp_path):
        path = str(tmp_path / "plain.jsonl")
        writer = EpochEventWriter(path)
        writer.write(_epoch_record(1, {"R1": 0.5}))
        writer.close()
        headers, records = read_all_events(path)
        assert len(headers) == 1
        assert [r["second"] for r in records] == [1]


# ----------------------------------------------------------------------
# window semantics over the recorded epochs
# ----------------------------------------------------------------------
class TestWindowQueries:
    def _records(self, rotated_log):
        return read_all_events(rotated_log)[1]

    def test_analytics_epochs_skips_bare_records(self, rotated_log):
        records = self._records(rotated_log) + [{"second": 99, "tick": 99}]
        epochs = analytics_epochs(records)
        assert [second for second, _ in epochs] == list(range(1, 10))

    def test_occupancy_window_is_inclusive_both_ends(self, rotated_log):
        records = self._records(rotated_log)
        stats = occupancy_window(records, "R1", t0=3, t1=7)
        assert stats["samples"] == 5
        assert stats["min"] == 3.0
        assert stats["max"] == 7.0
        assert stats["last"] == 7.0
        assert stats["mean"] == pytest.approx(5.0)

    def test_open_ended_window_sides(self, rotated_log):
        records = self._records(rotated_log)
        assert occupancy_window(records, "R1", t0=8)["samples"] == 2
        assert occupancy_window(records, "R1", t1=2)["samples"] == 2
        assert occupancy_window(records, "R1")["samples"] == 9

    def test_empty_window_reports_none_fields(self, rotated_log):
        records = self._records(rotated_log)
        stats = occupancy_window(records, "R1", t0=50, t1=60)
        assert stats == {
            "region": "R1",
            "samples": 0,
            "mean": None,
            "min": None,
            "max": None,
            "last": None,
        }

    def test_flow_window_sums_deltas(self, rotated_log):
        records = self._records(rotated_log)
        assert flow_window(records) == {"R1->R2": 3}  # seconds 3, 6, 9
        assert flow_window(records, t0=4, t1=9) == {"R1->R2": 2}
        assert flow_window(records, t0=10) == {}

    def test_dwell_window_collects_completions(self, rotated_log):
        records = self._records(rotated_log)
        histograms = dwell_window(records)  # dwells at seconds 4 and 8
        assert set(histograms) == {"R1"}
        assert histograms["R1"].count == 2
        assert histograms["R1"].mean() == pytest.approx(6.0)
        assert dwell_window(records, t0=5)["R1"].count == 1

    def test_window_report_document(self, rotated_log):
        records = self._records(rotated_log)
        report = window_report(records, t0=2, t1=8)
        assert report["epochs"] == 7
        assert report["first_second"] == 2
        assert report["last_second"] == 8
        assert set(report["occupancy"]) == {"R1", "R2"}
        assert report["flows"] == {"R1->R2": 2}
        assert report["dwell"]["R1"]["count"] == 2
        focused = window_report(records, t0=2, t1=8, region="R2")
        assert set(focused["occupancy"]) == {"R2"}
