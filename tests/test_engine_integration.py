"""Integration tests: the full Figure-3 pipeline on both engines."""

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.geometry import Point, Rect
from repro.queries import IndoorQueryEngine, KNNQuery, RangeQuery
from repro.rfid import RFIDReader
from repro.rfid.readings import RawReading
from repro.sim import Simulation
from repro.symbolic import SymbolicQueryEngine

CONFIG = DEFAULT_CONFIG.with_overrides(
    num_objects=15,
    duration_seconds=60,
    warmup_seconds=30,
    num_query_timestamps=3,
    num_range_queries=4,
    num_knn_queries=3,
)


@pytest.fixture(scope="module")
def simulation():
    sim = Simulation(CONFIG)
    sim.run_until(60)
    return sim


class TestPfEngine:
    def test_snapshot_structure(self, simulation):
        engine = simulation.pf_engine
        engine.clear_queries()
        window = simulation.random_window()
        point = simulation.random_query_point()
        engine.register_range_query(RangeQuery("r0", window))
        engine.register_knn_query(KNNQuery("k0", point, 3))
        snapshot = engine.evaluate(60, rng=simulation.pf_rng)
        assert snapshot.second == 60
        assert "r0" in snapshot.range_results
        assert "k0" in snapshot.knn_results
        engine.clear_queries()

    def test_range_probabilities_valid(self, simulation):
        engine = simulation.pf_engine
        result = engine.range_query(Rect(10, 3, 25, 8), 60, rng=simulation.pf_rng)
        for probability in result.probabilities.values():
            assert 0.0 <= probability <= 1.0 + 1e-9

    def test_knn_returns_at_least_k(self, simulation):
        engine = simulation.pf_engine
        result = engine.knn_query(Point(20, 5), 3, 60, rng=simulation.pf_rng)
        # With 15 objects spread around, the expansion should collect >= 3.
        assert result.total_probability >= 3.0 or len(result.objects()) == len(
            engine.collector.observed_objects()
        )

    def test_locations_snapshot_covers_observed(self, simulation):
        engine = simulation.pf_engine
        table = engine.locations_snapshot(60, rng=simulation.pf_rng)
        observed = engine.collector.observed_objects()
        assert set(table.objects()) <= set(observed)
        for object_id in table.objects():
            assert table.total_probability(object_id) == pytest.approx(1.0)

    def test_cache_speeds_up_second_evaluation(self, simulation):
        engine = simulation.pf_engine
        assert engine.cache is not None
        engine.locations_snapshot(60, rng=simulation.pf_rng)
        hits_before = engine.cache.stats.hits
        engine.locations_snapshot(60, rng=simulation.pf_rng)
        assert engine.cache.stats.hits > hits_before

    def test_pruning_reduces_candidates(self, simulation):
        engine = simulation.pf_engine
        engine.clear_queries()
        engine.register_range_query(RangeQuery("tiny", Rect(10, 4, 12, 6)))
        snapshot = engine.evaluate(60, rng=simulation.pf_rng)
        engine.clear_queries()
        assert len(snapshot.candidates) <= len(engine.collector.observed_objects())


class TestSymbolicEngine:
    def test_range_and_knn(self, simulation):
        engine = simulation.sm_engine
        result = engine.range_query(Rect(10, 3, 25, 8), 60)
        for probability in result.probabilities.values():
            assert 0.0 <= probability <= 1.0 + 1e-9
        knn = engine.knn_query(Point(20, 5), 3, 60)
        assert knn.total_probability >= 0.0

    def test_deterministic(self, simulation):
        engine = simulation.sm_engine
        a = engine.range_query(Rect(10, 3, 25, 8), 60)
        b = engine.range_query(Rect(10, 3, 25, 8), 60)
        assert a.probabilities == b.probabilities


class TestEngineStandalone:
    """Engine fed with a hand-built reading stream (no simulator)."""

    def _setup(self):
        from repro.floorplan import small_test_plan

        plan = small_test_plan()
        readers = [
            RFIDReader("d1", Point(3.0, 5.0), 2.0, "H1"),
            RFIDReader("d2", Point(10.0, 5.0), 2.0, "H1"),
            RFIDReader("d3", Point(17.0, 5.0), 2.0, "H1"),
        ]
        engine = IndoorQueryEngine(
            plan, readers, {"tag1": "o1"}, config=DEFAULT_CONFIG
        )
        return engine

    def test_tracked_object_found_near_last_reader(self):
        engine = self._setup()
        # Object walks right: d2 at t=0..1, d3 at t=7..8.
        for second, reader in [(0, "d2"), (1, "d2"), (7, "d3"), (8, "d3")]:
            engine.ingest_second(
                second, [RawReading(second + 0.5, "tag1", reader)]
            )
        result = engine.range_query(Rect(15, 4, 20, 6), 8, rng=np.random.default_rng(0))
        assert result.probabilities.get("o1", 0.0) > 0.5

    def test_unseen_object_absent(self):
        engine = self._setup()
        result = engine.range_query(Rect(0, 0, 20, 10), 5, rng=np.random.default_rng(0))
        assert result.probabilities == {}

    def test_symbolic_engine_same_stream(self):
        from repro.floorplan import small_test_plan

        plan = small_test_plan()
        readers = [
            RFIDReader("d1", Point(3.0, 5.0), 2.0, "H1"),
            RFIDReader("d2", Point(10.0, 5.0), 2.0, "H1"),
            RFIDReader("d3", Point(17.0, 5.0), 2.0, "H1"),
        ]
        engine = SymbolicQueryEngine(plan, readers, {"tag1": "o1"})
        for second, reader in [(0, "d2"), (1, "d2"), (7, "d3"), (8, "d3")]:
            engine.ingest_second(second, [RawReading(second + 0.5, "tag1", reader)])
        result = engine.range_query(Rect(15, 4, 20, 6), 8)
        assert result.probabilities.get("o1", 0.0) > 0.3


class TestStepApi:
    """The per-tick step() APIs must be exact refactorings of the batch
    loops they were extracted from (the service layer is built on them)."""

    def test_sim_step_matches_run_until(self):
        config = DEFAULT_CONFIG.with_overrides(num_objects=6, seed=7)
        batch = Simulation(config, build_symbolic=False)
        stepped = Simulation(config, build_symbolic=False)
        batch.run_until(15)
        for _ in range(15):
            stepped.step()
        assert stepped.now == batch.now == 15
        assert stepped.true_positions() == batch.true_positions()
        assert [
            (r.time, r.tag_id, r.reader_id) for r in stepped.last_readings
        ] == [(r.time, r.tag_id, r.reader_id) for r in batch.last_readings]

    def test_sim_step_returns_the_tick_readings(self):
        config = DEFAULT_CONFIG.with_overrides(num_objects=6, seed=7)
        sim = Simulation(config, build_symbolic=False)
        readings = sim.step()
        assert readings == sim.last_readings
        assert all(int(r.time) == sim.now for r in readings)

    def test_engine_step_equals_ingest_plus_evaluate(self):
        config = DEFAULT_CONFIG.with_overrides(num_objects=6, seed=7)
        driver = Simulation(config, build_symbolic=False)
        per_second = []
        for _ in range(10):
            per_second.append(driver.step())

        composed = Simulation(config, build_symbolic=False).pf_engine
        stepped = Simulation(config, build_symbolic=False).pf_engine
        window = Rect(4, 0, 30, 12)
        composed.register_range_query(RangeQuery("w", window))
        stepped.register_range_query(RangeQuery("w", window))
        for second, readings in enumerate(per_second, start=1):
            composed.ingest_second(second, readings)
            snap_a = composed.evaluate(second, np.random.default_rng(second))
            snap_b = stepped.step(second, readings, np.random.default_rng(second))
            assert snap_a.second == snap_b.second
            assert (
                snap_a.range_results["w"].probabilities
                == snap_b.range_results["w"].probabilities
            )
