"""Tests for the particle set, compiled graph, and graph motion model."""

import numpy as np
import pytest

from repro.core import CompiledAnchors, CompiledGraph, GraphMotionModel, ParticleSet
from repro.geometry import Circle, Point


@pytest.fixture(scope="module")
def small_compiled(small_graph):
    return CompiledGraph(small_graph)


@pytest.fixture(scope="module")
def paper_compiled(paper_graph):
    return CompiledGraph(paper_graph)


class TestParticleSet:
    def test_empty_allocation(self):
        ps = ParticleSet.empty(8)
        assert len(ps) == 8
        assert ps.weight.sum() == pytest.approx(1.0)

    def test_field_length_mismatch_rejected(self):
        ps = ParticleSet.empty(4)
        with pytest.raises(ValueError):
            ParticleSet(
                edge=ps.edge,
                offset=ps.offset[:2],
                direction=ps.direction,
                speed=ps.speed,
                dwelling=ps.dwelling,
                weight=ps.weight,
            )

    def test_copy_is_deep(self):
        ps = ParticleSet.empty(4)
        clone = ps.copy()
        clone.offset[0] = 99.0
        assert ps.offset[0] == 0.0

    def test_select_uniform_weights(self):
        ps = ParticleSet.empty(4)
        ps.offset[:] = [0.0, 1.0, 2.0, 3.0]
        picked = ps.select(np.array([3, 3, 1, 0]))
        assert list(picked.offset) == [3.0, 3.0, 1.0, 0.0]
        assert np.allclose(picked.weight, 0.25)

    def test_normalize_weights(self):
        ps = ParticleSet.empty(4)
        ps.weight[:] = [1.0, 1.0, 2.0, 0.0]
        ps.normalize_weights()
        assert ps.weight.sum() == pytest.approx(1.0)
        assert ps.weight[2] == pytest.approx(0.5)

    def test_normalize_zero_weights_falls_back_to_uniform(self):
        ps = ParticleSet.empty(4)
        ps.weight[:] = 0.0
        ps.normalize_weights()
        assert np.allclose(ps.weight, 0.25)


class TestCompiledGraph:
    def test_rejects_sparse_edge_ids(self, small_graph):
        # CompiledGraph assumes dense ids; the builder provides them.
        compiled = CompiledGraph(small_graph)
        assert compiled.num_edges == len(small_graph.edges)

    def test_points_match_edge_point_at(self, paper_compiled, paper_graph):
        rng = np.random.default_rng(0)
        edges = rng.integers(0, paper_compiled.num_edges, size=200)
        offsets = rng.random(200) * paper_compiled.edge_length[edges]
        xs, ys = paper_compiled.points(edges, offsets)
        for e, off, x, y in zip(edges, offsets, xs, ys):
            expected = paper_graph.edge(int(e)).point_at(float(off))
            assert expected.is_close(Point(float(x), float(y)), tol=1e-6)

    def test_points_on_door_edges_cross_legs(self, paper_compiled, paper_graph):
        door = paper_graph.door_edge("R20")
        offsets = np.linspace(0, door.length, 15)
        edges = np.full(15, door.edge_id, dtype=np.int64)
        xs, ys = paper_compiled.points(edges, offsets)
        for off, x, y in zip(offsets, xs, ys):
            expected = door.point_at(float(off))
            assert expected.is_close(Point(float(x), float(y)), tol=1e-6)

    def test_node_indexing(self, paper_compiled, paper_graph):
        for node in paper_graph.nodes[:10]:
            idx = paper_compiled.node_index[node.node_id]
            assert paper_compiled.node_x[idx] == pytest.approx(node.point.x)
            assert paper_compiled.node_is_room[idx] == node.is_room


class TestCompiledAnchors:
    def test_nearest_matches_index(self, paper_compiled, paper_anchors):
        compiled = CompiledAnchors(paper_anchors)
        rng = np.random.default_rng(1)
        xs = rng.uniform(0, 60, 50)
        ys = rng.uniform(0, 30, 50)
        fast = compiled.nearest(xs, ys)
        for x, y, ap_id in zip(xs, ys, fast):
            expected = paper_anchors.nearest(Point(x, y))
            got = paper_anchors.anchor(int(ap_id))
            assert got.point.distance_to(Point(x, y)) == pytest.approx(
                expected.point.distance_to(Point(x, y)), abs=1e-9
            )


class TestMotionModel:
    def _model(self, compiled, **kwargs):
        return GraphMotionModel(compiled, **kwargs)

    def test_initialize_within_circle(self, small_compiled, rng):
        model = self._model(small_compiled)
        circle = Circle(Point(10, 5), 2.0)
        ps = model.initialize_in_circle(64, circle, rng)
        xs, ys = small_compiled.points(ps.edge, ps.offset)
        for x, y in zip(xs, ys):
            assert circle.contains(Point(x, y)) or circle.center.distance_to(
                Point(x, y)
            ) <= circle.radius + 0.2  # jitter slack

    def test_initialize_off_graph_collapses_to_nearest(self, small_compiled, rng):
        model = self._model(small_compiled)
        circle = Circle(Point(100, 100), 0.5)
        ps = model.initialize_in_circle(16, circle, rng)
        assert len(np.unique(ps.edge)) == 1

    def test_speeds_positive_and_near_mean(self, small_compiled, rng):
        model = self._model(small_compiled)
        speeds = model.draw_speeds(2000, rng)
        assert (speeds > 0).all()
        assert abs(speeds.mean() - 1.0) < 0.02
        assert abs(speeds.std() - 0.1) < 0.02

    def test_step_keeps_particles_on_graph(self, paper_compiled, rng):
        model = self._model(paper_compiled)
        circle = Circle(Point(20, 5), 2.0)
        ps = model.initialize_in_circle(128, circle, rng)
        for _ in range(30):
            model.step(ps, rng)
            lengths = paper_compiled.edge_length[ps.edge]
            assert (ps.offset >= -1e-9).all()
            assert (ps.offset <= lengths + 1e-9).all()
            assert np.isin(ps.direction, [-1, 1]).all()

    def test_step_distance_bounded_by_speed(self, small_compiled, rng):
        model = self._model(small_compiled, room_exit_probability=0.0)
        circle = Circle(Point(10, 5), 2.0)
        ps = model.initialize_in_circle(64, circle, rng)
        x0, y0 = small_compiled.points(ps.edge, ps.offset)
        model.step(ps, rng, dt=1.0)
        x1, y1 = small_compiled.points(ps.edge, ps.offset)
        moved = np.hypot(x1 - x0, y1 - y0)
        # Straight-line displacement can never exceed the walked distance.
        assert (moved <= ps.speed + 1e-6).all()

    def test_particles_eventually_enter_and_dwell_in_rooms(self, small_compiled, rng):
        model = self._model(small_compiled, door_entry_probability=0.5)
        circle = Circle(Point(10, 5), 2.0)
        ps = model.initialize_in_circle(64, circle, rng)
        for _ in range(40):
            model.step(ps, rng)
        assert ps.dwelling.any()

    def test_no_door_entry_means_no_dwelling(self, small_compiled, rng):
        model = self._model(small_compiled, door_entry_probability=0.0)
        circle = Circle(Point(10, 5), 2.0)
        ps = model.initialize_in_circle(64, circle, rng)
        for _ in range(40):
            model.step(ps, rng)
        assert not ps.dwelling.any()

    def test_room_exit_zero_traps_dwellers(self, small_compiled, rng):
        model = self._model(
            small_compiled, door_entry_probability=1.0, room_exit_probability=0.0
        )
        circle = Circle(Point(10, 5), 2.0)
        ps = model.initialize_in_circle(64, circle, rng)
        for _ in range(60):
            model.step(ps, rng)
        assert ps.dwelling.all()

    def test_room_exit_one_releases_quickly(self, small_compiled, rng):
        model = self._model(
            small_compiled, door_entry_probability=0.0, room_exit_probability=1.0
        )
        circle = Circle(Point(10, 5), 2.0)
        ps = model.initialize_in_circle(32, circle, rng)
        ps.dwelling[:] = True
        # Park everyone on a door edge at its room end.
        door = small_compiled.graph.door_edge("R1")
        ps.edge[:] = door.edge_id
        ps.offset[:] = door.length
        model.step(ps, rng)
        assert not ps.dwelling.any()

    def test_dead_end_reverses(self, small_compiled, rng):
        # Small plan's hallway endpoints are dead ends (degree 1).
        model = self._model(small_compiled, door_entry_probability=0.0)
        ps = ParticleSet.empty(1)
        # Hallway edge touching x=0 endpoint; send the particle left.
        graph = small_compiled.graph
        loc, _ = graph.locate(Point(0.5, 5))
        ps.edge[:] = loc.edge_id
        ps.offset[:] = loc.offset
        edge = graph.edge(loc.edge_id)
        left_is_a = edge.path.start.x < edge.path.end.x
        ps.direction[:] = -1 if left_is_a else 1
        ps.speed[:] = 1.0
        model.step(ps, rng)
        x, _ = small_compiled.points(ps.edge, ps.offset)
        assert x[0] >= 0.0
        # After bouncing, the particle heads back into the hallway.
        model.step(ps, rng)
        x2, _ = small_compiled.points(ps.edge, ps.offset)
        assert x2[0] > x[0] - 1e-9

    def test_rejects_bad_parameters(self, small_compiled):
        with pytest.raises(ValueError):
            GraphMotionModel(small_compiled, speed_mean=0.0)
        with pytest.raises(ValueError):
            GraphMotionModel(small_compiled, room_exit_probability=1.5)
        with pytest.raises(ValueError):
            GraphMotionModel(small_compiled, door_entry_probability=-0.1)
