"""Telemetry must never change what the service computes.

The operational layer added around the epoch loop — labeled metrics, the
/metrics scrape thread, and the per-epoch event log — is strictly
observational: none of it reads an RNG stream or reorders work. These
tests replay the same recorded log with telemetry off and with all of it
on, and require bit-identical tracking tables and query answers.
"""

import pytest

from repro import obs
from repro.config import DEFAULT_CONFIG
from repro.geometry import Point, Rect
from repro.obs.events import EpochEventRecorder, EpochEventWriter, read_events
from repro.obs.expo import MetricsServer
from repro.service import (
    BoundedQueue,
    EpochScheduler,
    ReplaySource,
    SourceFeeder,
    TrackingService,
)
from repro.service.scheduler import ManualClock
from repro.sim import Simulation

SEED = 23
SECONDS = 8


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
    obs.set_clock(__import__("time").perf_counter)


def _recorded_log():
    config = DEFAULT_CONFIG.with_overrides(
        num_objects=6, seed=SEED, observability=False
    )
    sim = Simulation(config, build_symbolic=False)
    readings = []
    for _ in range(SECONDS):
        readings.extend(sim.step())
    return config, readings


def _replay(config, readings, telemetry, tmp_path=None):
    """Run the full scheduler loop; returns (table rows, query answers)."""
    writer = None
    server = None
    if telemetry:
        obs.enable()
        writer = EpochEventWriter(str(tmp_path / "epochs.jsonl"))
    service = TrackingService(
        config, num_shards=2, mode="thread", seed=SEED
    )
    queue = BoundedQueue(maxsize=4)
    feeder = SourceFeeder(ReplaySource(readings), queue)
    scheduler = EpochScheduler(
        service,
        queue,
        clock=ManualClock(),
        event_recorder=(
            EpochEventRecorder(writer, obs.registry()) if writer else None
        ),
    )
    if telemetry:
        server = MetricsServer(
            snapshot_provider=obs.snapshot,
            health_provider=scheduler.health,
            ready_provider=scheduler.ready,
        )
        server.start()
    feeder.start()
    try:
        scheduler.run()
        table = service.snapshot().table
        rows = {
            obj: sorted(table.distribution_of(obj).items())
            for obj in table.objects()
        }
        range_answer = sorted(
            service.query_range(Rect(0, 0, 20, 12)).probabilities.items()
        )
        knn_answer = sorted(
            service.query_knn(Point(18, 6), 3).probabilities.items()
        )
    finally:
        queue.close()
        feeder.join(timeout=10.0)
        service.close()
        if server is not None:
            server.stop()
        if writer is not None:
            writer.close()
        if telemetry:
            obs.disable()
    return rows, range_answer, knn_answer


def test_event_log_and_metrics_server_leave_results_bit_identical(tmp_path):
    config, readings = _recorded_log()
    plain = _replay(config, readings, telemetry=False)
    telemetered = _replay(config, readings, telemetry=True, tmp_path=tmp_path)
    assert plain == telemetered

    # ... and the telemetry actually ran: one record per tick, with the
    # phase/accuracy payload populated.
    _, records = read_events(str(tmp_path / "epochs.jsonl"))
    assert len(records) == SECONDS
    assert any(r["accuracy"]["ess_mean"] is not None for r in records)
    assert all(r["phases"] for r in records)


def test_serial_and_thread_snapshots_are_identical(tmp_path):
    """Labeled instruments aggregate identically under the thread pool.

    Runs the same replay in serial and thread shard mode and compares the
    metrics snapshots themselves — every labeled counter series (per
    shard, per backend) must land on identical values, because shard
    assignment is a stable hash and labels never depend on scheduling.
    """
    config, readings = _recorded_log()

    def labeled_counters(mode):
        obs.enable()
        try:
            service = TrackingService(
                config, num_shards=2, mode=mode, seed=SEED
            )
            try:
                for batch in ReplaySource(readings).batches():
                    service.process_batch(batch)
            finally:
                service.close()
            snap = obs.registry().snapshot()
            return {
                (c["name"], tuple(sorted((c.get("labels") or {}).items()))):
                    c["value"]
                for c in snap["counters"]
            }
        finally:
            obs.disable()
            obs.reset()

    serial = labeled_counters("serial")
    threaded = labeled_counters("thread")
    assert serial == threaded
    shard_series = [
        key for key in serial if key[0] == "service.shard_objects_filtered"
    ]
    assert len(shard_series) == 2, "expected one labeled series per shard"
