"""The benchmark suite and its regression gate (repro.bench)."""

import copy
import json

import pytest

from repro import obs
from repro.bench import (
    RESULT_FORMAT,
    RESULT_VERSION,
    compare_results,
    default_result_name,
    load_result,
    render_report,
    run_suite,
    write_result,
)
from repro.bench.compare import (
    EXIT_INCOMPARABLE,
    EXIT_OK,
    EXIT_REGRESSION,
    BenchFormatError,
)
from repro.bench.suite import calibration_kernel_seconds


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _fake_result(**overrides):
    base = {
        "format": RESULT_FORMAT,
        "version": RESULT_VERSION,
        "profile": "smoke",
        "seed": 7,
        "calibration_seconds": 0.2,
        "workloads": {
            "filter_replay": {
                "name": "filter_replay",
                "wall_seconds": 1.0,
                "work": {"filter.runs": 100, "answers": 19},
                "digest": "sha256:aaa",
            },
            "query_eval": {
                "name": "query_eval",
                "wall_seconds": 0.5,
                "work": {"matched": 42},
                "digest": "sha256:bbb",
            },
        },
    }
    base.update(overrides)
    return base


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------
class TestCompare:
    def test_identical_results_pass(self):
        report = compare_results(_fake_result(), _fake_result())
        assert report.passed
        assert report.exit_code == EXIT_OK
        assert all(r.work_ok and r.timing_ok for r in report.rows)

    def test_slowdown_beyond_tolerance_fails(self):
        slow = _fake_result()
        slow["workloads"]["filter_replay"]["wall_seconds"] = 2.0
        report = compare_results(_fake_result(), slow, tolerance=1.5)
        assert report.exit_code == EXIT_REGRESSION
        assert any("slowdown" in p for p in report.problems)

    def test_slowdown_within_tolerance_passes(self):
        slow = _fake_result()
        slow["workloads"]["filter_replay"]["wall_seconds"] = 1.4
        assert compare_results(_fake_result(), slow, tolerance=1.5).passed

    def test_calibration_normalizes_machine_speed(self):
        # Candidate is 2x slower on the wall clock, but its calibration
        # kernel is also 2x slower: same code on a slower machine. Pass.
        slow_machine = _fake_result(calibration_seconds=0.4)
        for workload in slow_machine["workloads"].values():
            workload["wall_seconds"] *= 2.0
        report = compare_results(_fake_result(), slow_machine, tolerance=1.1)
        assert report.passed

    def test_work_counter_drift_fails_even_when_fast(self):
        drifted = _fake_result()
        drifted["workloads"]["query_eval"]["work"]["matched"] = 43
        drifted["workloads"]["query_eval"]["wall_seconds"] = 0.1
        report = compare_results(_fake_result(), drifted)
        assert report.exit_code == EXIT_REGRESSION
        assert any("work profile changed" in p for p in report.problems)

    def test_missing_work_counter_fails(self):
        drifted = _fake_result()
        del drifted["workloads"]["filter_replay"]["work"]["answers"]
        assert not compare_results(_fake_result(), drifted).passed

    def test_digest_informational_by_default(self):
        changed = _fake_result()
        changed["workloads"]["query_eval"]["digest"] = "sha256:zzz"
        assert compare_results(_fake_result(), changed).passed
        strict = compare_results(_fake_result(), changed, strict_digest=True)
        assert strict.exit_code == EXIT_REGRESSION

    def test_profile_mismatch_is_incomparable(self):
        other = _fake_result(profile="full")
        report = compare_results(_fake_result(), other)
        assert report.incomparable
        assert report.exit_code == EXIT_INCOMPARABLE

    def test_workload_set_mismatch_is_incomparable(self):
        other = _fake_result()
        del other["workloads"]["query_eval"]
        assert compare_results(_fake_result(), other).exit_code == EXIT_INCOMPARABLE

    def test_render_report_mentions_each_workload(self):
        report = compare_results(_fake_result(), _fake_result())
        text = render_report(report)
        assert "filter_replay" in text and "query_eval" in text
        assert "PASS" in text


# ----------------------------------------------------------------------
# result files
# ----------------------------------------------------------------------
class TestResultFiles:
    def test_write_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "bench.json")
        write_result(_fake_result(), path)
        assert load_result(path)["workloads"]["query_eval"]["work"] == {
            "matched": 42
        }

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(BenchFormatError):
            load_result(str(path))

    def test_load_rejects_newer_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps(_fake_result(version=RESULT_VERSION + 1))
        )
        with pytest.raises(BenchFormatError):
            load_result(str(path))

    def test_default_result_name_is_dated(self):
        import datetime

        name = default_result_name(datetime.date(2026, 8, 6))
        assert name == "BENCH_2026-08-06.json"


# ----------------------------------------------------------------------
# the suite itself (kept tiny: structure + determinism of work profiles)
# ----------------------------------------------------------------------
class TestSuite:
    def test_calibration_kernel_is_positive(self):
        assert calibration_kernel_seconds(repeats=1) > 0.0

    def test_smoke_suite_structure_and_determinism(self):
        first = run_suite(profile="smoke", seed=7)
        second = run_suite(profile="smoke", seed=7)
        assert first["format"] == RESULT_FORMAT
        assert set(first["workloads"]) == {
            "filter_replay", "service_replay", "query_eval",
            "profiler_overhead", "analytics_replay", "gateway_throughput",
        }
        for name, workload in first["workloads"].items():
            assert workload["wall_seconds"] > 0.0
            assert workload["work"], f"{name} recorded no work counters"
            assert all(
                isinstance(v, int) for v in workload["work"].values()
            ), f"{name} has non-integer work counters"
        # Same code + same seed must do identical work: this is what lets
        # the CI gate compare counters exactly across machines.
        for name in first["workloads"]:
            assert (
                first["workloads"][name]["work"]
                == second["workloads"][name]["work"]
            ), f"{name} work profile is nondeterministic"
            assert (
                first["workloads"][name]["digest"]
                == second["workloads"][name]["digest"]
            ), f"{name} digest is nondeterministic"

    def test_suite_restores_observability_session(self):
        obs.enable()
        run_suite(profile="smoke", seed=7)
        assert obs.enabled()

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            run_suite(profile="huge")


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestBenchCli:
    def test_run_then_compare_passes(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "bench.json")
        assert main(["bench", "run", "--smoke", "--out", out]) == 0
        assert (
            main(["bench", "compare", out, "--baseline", out]) == 0
        )
        assert "verdict: PASS" in capsys.readouterr().out

    def test_compare_fails_on_injected_slowdown(self, tmp_path, capsys):
        from repro.cli import main

        baseline = _fake_result()
        slow = copy.deepcopy(baseline)
        slow["workloads"]["filter_replay"]["wall_seconds"] = 10.0
        base_path = str(tmp_path / "base.json")
        slow_path = str(tmp_path / "slow.json")
        write_result(baseline, base_path)
        write_result(slow, slow_path)
        assert (
            main(["bench", "compare", slow_path, "--baseline", base_path])
            == EXIT_REGRESSION
        )
        assert "verdict: FAIL" in capsys.readouterr().out

    def test_compare_bad_file_exits_incomparable(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        good = str(tmp_path / "good.json")
        write_result(_fake_result(), good)
        code = main(["bench", "compare", str(bad), "--baseline", good])
        assert code == EXIT_INCOMPARABLE
