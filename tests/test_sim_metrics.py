"""Tests for ground truth evaluation and accuracy metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, Rect
from repro.sim import (
    kl_divergence,
    knn_hit_rate,
    range_query_kl,
    top_k_success,
    true_knn_result,
    true_range_result,
)
from repro.sim.ground_truth import true_nearest_distances
from repro.sim.metrics import mean_of


class TestGroundTruthRange:
    def test_inside_outside(self):
        positions = {"a": Point(1, 1), "b": Point(5, 5)}
        assert true_range_result(Rect(0, 0, 2, 2), positions) == {"a"}

    def test_boundary_counts(self):
        assert true_range_result(Rect(0, 0, 2, 2), {"a": Point(2, 2)}) == {"a"}

    def test_empty(self):
        assert true_range_result(Rect(0, 0, 1, 1), {}) == set()


class TestGroundTruthKnn:
    def test_orders_by_network_distance(self, small_graph):
        locations = {
            "near": small_graph.locate(Point(11, 5))[0],
            "far": small_graph.locate(Point(19, 5))[0],
            "room": small_graph.locate(Point(5, 2))[0],
        }
        result = true_knn_result(Point(10, 5), locations, small_graph, 2)
        assert result[0] == "near"
        assert len(result) == 2

    def test_k_larger_than_population(self, small_graph):
        locations = {"only": small_graph.locate(Point(11, 5))[0]}
        assert true_knn_result(Point(10, 5), locations, small_graph, 5) == ["only"]

    def test_rejects_bad_k(self, small_graph):
        with pytest.raises(ValueError):
            true_knn_result(Point(10, 5), {}, small_graph, 0)

    def test_tie_break_by_id(self, small_graph):
        loc = small_graph.locate(Point(12, 5))[0]
        result = true_knn_result(Point(10, 5), {"b": loc, "a": loc}, small_graph, 1)
        assert result == ["a"]

    def test_nearest_distances(self, small_graph):
        locations = {"a": small_graph.locate(Point(12, 5))[0]}
        distances = true_nearest_distances(Point(10, 5), locations, small_graph)
        assert distances["a"] == pytest.approx(2.0)


class TestKlDivergence:
    def test_identical_distributions(self):
        p = {"a": 0.5, "b": 0.5}
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_known_value(self):
        p = {"a": 1.0}
        q = {"a": 0.5, "b": 0.5}
        assert kl_divergence(p, q) == pytest.approx(math.log(2))

    def test_rejects_empty_p(self):
        with pytest.raises(ValueError):
            kl_divergence({}, {"a": 1.0})

    def test_normalizes_inputs(self):
        p = {"a": 2.0, "b": 2.0}
        q = {"a": 5.0, "b": 5.0}
        assert kl_divergence(p, q) == pytest.approx(0.0)

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.floats(min_value=0.01, max_value=1.0),
            min_size=1,
        )
    )
    def test_non_negative(self, dist):
        q = {k: 1.0 for k in "abcd"}
        assert kl_divergence(dist, q) >= -1e-9


class TestRangeQueryKl:
    def test_perfect_result_scores_zero_ish(self):
        truth = {"a"}
        result = {"a": 1.0}
        kl = range_query_kl(truth, result, ["a", "b", "c"], epsilon=0.01)
        assert kl == pytest.approx(len("bc") * math.log(1 / 0.99) + math.log(1 / 0.99), abs=0.05)
        assert kl < 0.05

    def test_total_miss_is_costly(self):
        kl_miss = range_query_kl({"a"}, {}, ["a", "b"], epsilon=0.01)
        kl_good = range_query_kl({"a"}, {"a": 0.9}, ["a", "b"], epsilon=0.01)
        assert kl_miss > kl_good
        assert kl_miss == pytest.approx(math.log(100) + math.log(1 / 0.99), abs=0.05)

    def test_diluted_true_probability_penalized(self):
        # The symbolic model's failure mode: the same total mass spread
        # thinly means the true object's own probability is low.
        sharp = range_query_kl({"a"}, {"a": 0.9}, ["a", "b", "c"], epsilon=0.01)
        diluted = range_query_kl({"a"}, {"a": 0.2}, ["a", "b", "c"], epsilon=0.01)
        assert diluted > sharp

    def test_monotone_in_true_probability(self):
        values = [
            range_query_kl({"a"}, {"a": q}, ["a"], epsilon=0.01)
            for q in (0.05, 0.2, 0.5, 0.9, 1.0)
        ]
        assert values == sorted(values, reverse=True)
        assert values[-1] == pytest.approx(0.0)

    def test_empty_truth_returns_none(self):
        assert range_query_kl(set(), {"a": 1.0}, ["a"]) is None

    def test_normalized_by_truth_size(self):
        one = range_query_kl({"a"}, {"a": 0.5}, ["a"], epsilon=0.01)
        two = range_query_kl(
            {"a", "b"}, {"a": 0.5, "b": 0.5}, ["a", "b"], epsilon=0.01
        )
        assert one == pytest.approx(two, rel=0.01)


class TestHitRate:
    def test_full_hit(self):
        assert knn_hit_rate(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_partial(self):
        assert knn_hit_rate(["a", "x", "y"], ["a", "b"]) == 0.5

    def test_superset_counts(self):
        assert knn_hit_rate(["a", "b", "c", "d"], ["a", "b"]) == 1.0

    def test_rejects_empty_truth(self):
        with pytest.raises(ValueError):
            knn_hit_rate(["a"], [])


class TestTopKSuccess:
    def test_success_at_top1(self, paper_anchors):
        anchor = paper_anchors.anchors[50]
        dist = {anchor.ap_id: 0.8, paper_anchors.anchors[0].ap_id: 0.2}
        assert top_k_success(dist, anchor.point, paper_anchors, 1)

    def test_failure_when_far(self, paper_anchors):
        anchor = paper_anchors.anchors[50]
        dist = {anchor.ap_id: 1.0}
        far = anchor.point.translated(20, 0)
        assert not top_k_success(dist, far, paper_anchors, 1, tolerance=2.0)

    def test_top2_catches_second_mode(self, paper_anchors):
        first = paper_anchors.anchors[10]
        second = paper_anchors.anchors[120]
        dist = {first.ap_id: 0.6, second.ap_id: 0.4}
        assert not top_k_success(dist, second.point, paper_anchors, 1)
        assert top_k_success(dist, second.point, paper_anchors, 2)

    def test_empty_distribution(self, paper_anchors):
        assert not top_k_success({}, Point(0, 0), paper_anchors, 1)

    def test_rejects_bad_k(self, paper_anchors):
        with pytest.raises(ValueError):
            top_k_success({1: 1.0}, Point(0, 0), paper_anchors, 0)

    def test_tolerance_parameter(self, paper_anchors):
        anchor = paper_anchors.anchors[50]
        dist = {anchor.ap_id: 1.0}
        near = anchor.point.translated(2.5, 0)
        assert not top_k_success(dist, near, paper_anchors, 1, tolerance=2.0)
        assert top_k_success(dist, near, paper_anchors, 1, tolerance=3.0)


class TestMeanOf:
    def test_skips_none(self):
        assert mean_of([1.0, None, 3.0]) == 2.0

    def test_all_none(self):
        assert mean_of([None, None]) is None
        assert mean_of([]) is None
