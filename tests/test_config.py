"""Tests for the simulation configuration."""

import pytest

from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.rng import child_rng, child_seed, make_rng


class TestConfig:
    def test_paper_table2_defaults(self):
        assert DEFAULT_CONFIG.num_particles == 64
        assert DEFAULT_CONFIG.query_window_ratio == 0.02
        assert DEFAULT_CONFIG.num_objects == 200
        assert DEFAULT_CONFIG.k == 3
        assert DEFAULT_CONFIG.activation_range == 2.0
        assert DEFAULT_CONFIG.num_readers == 19

    def test_paper_motion_defaults(self):
        assert DEFAULT_CONFIG.speed_mean == 1.0
        assert DEFAULT_CONFIG.speed_std == 0.1
        assert DEFAULT_CONFIG.room_exit_probability == 0.1
        assert DEFAULT_CONFIG.anchor_spacing == 1.0
        assert DEFAULT_CONFIG.silence_cap_seconds == 60.0

    def test_with_overrides(self):
        config = DEFAULT_CONFIG.with_overrides(k=5, num_particles=128)
        assert config.k == 5
        assert config.num_particles == 128
        assert config.num_objects == DEFAULT_CONFIG.num_objects
        # Original untouched (frozen dataclass).
        assert DEFAULT_CONFIG.k == 3

    def test_to_dict_roundtrip(self):
        data = DEFAULT_CONFIG.to_dict()
        clone = SimulationConfig(**data)
        assert clone == DEFAULT_CONFIG

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_particles", 0),
            ("query_window_ratio", 0.0),
            ("query_window_ratio", 1.5),
            ("num_objects", 0),
            ("k", 0),
            ("activation_range", -1.0),
            ("speed_std", -0.1),
            ("detection_probability", 1.2),
            ("room_exit_probability", -0.2),
            ("door_entry_probability", 2.0),
            ("anchor_spacing", 0.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_overrides(**{field: value})

    def test_weight_ordering_enforced(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_overrides(weight_hit=0.01, weight_miss=0.9)


class TestRngHelpers:
    def test_make_rng_accepts_generator(self):
        gen = make_rng(5)
        assert make_rng(gen) is gen

    def test_child_seed_deterministic(self):
        assert child_seed(7, "trace") == child_seed(7, "trace")
        assert child_seed(7, "trace") != child_seed(7, "readings")
        assert child_seed(7, "trace") != child_seed(8, "trace")

    def test_child_rng_streams_independent(self):
        a = child_rng(7, "a").random(5)
        b = child_rng(7, "b").random(5)
        assert not (a == b).all()
