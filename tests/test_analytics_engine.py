"""The analytics engine: incremental aggregates vs full recompute.

Covers the region fold, the streaming structures, the engine's
incremental-vs-naive equivalence over a real replay, bit-exact
checkpoint resume through the service envelope, and the density shim
that now serves room densities from maintained mass.
"""

import json

import pytest

from repro.analytics import (
    HALLWAYS,
    RECOMPUTE_TOLERANCE,
    AnalyticsEngine,
    LazyTopK,
    NaiveAnalytics,
    RegionMap,
    StreamingHistogram,
    flow_key,
)
from repro.config import DEFAULT_CONFIG
from repro.service import ReplaySource, TrackingService
from repro.sim import Simulation

FAST = DEFAULT_CONFIG.with_overrides(num_objects=6, seed=11)


@pytest.fixture(scope="module")
def replay_readings():
    sim = Simulation(FAST, build_symbolic=False)
    readings = []
    for _ in range(14):
        readings.extend(sim.step())
    return readings


@pytest.fixture(scope="module")
def replayed(replay_readings):
    """One analytics-enabled service run plus every published snapshot."""
    service = TrackingService(FAST, seed=FAST.seed)
    engine = service.enable_analytics()
    snapshots = []
    try:
        for batch in ReplaySource(replay_readings).batches():
            service.process_batch(batch)
            snapshots.append(service.snapshot())
    finally:
        service.close()
    return service, engine, snapshots


# ----------------------------------------------------------------------
# region fold
# ----------------------------------------------------------------------
class TestRegionMap:
    def test_fold_conserves_mass(self, replayed):
        service, engine, snapshots = replayed
        table = snapshots[-1].table
        region_map = engine.region_map
        for object_id in table.objects():
            distribution = table.distribution_of(object_id)
            mass = region_map.fold(distribution)
            assert sum(mass.values()) == pytest.approx(
                sum(distribution.values())
            )
            assert all(value > 0.0 for value in mass.values())
            assert list(mass) == sorted(mass)

    def test_regions_are_rooms_plus_hallways(self, replayed):
        _, engine, _ = replayed
        regions = engine.region_map.regions
        assert regions[-1] == HALLWAYS
        assert len(set(regions)) == len(regions)
        assert engine.region_map.room_ids() == list(regions[:-1])

    def test_modal_region_breaks_ties_lexicographically(self):
        assert RegionMap.modal_region({"R2": 0.4, "R1": 0.4, "R3": 0.2}) == "R1"
        assert RegionMap.modal_region({}) is None

    def test_flow_key_shape(self):
        assert flow_key("R1", HALLWAYS) == "R1->__hallways__"


# ----------------------------------------------------------------------
# streaming structures
# ----------------------------------------------------------------------
class TestStreamingHistogram:
    def test_bucketing_and_mean(self):
        histogram = StreamingHistogram(edges=(5.0, 10.0))
        for value in (1.0, 4.9, 5.0, 9.0, 100.0):
            histogram.add(value)
        assert histogram.counts == [2, 2, 1]
        assert histogram.count == 5
        assert histogram.mean() == pytest.approx(119.9 / 5)

    def test_distance_empty_rules(self):
        a = StreamingHistogram(edges=(5.0,))
        b = StreamingHistogram(edges=(5.0,))
        assert a.distance(b) == 0.0
        b.add(1.0)
        assert a.distance(b) == 1.0
        a.add(100.0)
        assert a.distance(b) == 1.0  # disjoint buckets
        a.add(1.0)
        assert 0.0 < a.distance(b) < 1.0

    def test_state_round_trip(self):
        histogram = StreamingHistogram(edges=(2.0, 4.0))
        for value in (1.0, 3.0, 9.0):
            histogram.add(value)
        restored = StreamingHistogram.from_state(
            json.loads(json.dumps(histogram.state_dict()))
        )
        assert restored.state_dict() == histogram.state_dict()

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            StreamingHistogram(edges=(5.0, 5.0))


class TestLazyTopK:
    def test_updates_supersede_and_ties_break_by_key(self):
        topk = LazyTopK()
        topk.update("b", 3.0)
        topk.update("a", 3.0)
        topk.update("c", 9.0)
        topk.update("c", 1.0)  # supersedes the 9.0 entry
        assert topk.top(2) == [("a", 3.0), ("b", 3.0)]
        assert topk.top(10) == [("a", 3.0), ("b", 3.0), ("c", 1.0)]
        assert topk.score_of("c") == 1.0

    def test_top_is_repeatable_after_compaction(self):
        topk = LazyTopK()
        for i in range(20):
            topk.update(f"k{i:02d}", float(i % 5))
        first = topk.top(4)
        assert topk.top(4) == first

    def test_state_round_trip(self):
        topk = LazyTopK()
        topk.update("x", 2.0)
        topk.update("y", 7.0)
        topk.update("x", 4.0)
        restored = LazyTopK.from_state(
            json.loads(json.dumps(topk.state_dict()))
        )
        assert restored.top(5) == topk.top(5)


# ----------------------------------------------------------------------
# incremental vs recompute equivalence
# ----------------------------------------------------------------------
class TestEquivalence:
    def test_engine_matches_naive_recompute(self, replayed):
        service, engine, snapshots = replayed
        naive = NaiveAnalytics(service.plan, service.anchor_index)
        for snapshot in snapshots:
            naive.observe_snapshot(snapshot)
        for region in engine.region_map.regions:
            expected, variance = engine.occupancy_of(region)
            assert abs(expected - naive.occupancy[region]) <= RECOMPUTE_TOLERANCE
            assert abs(variance - naive.variance[region]) <= RECOMPUTE_TOLERANCE
        assert engine.flow_counts() == dict(sorted(naive.flows.items()))
        assert engine.flow_events == naive.flow_events
        counts = engine.enter_leave_counts()
        for region, cell in counts.items():
            assert cell["enters"] == naive.enters.get(region, 0)
            assert cell["leaves"] == naive.leaves.get(region, 0)
        for region, histogram in naive.dwell_region.items():
            assert engine.dwell_histogram(region).counts == histogram.counts
        assert engine.top_regions(5) == naive.top_regions(5)

    def test_self_check_passes_and_catches_drift(self, replayed):
        _, engine, snapshots = replayed
        table = snapshots[-1].table
        engine.self_check(table)
        poked = engine._occupancy[HALLWAYS]
        engine._occupancy[HALLWAYS] = poked + 0.5
        try:
            with pytest.raises(AssertionError):
                engine.self_check(table)
        finally:
            engine._occupancy[HALLWAYS] = poked

    def test_total_occupancy_equals_tracked_mass(self, replayed):
        _, engine, snapshots = replayed
        table = snapshots[-1].table
        total_mass = sum(
            sum(table.distribution_of(o).values()) for o in table.objects()
        )
        occupancy = engine.room_occupancy()
        assert sum(
            cell["expected"] for cell in occupancy.values()
        ) == pytest.approx(total_mass)

    def test_snapshots_must_advance_in_time(self, replayed):
        _, engine, snapshots = replayed
        with pytest.raises(ValueError):
            engine.observe_snapshot(snapshots[0])

    def test_heatmap_rows_are_ranked_and_positive(self, replayed):
        _, engine, _ = replayed
        rows = engine.heatmap(limit=10)
        masses = [mass for _, _, _, mass in rows]
        assert masses == sorted(masses, reverse=True)
        assert all(mass > 0.0 for mass in masses)


# ----------------------------------------------------------------------
# modal-readout hysteresis (flow debounce)
# ----------------------------------------------------------------------
class _FakeSnapshot:
    """Minimal SnapshotLike: a second and a table."""

    def __init__(self, second, table):
        self.second = second
        self.table = table


def _two_room_anchors(region_map):
    """One anchor id in each of the first two rooms."""
    by_region = {}
    for ap_id in sorted(region_map._region_of):
        by_region.setdefault(region_map.region_of(ap_id), ap_id)
    room_a, room_b = region_map.room_ids()[:2]
    return room_a, room_b, by_region[room_a], by_region[room_b]


class TestFlowHysteresis:
    def _drive(self, service, anchors, hysteresis):
        """Run engine + naive over one object hopping through anchors."""
        from repro.index.hashtable import AnchorObjectTable

        engine = AnalyticsEngine(
            service.plan, service.anchor_index, flow_hysteresis=hysteresis
        )
        naive = NaiveAnalytics(
            service.plan, service.anchor_index, flow_hysteresis=hysteresis
        )
        for second, ap_id in enumerate(anchors):
            table = AnchorObjectTable()
            table.set_distribution("o1", {ap_id: 1.0})
            engine.observe_snapshot(_FakeSnapshot(second, table))
            naive.observe_snapshot(_FakeSnapshot(second, table))
        return engine, naive

    def test_single_epoch_flap_is_debounced(self, replayed):
        service, attached, _ = replayed
        room_a, room_b, a, b = _two_room_anchors(attached.region_map)
        engine, naive = self._drive(service, [a, b, a, b, a], hysteresis=2)
        assert engine.flow_events == 0
        assert engine.flow_counts() == {}
        assert naive.flow_events == 0
        # The flapping object never left its committed region.
        assert engine.enter_leave_counts()[room_a]["leaves"] == 0

    def test_hysteresis_one_reproduces_flip_on_every_readout(self, replayed):
        service, attached, _ = replayed
        room_a, room_b, a, b = _two_room_anchors(attached.region_map)
        engine, naive = self._drive(service, [a, b, a, b, a], hysteresis=1)
        assert engine.flow_events == 4
        assert engine.flow_counts() == {
            flow_key(room_a, room_b): 2,
            flow_key(room_b, room_a): 2,
        }
        assert naive.flow_events == 4

    def test_sustained_move_commits_backdated(self, replayed):
        service, attached, _ = replayed
        room_a, room_b, a, b = _two_room_anchors(attached.region_map)
        # Seconds 0-2 in room A, 3-4 in room B: the candidate first
        # appears at second 3 and commits at second 4 (hysteresis 2),
        # backdating the dwell to seconds 0..3.
        engine, naive = self._drive(service, [a, a, a, b, b], hysteresis=2)
        assert engine.flow_counts() == {flow_key(room_a, room_b): 1}
        assert engine.flow_events == 1
        histogram = engine.dwell_histogram(room_a)
        assert histogram.count == 1
        assert histogram.mean() == pytest.approx(3.0)
        assert naive.flows == {flow_key(room_a, room_b): 1}
        assert engine.dwell_histogram(room_a).counts == (
            naive.dwell_region[room_a].counts
        )

    def test_unchanged_posterior_still_accumulates_pending(self, replayed):
        """The engine's skip-unchanged fast path must count epochs the
        naive full-recompute comparator counts."""
        service, attached, _ = replayed
        room_a, room_b, a, b = _two_room_anchors(attached.region_map)
        # Second 1 changes the posterior; seconds 2-3 repeat it exactly,
        # so only the pending counter (not the aggregates) may advance.
        engine, naive = self._drive(service, [a, b, b, b], hysteresis=3)
        assert engine.flow_counts() == {flow_key(room_a, room_b): 1}
        assert engine.flow_events == naive.flow_events == 1
        assert dict(sorted(naive.flows.items())) == engine.flow_counts()

    def test_pending_state_survives_checkpoint(self, replayed):
        service, attached, _ = replayed
        _, _, a, b = _two_room_anchors(attached.region_map)
        from repro.index.hashtable import AnchorObjectTable

        cold = AnalyticsEngine(
            service.plan, service.anchor_index, flow_hysteresis=3
        )
        warm = AnalyticsEngine(
            service.plan, service.anchor_index, flow_hysteresis=3
        )
        tables = []
        for ap_id in [a, b, b, b]:
            table = AnchorObjectTable()
            table.set_distribution("o1", {ap_id: 1.0})
            tables.append(table)
        for second in (0, 1):  # leaves a pending candidate at count 1
            cold.observe_snapshot(_FakeSnapshot(second, tables[second]))
        state = json.loads(json.dumps(cold.state_dict()))
        warm.restore_state(state)
        assert warm.state_dict() == cold.state_dict()
        for second in (2, 3):  # commit happens after the restore
            cold.observe_snapshot(_FakeSnapshot(second, tables[second]))
            warm.observe_snapshot(_FakeSnapshot(second, tables[second]))
        assert warm.state_dict() == cold.state_dict()
        assert warm.flow_events == 1

    def test_rejects_nonpositive_hysteresis(self, replayed):
        service, _, _ = replayed
        with pytest.raises(ValueError):
            AnalyticsEngine(service.plan, service.anchor_index, flow_hysteresis=0)
        with pytest.raises(ValueError):
            NaiveAnalytics(service.plan, service.anchor_index, flow_hysteresis=0)


# ----------------------------------------------------------------------
# checkpoint resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_engine_state_round_trip_is_bit_exact(self, replayed):
        service, engine, _ = replayed
        state = json.loads(json.dumps(engine.state_dict()))
        fresh = AnalyticsEngine(service.plan, service.anchor_index)
        fresh.restore_state(state)
        assert fresh.state_dict() == engine.state_dict()
        assert fresh.top_regions(5) == engine.top_regions(5)
        assert fresh.summary() == engine.summary()

    def test_resumed_engine_continues_identically(self, replay_readings):
        """Cold run vs checkpoint-resumed run: identical aggregates."""
        cold = TrackingService(FAST, seed=FAST.seed)
        cold.enable_analytics()
        warm_front = TrackingService(FAST, seed=FAST.seed)
        warm_front.enable_analytics()
        try:
            for batch in ReplaySource(replay_readings).batches():
                cold.process_batch(batch)
            for batch in ReplaySource(replay_readings, max_seconds=7).batches():
                warm_front.process_batch(batch)
            envelope = json.loads(json.dumps(warm_front.state_dict()))
        finally:
            warm_front.close()
        warm = TrackingService(FAST, seed=FAST.seed)
        try:
            warm.restore_state(envelope)
            assert warm.analytics is not None  # auto-resumed from envelope
            for batch in ReplaySource(
                replay_readings, start_after=7
            ).batches():
                warm.process_batch(batch)
            assert warm.analytics.state_dict() == cold.analytics.state_dict()
        finally:
            warm.close()
            cold.close()

    def test_version_mismatch_is_rejected(self, replayed):
        service, engine, _ = replayed
        state = json.loads(json.dumps(engine.state_dict()))
        state["state_version"] = 99
        fresh = AnalyticsEngine(service.plan, service.anchor_index)
        with pytest.raises(ValueError):
            fresh.restore_state(state)


# ----------------------------------------------------------------------
# density shim
# ----------------------------------------------------------------------
class TestDensityShim:
    def test_engine_room_densities_match_query_layer(self, replayed):
        from repro.queries.density import room_densities

        service, engine, snapshots = replayed
        table = snapshots[-1].table
        via_query = room_densities(
            service.plan, service.anchor_index, table, top_n=3
        )
        via_engine = engine.room_densities(top_n=3)
        assert [z.zone_id for z in via_engine] == [z.zone_id for z in via_query]
        for mine, theirs in zip(via_engine, via_query):
            assert mine.expected_count == pytest.approx(
                theirs.expected_count, abs=RECOMPUTE_TOLERANCE
            )
            assert [o for o, _ in mine.top_objects] == [
                o for o, _ in theirs.top_objects
            ]
