"""Tests for the probabilistic event-predicate layer."""

import pytest

from repro.geometry import Point, Rect
from repro.index import AnchorObjectTable
from repro.queries.events import (
    And,
    EventContext,
    InRoom,
    InZone,
    Near,
    Not,
    Or,
    Together,
)


@pytest.fixture
def context(small_plan, small_graph, small_anchors):
    table = AnchorObjectTable()

    def place(object_id, point, mass=1.0):
        anchor = small_anchors.nearest(point)
        dist = table.distribution_of(object_id)
        dist[anchor.ap_id] = dist.get(anchor.ap_id, 0.0) + mass
        table.set_distribution(object_id, dist)

    place("joe", Point(10, 5))            # hallway, x=10
    place("mary", Point(11, 5))           # hallway, next to joe
    place("sam", small_plan.room("R1").center)   # in room R1
    place("split", Point(2, 5), 0.5)
    place("split", Point(18, 5), 0.5)
    return EventContext(small_plan, small_graph, small_anchors, table)


class TestAtoms:
    def test_in_zone(self, context):
        assert InZone("joe", Rect(8, 4, 12, 6)).probability(context) == pytest.approx(1.0)
        assert InZone("joe", Rect(0, 4, 5, 6)).probability(context) == pytest.approx(0.0)

    def test_in_zone_split_mass(self, context):
        p = InZone("split", Rect(0, 4, 5, 6)).probability(context)
        assert p == pytest.approx(0.5, abs=0.05)

    def test_in_room(self, context):
        assert InRoom("sam", "R1").probability(context) == pytest.approx(1.0, abs=0.01)
        assert InRoom("sam", "R2").probability(context) == pytest.approx(0.0, abs=0.01)

    def test_in_zone_unknown_object(self, context):
        assert InZone("ghost", Rect(0, 0, 20, 10)).probability(context) == 0.0

    def test_near_adjacent(self, context):
        assert Near("joe", "mary", 2.0).probability(context) == pytest.approx(1.0)

    def test_near_too_far(self, context):
        assert Near("joe", "sam", 1.0).probability(context) == pytest.approx(0.0)

    def test_near_split(self, context):
        # split is 50/50 at x=2 and x=18; joe at x=10 is 8 m from each.
        assert Near("joe", "split", 8.5).probability(context) == pytest.approx(1.0)
        assert Near("joe", "split", 7.0).probability(context) == pytest.approx(0.0)

    def test_near_rejects_negative(self, context):
        with pytest.raises(ValueError):
            Near("joe", "mary", -1.0).probability(context)

    def test_near_uses_network_distance(self, context):
        # sam is at R1's center (5,2): Euclidean to joe (10,5) ~5.8 m but
        # the walking path goes through the door (longer).
        euclid = Point(10, 5).distance_to(Point(5, 2))
        assert Near("joe", "sam", euclid).probability(context) == pytest.approx(0.0)
        assert Near("joe", "sam", 12.0).probability(context) == pytest.approx(1.0)

    def test_together(self, context):
        hallway_mid = Rect(8, 4, 12, 6)
        assert Together("joe", "mary", hallway_mid).probability(context) == (
            pytest.approx(1.0)
        )
        assert Together("joe", "sam", hallway_mid).probability(context) == (
            pytest.approx(0.0)
        )


class TestCombinators:
    def test_and(self, context):
        event = And((
            InZone("joe", Rect(8, 4, 12, 6)),
            InZone("split", Rect(0, 4, 5, 6)),
        ))
        assert event.probability(context) == pytest.approx(0.5, abs=0.05)

    def test_or(self, context):
        event = Or((
            InZone("split", Rect(0, 4, 5, 6)),
            InZone("split", Rect(15, 4, 20, 6)),
        ))
        assert event.probability(context) == pytest.approx(0.75, abs=0.05)

    def test_not(self, context):
        event = Not(InZone("joe", Rect(8, 4, 12, 6)))
        assert event.probability(context) == pytest.approx(0.0, abs=1e-6)

    def test_operator_sugar(self, context):
        meeting = InZone("joe", Rect(8, 4, 12, 6)) & Near("joe", "mary", 2.0)
        assert meeting.probability(context) == pytest.approx(1.0)
        either = InRoom("sam", "R1") | InRoom("sam", "R2")
        assert either.probability(context) == pytest.approx(1.0, abs=0.01)
        absent = ~InRoom("sam", "R1")
        assert absent.probability(context) == pytest.approx(0.0, abs=0.01)

    def test_is_joe_meeting_mary_in_room(self, context, small_plan):
        """The literature's canonical event query, end to end."""
        room = small_plan.room("R3").boundary
        meeting = (
            InZone("joe", room)
            & InZone("mary", room)
            & Near("joe", "mary", 3.0)
        )
        # Both are in the hallway, not R3.
        assert meeting.probability(context) == pytest.approx(0.0, abs=0.01)
