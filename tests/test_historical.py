"""Tests for historical reading retention and time-travel queries."""

import numpy as np
import pytest

from repro.collector.historical import HistoricalCollector
from repro.config import DEFAULT_CONFIG
from repro.floorplan import small_test_plan
from repro.geometry import Point, Rect
from repro.queries import IndoorQueryEngine
from repro.rfid import RFIDReader
from repro.rfid.readings import RawReading

TAGS = {"tag1": "o1"}


def raw(second, tag, reader):
    return [RawReading(second + 0.5, tag, reader)]


class TestHistoricalCollector:
    def _collector(self):
        collector = HistoricalCollector(TAGS)
        collector.ingest_second(0, raw(0, "tag1", "d1"))
        collector.ingest_second(1, raw(1, "tag1", "d1"))
        collector.ingest_second(5, raw(5, "tag1", "d2"))
        collector.ingest_second(9, raw(9, "tag1", "d3"))
        return collector

    def test_live_view_matches_snapshot_semantics(self):
        collector = self._collector()
        live = collector.history("o1")
        assert [run.reader_id for run in live.runs] == ["d2", "d3"]

    def test_full_runs_retained(self):
        collector = self._collector()
        runs = collector.full_runs("o1")
        assert [run.reader_id for run in runs] == ["d1", "d2", "d3"]

    def test_full_runs_are_copies(self):
        collector = self._collector()
        collector.full_runs("o1")[0].seconds.append(99)
        assert collector.full_runs("o1")[0].seconds == [0, 1]

    def test_history_as_of_early(self):
        collector = self._collector()
        history = collector.history_as_of("o1", 1)
        assert [run.reader_id for run in history.runs] == ["d1"]
        assert history.last_second == 1

    def test_history_as_of_mid(self):
        collector = self._collector()
        history = collector.history_as_of("o1", 6)
        assert [run.reader_id for run in history.runs] == ["d1", "d2"]

    def test_history_as_of_truncates_partial_runs(self):
        collector = HistoricalCollector(TAGS)
        collector.ingest_second(0, raw(0, "tag1", "d1"))
        collector.ingest_second(1, raw(1, "tag1", "d1"))
        collector.ingest_second(2, raw(2, "tag1", "d1"))
        history = collector.history_as_of("o1", 1)
        assert history.runs[0].seconds == [0, 1]

    def test_history_before_first_reading_is_empty(self):
        collector = HistoricalCollector(TAGS)
        collector.ingest_second(5, raw(5, "tag1", "d1"))
        assert collector.history_as_of("o1", 3).is_empty

    def test_last_detection_as_of(self):
        collector = self._collector()
        assert collector.last_detection_as_of("o1", 7) == ("d2", 5)
        assert collector.last_detection_as_of("o1", 100) == ("d3", 9)
        assert collector.last_detection_as_of("ghost", 5) is None

    def test_observed_objects_as_of(self):
        collector = self._collector()
        assert collector.observed_objects_as_of(0) == ["o1"]
        collector2 = HistoricalCollector(TAGS)
        assert collector2.observed_objects_as_of(10) == []

    def test_as_of_view_interface(self):
        collector = self._collector()
        view = collector.as_of_view(6)
        assert view.observed_objects() == ["o1"]
        assert view.last_detection("o1") == ("d2", 5)
        assert view.history("o1").latest_reader_id == "d2"
        assert view.device_generation("o1") == -1


class TestHistoricalEngine:
    def _engine(self):
        plan = small_test_plan()
        readers = [
            RFIDReader("d1", Point(3.0, 5.0), 2.0, "H1"),
            RFIDReader("d2", Point(10.0, 5.0), 2.0, "H1"),
            RFIDReader("d3", Point(17.0, 5.0), 2.0, "H1"),
        ]
        engine = IndoorQueryEngine(
            plan, readers, TAGS, config=DEFAULT_CONFIG, historical=True
        )
        # Walk right: d1 at t=0..1, d2 at t=7..8, d3 at t=14..15.
        for second, reader in [
            (0, "d1"), (1, "d1"), (7, "d2"), (8, "d2"), (14, "d3"), (15, "d3"),
        ]:
            engine.ingest_second(second, raw(second, "tag1", reader))
        return engine

    def test_past_query_sees_past_location(self):
        engine = self._engine()
        # At t=8 the object was at d2 (x~10): the window around d2 hits.
        result = engine.range_query_at(
            Rect(8, 4, 12, 6), 8, rng=np.random.default_rng(0)
        )
        assert result.probabilities.get("o1", 0.0) > 0.5
        # ... and the window around d3 misses at that time.
        far = engine.range_query_at(
            Rect(15, 4, 19, 6), 8, rng=np.random.default_rng(0)
        )
        assert far.probabilities.get("o1", 0.0) < 0.2

    def test_present_query_sees_present_location(self):
        engine = self._engine()
        result = engine.range_query_at(
            Rect(15, 4, 19, 6), 15, rng=np.random.default_rng(0)
        )
        assert result.probabilities.get("o1", 0.0) > 0.5

    def test_knn_query_at(self):
        engine = self._engine()
        result = engine.knn_query_at(Point(10, 5), 1, 8, rng=np.random.default_rng(0))
        assert result.probabilities.get("o1", 0.0) > 0.9

    def test_historical_does_not_pollute_cache(self):
        engine = self._engine()
        assert engine.cache is not None
        engine.range_query_at(Rect(8, 4, 12, 6), 8, rng=np.random.default_rng(0))
        assert len(engine.cache) == 0

    def test_non_historical_engine_rejects(self):
        plan = small_test_plan()
        readers = [RFIDReader("d1", Point(3.0, 5.0), 2.0, "H1")]
        engine = IndoorQueryEngine(plan, readers, TAGS)
        with pytest.raises(TypeError, match="historical"):
            engine.evaluate_at(5)
