"""Deterministic attribution profiler (repro.obs.profiler)."""

import json
import threading

import pytest

from repro import obs
from repro.obs.profiler import (
    OBJECT_BUCKETS,
    PROFILE_FORMAT,
    PROFILE_VERSION,
    SPEEDSCOPE_SCHEMA,
    CountingClock,
    build_profile,
    load_profile,
    object_bucket,
    render_attribution,
    to_collapsed,
    to_speedscope,
    write_collapsed,
    write_profile,
    write_speedscope,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
    obs.set_clock(__import__("time").perf_counter)


def _span(index, name, start, end, *, parent=None, depth=0, thread=0, attrs=None):
    span = {
        "index": index,
        "name": name,
        "start": start,
        "end": end,
        "parent": parent,
        "depth": depth,
        "thread": thread,
    }
    if attrs is not None:
        span["attrs"] = attrs
    return span


def _snapshot(spans, dropped=0, histograms=(), counters=()):
    return {
        "trace": {"spans": list(spans), "dropped": dropped},
        "metrics": {
            "histograms": list(histograms),
            "counters": list(counters),
            "gauges": [],
        },
    }


# ----------------------------------------------------------------------
# the clock
# ----------------------------------------------------------------------
class TestCountingClock:
    def test_kth_read_returns_k_times_step(self):
        clock = CountingClock(step=0.5)
        assert [clock() for _ in range(3)] == [0.5, 1.0, 1.5]
        assert clock.reads == 3

    def test_default_step_is_one_microsecond(self):
        clock = CountingClock()
        assert clock() == pytest.approx(1e-6)

    def test_rejects_nonpositive_step(self):
        with pytest.raises(ValueError):
            CountingClock(step=0.0)

    def test_thread_safe_reads_are_unique(self):
        clock = CountingClock()
        seen = []

        def reader():
            for _ in range(200):
                seen.append(clock())

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == 800
        assert clock.reads == 800

    def test_installs_via_obs_set_clock(self):
        obs.enable()
        obs.set_clock(CountingClock())
        with obs.span("a"):
            with obs.span("b"):
                pass
        spans = obs.snapshot()["trace"]["spans"]
        durations = {s["name"]: s["end"] - s["start"] for s in spans}
        # b consumes exactly its two boundary reads; a additionally
        # brackets b's reads: deterministic operation counting.
        assert durations["b"] == pytest.approx(1e-6)
        assert durations["a"] == pytest.approx(3e-6)


# ----------------------------------------------------------------------
# attribution math
# ----------------------------------------------------------------------
class TestBuildProfile:
    def test_self_excludes_direct_children(self):
        spans = [
            _span(0, "tick", 0.0, 10.0),
            _span(1, "filter", 1.0, 5.0, parent=0, depth=1),
            _span(2, "query", 6.0, 9.0, parent=0, depth=1),
        ]
        profile = build_profile(_snapshot(spans))
        rows = {r.phase: r for r in profile.phases}
        assert rows["tick"].self_seconds == pytest.approx(3.0)  # 10 - 4 - 3
        assert rows["tick"].cum_seconds == pytest.approx(10.0)
        assert rows["filter"].self_seconds == pytest.approx(4.0)
        assert profile.total_seconds == pytest.approx(10.0)

    def test_recursive_reentry_counts_cum_once(self):
        spans = [
            _span(0, "walk", 0.0, 8.0),
            _span(1, "walk", 1.0, 7.0, parent=0, depth=1),
            _span(2, "walk", 2.0, 6.0, parent=1, depth=2),
        ]
        profile = build_profile(_snapshot(spans))
        row = profile.phases[0]
        assert row.phase == "walk"
        assert row.calls == 3
        # Only the outermost occurrence contributes to cum.
        assert row.cum_seconds == pytest.approx(8.0)
        # Self still sums every level: 2 + 2 + 4.
        assert row.self_seconds == pytest.approx(8.0)

    def test_self_clamped_nonnegative_on_overlapping_children(self):
        spans = [
            _span(0, "parent", 0.0, 2.0),
            _span(1, "child", 0.0, 1.5, parent=0, depth=1),
            _span(2, "child", 0.0, 1.5, parent=0, depth=1),
        ]
        profile = build_profile(_snapshot(spans))
        rows = {r.phase: r for r in profile.phases}
        assert rows["parent"].self_seconds == 0.0

    def test_paths_join_ancestors_with_semicolons(self):
        spans = [
            _span(0, "a", 0.0, 4.0),
            _span(1, "b", 1.0, 3.0, parent=0, depth=1),
        ]
        profile = build_profile(_snapshot(spans))
        assert {r.path for r in profile.paths} == {"a", "a;b"}

    def test_unfinished_spans_are_ignored(self):
        spans = [
            _span(0, "done", 0.0, 1.0),
            _span(1, "open", 0.5, None),
        ]
        profile = build_profile(_snapshot(spans))
        assert [r.phase for r in profile.phases] == ["done"]

    def test_dropped_span_count_carried_through(self):
        profile = build_profile(_snapshot([], dropped=17))
        assert profile.dropped_spans == 17
        assert "17 spans past the retention cap" in render_attribution(profile)

    def test_shard_backend_and_timer_rows(self):
        histograms = [
            {"name": "service.shard_time", "labels": {"shard": "1"},
             "count": 4, "total": 2.0},
            {"name": "service.shard_time", "labels": {"shard": "0"},
             "count": 4, "total": 1.0},
            {"name": "service.filter_tick", "labels": {"backend": "particle"},
             "count": 8, "total": 3.0},
            {"name": "filter.predict", "count": 40, "total": 0.5},
        ]
        counters = [
            {"name": "filter.backend_runs", "labels": {"backend": "particle"},
             "value": 120},
        ]
        profile = build_profile(
            _snapshot([], histograms=histograms, counters=counters)
        )
        assert [r["shard"] for r in profile.shards] == ["0", "1"]
        assert profile.backends == [
            {"backend": "particle", "filter_runs": 120, "ticks": 8,
             "seconds": 3.0}
        ]
        series = {r["series"] for r in profile.timers}
        assert "filter.predict" in series
        assert 'service.shard_time{shard="0"}' not in series  # plain k=v form
        assert "service.shard_time{shard=0}" in series

    def test_object_buckets_group_by_crc32(self):
        spans = [
            _span(0, "filter.run", 0.0, 1.0, attrs={"object": "o1"}),
            _span(1, "filter.run", 1.0, 3.0, attrs={"object": "o1"}),
            _span(2, "filter.run", 3.0, 4.0, attrs={"object": "o2"}),
            _span(3, "other", 4.0, 5.0, attrs={"object": "o1"}),
        ]
        profile = build_profile(_snapshot(spans))
        by_bucket = {r["bucket"]: r for r in profile.object_buckets}
        b1 = by_bucket[object_bucket("o1")]
        assert b1["filter_runs"] >= 2 and b1["objects"] >= 1
        total_runs = sum(r["filter_runs"] for r in profile.object_buckets)
        assert total_runs == 3  # "other" span does not count

    def test_bucket_function_is_stable_and_bounded(self):
        assert 0 <= object_bucket("obj-123") < OBJECT_BUCKETS
        assert object_bucket("obj-123") == object_bucket("obj-123")
        with pytest.raises(ValueError):
            object_bucket("x", buckets=0)


# ----------------------------------------------------------------------
# exports
# ----------------------------------------------------------------------
class TestExports:
    def _profile(self):
        spans = [
            _span(0, "a", 0.0, 4e-6),
            _span(1, "b", 1e-6, 3e-6, parent=0, depth=1),
        ]
        return build_profile(_snapshot(spans)), _snapshot(spans)

    def test_collapsed_lines_are_integer_microseconds(self):
        profile, _ = self._profile()
        text = to_collapsed(profile)
        assert text == "a 2\na;b 2\n"

    def test_speedscope_document_shape(self):
        _, snapshot = self._profile()
        doc = to_speedscope(snapshot, name="t")
        assert doc["$schema"] == SPEEDSCOPE_SCHEMA
        assert [f["name"] for f in doc["shared"]["frames"]] == ["a", "b"]
        events = doc["profiles"][0]["events"]
        assert [e["type"] for e in events] == ["O", "O", "C", "C"]
        assert events[0]["frame"] == 0 and events[1]["frame"] == 1

    def test_speedscope_close_precedes_open_at_same_timestamp(self):
        spans = [
            _span(0, "first", 0.0, 1.0),
            _span(1, "second", 1.0, 2.0),
        ]
        doc = to_speedscope(_snapshot(spans))
        events = doc["profiles"][0]["events"]
        assert [(e["type"], e["at"]) for e in events] == [
            ("O", 0.0), ("C", 1.0), ("O", 1.0), ("C", 2.0),
        ]

    def test_file_roundtrip_and_validation(self, tmp_path):
        profile, snapshot = self._profile()
        p = tmp_path / "prof.json"
        write_profile(profile, str(p))
        loaded = load_profile(str(p))
        assert loaded["format"] == PROFILE_FORMAT
        assert loaded["version"] == PROFILE_VERSION
        write_speedscope(snapshot, str(tmp_path / "ss.json"))
        write_collapsed(profile, str(tmp_path / "c.txt"))
        assert (tmp_path / "c.txt").read_text() == to_collapsed(profile)
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ValueError):
            load_profile(str(bad))

    def test_exports_are_bit_stable(self, tmp_path):
        profile, snapshot = self._profile()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_profile(profile, str(a))
        write_profile(build_profile(snapshot), str(b))
        assert a.read_bytes() == b.read_bytes()
        sa, sb = tmp_path / "sa.json", tmp_path / "sb.json"
        write_speedscope(snapshot, str(sa))
        write_speedscope(snapshot, str(sb))
        assert sa.read_bytes() == sb.read_bytes()


# ----------------------------------------------------------------------
# report + end-to-end determinism through the real tracer
# ----------------------------------------------------------------------
class TestRenderAndIntegration:
    def test_render_uses_integer_units_for_deterministic_clock(self):
        spans = [_span(0, "a", 0.0, 5e-6)]
        profile = build_profile(_snapshot(spans), clock="deterministic")
        text = render_attribution(profile)
        assert "clock=deterministic" in text
        assert "total 5 units" in text

    def test_same_instrumented_run_gives_identical_profiles(self):
        def run():
            obs.disable()
            obs.reset()
            obs.enable()
            obs.set_clock(CountingClock())
            for turn in range(3):
                with obs.span("tick"):
                    with obs.span("filter.run", attrs={"object": f"o{turn}"}):
                        with obs.timer("filter.predict"):
                            pass
            snapshot = obs.snapshot()
            obs.disable()
            return build_profile(snapshot, clock="deterministic")

        first, second = run(), run()
        assert first.as_dict() == second.as_dict()
        assert to_collapsed(first) == to_collapsed(second)
