"""Ablation — negative information on silent seconds (extension).

The paper's Algorithm 2 skips reweighting when a second has no reading.
This reproduction optionally treats silence as evidence: particles inside
some reader's range while nothing was read are penalized
(``use_negative_information``). The ablation compares accuracy with the
extension off (the paper's algorithm, the default) and on.
"""

from _profiles import profile_config, profile_name

from repro.sim import evaluate_accuracy
from repro.sim.experiments import format_rows


def _run(config):
    rows = []
    for enabled in (False, True):
        report = evaluate_accuracy(
            config.with_overrides(use_negative_information=enabled),
            measure_knn=False,
        )
        rows.append(report.as_row(negative_information=enabled))
    return rows


def test_ablation_negative_info(benchmark, capsys):
    config = profile_config()
    rows = benchmark.pedantic(_run, args=(config,), rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            format_rows(
                rows,
                title=(
                    f"Ablation (profile={profile_name()}): negative "
                    "information on silent seconds (paper default = off)"
                ),
            )
        )

    assert len(rows) == 2
    for row in rows:
        assert row["range_kl_pf"] is not None
