"""Ablation — resampling strategy.

The paper's Algorithm 1 is systematic resampling; the filtering
literature (the paper's reference [1]) offers multinomial, stratified,
and residual alternatives. This ablation swaps the resampler inside the
otherwise identical system and reports accuracy, backing DESIGN.md's
choice of systematic as the default.
"""

from _profiles import profile_config, profile_name

from repro.core.resampling import RESAMPLERS
from repro.sim import Simulation, evaluate_accuracy
from repro.sim.experiments import format_rows


def _run(config):
    rows = []
    for name, resampler in RESAMPLERS.items():
        simulation = Simulation(config, resampler=resampler)
        report = evaluate_accuracy(
            config, simulation=simulation, measure_knn=False
        )
        rows.append(report.as_row(resampler=name))
    return rows


def test_ablation_resampling(benchmark, capsys):
    config = profile_config()
    rows = benchmark.pedantic(_run, args=(config,), rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            format_rows(
                rows,
                title=(
                    f"Ablation (profile={profile_name()}): resampling "
                    "strategy (paper Algorithm 1 = systematic)"
                ),
            )
        )

    assert len(rows) == len(RESAMPLERS)
    # Every strategy must produce a working filter that beats SM.
    for row in rows:
        assert row["range_kl_pf"] < row["range_kl_sm"] * 1.2
