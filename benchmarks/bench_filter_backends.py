"""Head-to-head comparison of the pluggable filter backends.

Runs the identical simulated workload under every registered backend
(``particle``, ``kalman``, ``symbolic``) and reports, per backend:

* **throughput** — filter runs per second over repeated all-object
  snapshot evaluations (the online service's hot path), and
* **accuracy** — the paper's three metrics (range-query KL divergence,
  kNN hit rate, top-k success) from :func:`run_backend_comparison`.

Both land in the ``--benchmark-json`` artifact via
``benchmark.extra_info["backends"]``, so one JSON document answers "which
estimator is faster and what does that speed cost in accuracy".
"""

from _profiles import observed, profile_config, profile_name, stopwatch
from repro.filters import available_backends
from repro.sim import Simulation
from repro.sim.experiments import format_rows, run_backend_comparison


def _snapshot_throughput(config, backend, rounds=8, gap_seconds=2):
    """Filter runs per second over repeated all-object snapshots."""
    simulation = Simulation(config, build_symbolic=False, filter_backend=backend)
    watch = stopwatch()
    objects_filtered = 0
    for i in range(rounds):
        timestamp = config.warmup_seconds + i * gap_seconds
        simulation.run_until(timestamp)
        with watch:
            table = simulation.pf_engine.locations_snapshot(
                timestamp, rng=simulation.pf_rng
            )
        objects_filtered += len(table.objects())
    return objects_filtered / max(watch.total, 1e-9), watch.total


def test_filter_backend_comparison(benchmark, capsys):
    config = profile_config()
    backends = available_backends()

    def run():
        accuracy = {
            row["backend"]: row for row in run_backend_comparison(config, backends)
        }
        throughput = {}
        for backend in backends:
            runs_per_s, seconds = _snapshot_throughput(config, backend)
            throughput[backend] = {
                "filter_runs_per_s": round(runs_per_s, 1),
                "snapshot_seconds": round(seconds, 3),
            }
        return accuracy, throughput

    with observed(benchmark):
        accuracy, throughput = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {
            "backend": backend,
            **throughput[backend],
            **{
                k: v
                for k, v in accuracy[backend].items()
                if k not in ("backend", "elapsed_s")
            },
        }
        for backend in backends
    ]
    benchmark.extra_info["backends"] = rows

    with capsys.disabled():
        print()
        print(
            format_rows(
                rows,
                title=(
                    f"Filter backends (profile={profile_name()}): "
                    "throughput and accuracy under one workload"
                ),
            )
        )

    for row in rows:
        assert row["filter_runs_per_s"] > 0
    # The paper's estimator must beat the symbolic baseline on range KL.
    assert accuracy["particle"]["range_kl_pf"] <= accuracy["symbolic"]["range_kl_pf"]
