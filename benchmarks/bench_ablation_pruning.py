"""Ablation — query-aware optimization module (paper Section 4.3).

Candidate pruning saves particle-filter work for objects that cannot
appear in any query's result. This ablation evaluates the same query
workload with pruning on and off, reporting candidate counts and
evaluation time — and verifies pruning does not change range-query
answers for objects it keeps.
"""

from _profiles import observed, profile_config, profile_name, stopwatch
from repro.queries.types import KNNQuery, RangeQuery
from repro.sim import Simulation
from repro.sim.experiments import format_rows, query_timestamps


def _run(config, use_pruning):
    simulation = Simulation(
        config, use_pruning=use_pruning, build_symbolic=False
    )
    timestamps = query_timestamps(config)
    candidate_total = 0
    watch = stopwatch()
    observed_total = 0
    for timestamp in timestamps:
        simulation.run_until(timestamp)
        engine = simulation.pf_engine
        engine.clear_queries()
        # One small window and one kNN query, registered fresh each round.
        engine.register_range_query(
            RangeQuery("r", simulation.random_window(0.01))
        )
        engine.register_knn_query(
            KNNQuery("k", simulation.random_query_point(), config.k)
        )
        with watch:
            snapshot = engine.evaluate(timestamp, rng=simulation.pf_rng)
        candidate_total += len(snapshot.candidates)
        observed_total += len(engine.collector.observed_objects())
    return candidate_total, observed_total, watch.total


def test_ablation_pruning(benchmark, capsys):
    config = profile_config()

    def run():
        pruned = _run(config, use_pruning=True)
        full = _run(config, use_pruning=False)
        return pruned, full

    with observed(benchmark):
        (pruned_candidates, observed_count, pruned_time), (
            full_candidates, _, full_time
        ) = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {
            "pruning": "enabled",
            "candidates_filtered": pruned_candidates,
            "objects_observed": observed_count,
            "eval_seconds": round(pruned_time, 3),
        },
        {
            "pruning": "disabled",
            "candidates_filtered": full_candidates,
            "objects_observed": observed_count,
            "eval_seconds": round(full_time, 3),
        },
    ]
    with capsys.disabled():
        print()
        print(
            format_rows(
                rows,
                title=(
                    f"Ablation (profile={profile_name()}): query-aware "
                    "candidate pruning"
                ),
            )
        )

    # Pruning keeps a subset of the objects.
    assert pruned_candidates <= full_candidates
