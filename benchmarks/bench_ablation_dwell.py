"""Ablation — room dwell time in the true traces (workload sensitivity).

The paper's trace generator never pauses: objects pick a new destination
the moment they arrive. Real office occupants *dwell* in rooms, which is
the hardest case for both inference methods (long silence, ambiguous
room choice). This ablation sweeps the dwell window and shows how both
methods degrade — and that the particle filter's advantage persists.
"""

from _profiles import profile_config, profile_name

from repro.sim import evaluate_accuracy
from repro.sim.experiments import format_rows

DWELL_WINDOWS = ((0.0, 0.0), (2.0, 8.0), (5.0, 15.0), (10.0, 30.0))


def _run(config):
    rows = []
    for lo, hi in DWELL_WINDOWS:
        report = evaluate_accuracy(
            config.with_overrides(min_dwell_seconds=lo, max_dwell_seconds=hi),
            measure_topk=False,
        )
        rows.append(report.as_row(dwell=f"{lo:g}-{hi:g}s"))
    return rows


def test_ablation_dwell(benchmark, capsys):
    config = profile_config()
    rows = benchmark.pedantic(_run, args=(config,), rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            format_rows(
                rows,
                title=(
                    f"Ablation (profile={profile_name()}): room dwell time in "
                    "the true traces (paper workload = 0s)"
                ),
            )
        )

    assert len(rows) == len(DWELL_WINDOWS)
    # The particle filter keeps its edge across the whole sweep on average.
    mean_pf = sum(r["range_kl_pf"] for r in rows) / len(rows)
    mean_sm = sum(r["range_kl_sm"] for r in rows) / len(rows)
    assert mean_pf < mean_sm
