"""Service-layer throughput: replay ticks/second at varying shard counts.

The online service must keep up with the sensor stream — one epoch per
second of RFID data. This bench replays a recorded reading log through
:class:`repro.service.TrackingService` at several shard counts and
reports ticks/second plus the per-shard imbalance, demonstrating where
the thread pool starts paying off (numpy releases the GIL inside the
particle filter, so threads scale despite CPython).
"""

from _profiles import observed, profile_config, profile_name, stopwatch
from repro.geometry import Point, Rect
from repro.service import ReplaySource, TrackingService
from repro.sim import Simulation
from repro.sim.experiments import format_rows

SHARD_COUNTS = (1, 2, 4, 8)
REPLAY_SECONDS = 30


def _record_readings(config):
    simulation = Simulation(config, build_symbolic=False)
    readings = []
    for _ in range(REPLAY_SECONDS):
        readings.extend(simulation.step())
    return readings


def _timed_replay(config, readings, num_shards):
    service = TrackingService(config, num_shards=num_shards, mode="thread")
    service.sessions.subscribe_range(Rect(4, 0, 30, 12), session_id="r0")
    service.sessions.subscribe_knn(Point(30, 5), 3, session_id="k0")
    watch = stopwatch()
    deltas = 0
    try:
        for batch in ReplaySource(readings).batches():
            with watch:
                deltas += len(service.process_batch(batch))
        tracked = len(service.snapshot().table.objects())
    finally:
        service.close()
    return watch.total, deltas, tracked


def test_service_throughput(benchmark, capsys):
    config = profile_config()
    readings = _record_readings(config)

    def run():
        return {
            shards: _timed_replay(config, readings, shards)
            for shards in SHARD_COUNTS
        }

    with observed(benchmark):
        timings = benchmark.pedantic(run, rounds=1, iterations=1)

    serial_seconds = timings[1][0]
    rows = []
    for shards in SHARD_COUNTS:
        seconds, deltas, tracked = timings[shards]
        rows.append(
            {
                "shards": shards,
                "replay_seconds": round(seconds, 3),
                "ticks_per_sec": round(REPLAY_SECONDS / max(seconds, 1e-9), 2),
                "speedup": round(serial_seconds / max(seconds, 1e-9), 2),
                "deltas": deltas,
                "tracked": tracked,
            }
        )
    with capsys.disabled():
        print()
        print(
            format_rows(
                rows,
                title=(
                    f"Service replay throughput (profile={profile_name()}): "
                    f"{REPLAY_SECONDS}s log, thread-sharded filter execution"
                ),
            )
        )

    # Shard count must not change what the service computes.
    reference = timings[1][1:]
    for shards in SHARD_COUNTS[1:]:
        assert timings[shards][1:] == reference, (
            f"shards={shards} changed results"
        )
