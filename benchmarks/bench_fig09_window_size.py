"""Figure 9 — effects of query window size on range-query accuracy.

Regenerates the paper's Figure 9 series: range-query KL divergence of the
particle filter (PF) and symbolic model (SM) methods, for query windows of
1 % to 5 % of the floor area. Expected shape (paper Section 5.2): both
curves flat in window size, PF clearly below SM.
"""

from _profiles import observed, profile_config, profile_name, sweep

from repro.sim.experiments import format_rows, run_figure9


def test_fig09_window_size(benchmark, capsys):
    config = profile_config()
    ratios = sweep("window_ratios")

    with observed(benchmark):
        rows = benchmark.pedantic(
            run_figure9, args=(config,), kwargs={"window_ratios": ratios},
            rounds=1, iterations=1,
        )

    with capsys.disabled():
        print()
        print(
            format_rows(
                rows,
                title=(
                    f"Figure 9 (profile={profile_name()}): range-query KL "
                    "divergence vs query window size"
                ),
            )
        )

    assert len(rows) == len(ratios)
    # Shape: PF below SM on average across the sweep.
    mean_pf = sum(r["range_kl_pf"] for r in rows) / len(rows)
    mean_sm = sum(r["range_kl_sm"] for r in rows) / len(rows)
    assert mean_pf < mean_sm
