"""Figure 11 — impact of the number of particles.

Regenerates all three panels of the paper's Figure 11 for particle counts
from 2 to 512: (a) range-query KL divergence, (b) kNN hit rate, (c)
top-1/top-2 success rate. Expected shape (paper Section 5.4): with very
few particles PF is worse than SM; PF overtakes SM around 8 particles and
plateaus beyond ~64 (which is why 64 is the paper's default).
"""

from _profiles import observed, profile_config, profile_name, sweep

from repro.sim.experiments import format_rows, run_figure11


def test_fig11_num_particles(benchmark, capsys):
    config = profile_config()
    counts = sweep("particles")

    with observed(benchmark):
        rows = benchmark.pedantic(
            run_figure11, args=(config,), kwargs={"particle_counts": counts},
            rounds=1, iterations=1,
        )

    with capsys.disabled():
        print()
        print(
            format_rows(
                rows,
                title=(
                    f"Figure 11 (profile={profile_name()}): KL / hit rate / "
                    "top-k success vs number of particles"
                ),
            )
        )

    assert len(rows) == len(counts)
    by_count = {r["num_particles"]: r for r in rows}
    large = max(counts)
    small = min(counts)
    # Shape: more particles => no worse KL; large counts beat SM.
    assert by_count[large]["range_kl_pf"] <= by_count[small]["range_kl_pf"]
    assert by_count[large]["range_kl_pf"] < by_count[large]["range_kl_sm"]
    # Top-2 dominates top-1 everywhere.
    for row in rows:
        assert row["top2_success"] >= row["top1_success"]
