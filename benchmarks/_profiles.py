"""Benchmark profiles.

Two profiles control how much simulation each figure bench runs:

* ``quick`` (default) — laptop-friendly: fewer objects, shorter runs,
  fewer query repetitions. Reproduces the *shape* of every figure in a
  few minutes total.
* ``paper`` — the paper's Table 2 workload (200 objects, long runs, many
  query repetitions). Select with ``REPRO_BENCH_PROFILE=paper``.

Both profiles use the same floor plan, reader deployment, and algorithms;
only the sampling effort differs.

The module also hosts the shared observability glue for every bench:
:func:`observed` enables :mod:`repro.obs` around a benchmarked run and
attaches the recorded per-phase breakdown (histograms, span rollups, and
counters) to the bench JSON via ``benchmark.extra_info`` — so a
``--benchmark-json`` artifact explains *where* the time went instead of
one opaque elapsed number.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro import obs
from repro.config import DEFAULT_CONFIG, SimulationConfig

QUICK = DEFAULT_CONFIG.with_overrides(
    num_objects=40,
    duration_seconds=120,
    warmup_seconds=40,
    num_query_timestamps=3,
    num_range_queries=8,
    num_knn_queries=5,
)

PAPER = DEFAULT_CONFIG.with_overrides(
    duration_seconds=300,
    warmup_seconds=60,
    num_query_timestamps=10,
    num_range_queries=20,
    num_knn_queries=10,
)

_SWEEPS = {
    "quick": {
        "window_ratios": (0.01, 0.02, 0.03, 0.04, 0.05),
        "ks": (2, 3, 5, 7, 9),
        "particles": (2, 8, 32, 64, 256),
        "objects": (40, 80, 160),
        "ranges": (0.5, 1.0, 1.5, 2.0, 2.5),
    },
    "paper": {
        "window_ratios": (0.01, 0.02, 0.03, 0.04, 0.05),
        "ks": (2, 3, 4, 5, 6, 7, 8, 9),
        "particles": (2, 4, 8, 16, 32, 64, 128, 256, 512),
        "objects": (200, 400, 600, 800, 1000),
        "ranges": (0.5, 1.0, 1.5, 2.0, 2.5),
    },
}


def profile_name() -> str:
    """The active profile name (``REPRO_BENCH_PROFILE``, default quick)."""
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick")
    if name not in _SWEEPS:
        raise ValueError(
            f"unknown REPRO_BENCH_PROFILE={name!r}; use 'quick' or 'paper'"
        )
    return name


def profile_config() -> SimulationConfig:
    """The active profile's base configuration."""
    return PAPER if profile_name() == "paper" else QUICK


def sweep(key: str):
    """A figure's sweep values under the active profile."""
    return _SWEEPS[profile_name()][key]


# ----------------------------------------------------------------------
# observability glue (shared by every bench)
# ----------------------------------------------------------------------
def stopwatch() -> obs.Stopwatch:
    """The shared section timer benches use instead of ad-hoc
    ``time.perf_counter()`` loops: accumulates elapsed wall-clock over
    any number of ``with`` sections (``.total``, ``.laps``)."""
    return obs.stopwatch()


def record_phase_breakdown(benchmark, **extra) -> None:
    """Attach the live :mod:`repro.obs` breakdown to the bench JSON.

    Stores per-phase timing histograms, span rollups, and event counters
    under ``benchmark.extra_info`` so ``--benchmark-json`` output carries
    the full cost structure of the run.
    """
    snap = obs.snapshot()
    benchmark.extra_info["profile"] = profile_name()
    benchmark.extra_info["phases"] = {
        h["name"]: {
            k: h[k] for k in ("count", "total", "mean", "p50", "p90", "p99")
        }
        for h in snap["metrics"]["histograms"]
    }
    benchmark.extra_info["spans"] = {
        a["name"]: {k: a[k] for k in ("count", "total", "mean")}
        for a in snap["trace"]["aggregates"]
    }
    benchmark.extra_info["counters"] = {
        c["name"]: c["value"] for c in snap["metrics"]["counters"]
    }
    benchmark.extra_info.update(extra)


@contextmanager
def observed(benchmark, **extra):
    """Enable observability around a benchmarked run and record it.

    Usage::

        with observed(benchmark):
            rows = benchmark.pedantic(run_figure9, ...)
    """
    obs.enable()
    try:
        yield
    finally:
        obs.disable()
        record_phase_breakdown(benchmark, **extra)
