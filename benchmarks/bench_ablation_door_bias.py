"""Ablation — particle door-entry bias (DESIGN.md motion-model choice).

The paper's motion model picks "a random direction at intersections"; at
a door node that means a ~50 % chance of turning into the room. DESIGN.md
exposes this as ``door_entry_probability``. This ablation sweeps the bias
and shows its effect on range-query KL and top-k success, backing the 0.5
default (the paper's literal uniform choice).
"""

from _profiles import profile_config, profile_name

from repro.sim import evaluate_accuracy
from repro.sim.experiments import format_rows

BIASES = (0.1, 0.3, 0.5, 0.7)


def _run(config):
    rows = []
    for bias in BIASES:
        report = evaluate_accuracy(
            config.with_overrides(door_entry_probability=bias),
            measure_knn=False,
        )
        rows.append(report.as_row(door_entry_probability=bias))
    return rows


def test_ablation_door_bias(benchmark, capsys):
    config = profile_config()
    rows = benchmark.pedantic(_run, args=(config,), rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            format_rows(
                rows,
                title=(
                    f"Ablation (profile={profile_name()}): particle "
                    "door-entry probability"
                ),
            )
        )

    assert len(rows) == len(BIASES)
    for row in rows:
        assert row["range_kl_pf"] is not None
