"""Ablation — cache management module (paper Section 4.5).

The cache is optional for functionality but "will improve the query
evaluation performance if queries are frequent". This ablation times a
sequence of snapshot evaluations over consecutive timestamps with the
cache enabled and disabled, and reports the speedup plus hit statistics.
"""

from _profiles import observed, profile_config, profile_name, stopwatch
from repro.sim import Simulation
from repro.sim.experiments import format_rows


def _timed_snapshots(config, use_cache, rounds=10, gap_seconds=2):
    """Snapshot all objects every ``gap_seconds`` — the paper's "frequent
    queries" scenario where cached particle states pay off."""
    simulation = Simulation(config, use_cache=use_cache, build_symbolic=False)
    watch = stopwatch()
    for i in range(rounds):
        timestamp = config.warmup_seconds + i * gap_seconds
        simulation.run_until(timestamp)
        with watch:
            simulation.pf_engine.locations_snapshot(
                timestamp, rng=simulation.pf_rng
            )
    stats = simulation.pf_engine.cache.stats if use_cache else None
    return watch.total, stats


def test_ablation_cache(benchmark, capsys):
    config = profile_config()

    def run():
        with_cache, stats = _timed_snapshots(config, use_cache=True)
        without_cache, _ = _timed_snapshots(config, use_cache=False)
        return with_cache, without_cache, stats

    with observed(benchmark):
        with_cache, without_cache, stats = benchmark.pedantic(
            run, rounds=1, iterations=1
        )

    rows = [
        {
            "cache": "enabled",
            "filter_seconds": round(with_cache, 3),
            "hit_rate": round(stats.hit_rate, 3),
            "hits": stats.hits,
            "misses": stats.misses,
        },
        {
            "cache": "disabled",
            "filter_seconds": round(without_cache, 3),
            "hit_rate": None,
            "hits": None,
            "misses": None,
        },
    ]
    with capsys.disabled():
        print()
        print(
            format_rows(
                rows,
                title=(
                    f"Ablation (profile={profile_name()}): particle-state "
                    "cache effect on repeated snapshot evaluation"
                ),
            )
        )
        speedup = without_cache / max(with_cache, 1e-9)
        print(f"speedup with cache: {speedup:.2f}x")

    assert stats.hits > 0
    # Caching must not be slower than recomputing from scratch.
    assert with_cache <= without_cache * 1.1
