"""Micro-benchmarks of the system's hot operations.

These are classic pytest-benchmark timings (many rounds) of the kernels
everything else is built from: particle stepping, reweighting,
resampling, anchor snapping, network distances, and the two query
evaluation algorithms.
"""

import numpy as np
import pytest

from repro.core import (
    CompiledAnchors,
    CompiledGraph,
    DeviceSensingModel,
    GraphMotionModel,
    particles_to_anchor_distribution,
    systematic_resample,
)
from repro.floorplan import paper_office_plan
from repro.geometry import Point, Rect
from repro.graph import build_anchor_index, build_walking_graph
from repro.index import AnchorObjectTable
from repro.queries import KNNQuery, RangeQuery, evaluate_knn_query, evaluate_range_query
from repro.rfid import deploy_readers_uniform, reader_by_id


@pytest.fixture(scope="module")
def world():
    plan = paper_office_plan()
    graph = build_walking_graph(plan)
    anchors = build_anchor_index(graph, 1.0)
    readers = deploy_readers_uniform(plan, 19, 2.0)
    compiled = CompiledGraph(graph)
    compiled_anchors = CompiledAnchors(anchors)
    return plan, graph, anchors, readers, compiled, compiled_anchors


@pytest.fixture(scope="module")
def cloud(world):
    _, _, _, readers, compiled, _ = world
    motion = GraphMotionModel(compiled)
    rng = np.random.default_rng(0)
    particles = motion.initialize_in_circle(
        256, readers[0].detection_circle, rng
    )
    for _ in range(10):
        motion.step(particles, rng)
    return motion, particles


def test_bench_particle_step(benchmark, world, cloud):
    motion, particles = cloud
    rng = np.random.default_rng(1)
    benchmark(motion.step, particles, rng)


def test_bench_sensing_reweight(benchmark, world, cloud):
    _, _, _, readers, compiled, _ = world
    _, particles = cloud
    sensing = DeviceSensingModel(compiled, reader_by_id(readers))
    benchmark(sensing.reweight, particles, "d5")


def test_bench_systematic_resample(benchmark):
    rng = np.random.default_rng(2)
    weights = rng.random(256)
    benchmark(systematic_resample, weights, 256, rng)


def test_bench_anchor_snap(benchmark, world, cloud):
    _, _, _, _, compiled, compiled_anchors = world
    _, particles = cloud
    benchmark(
        particles_to_anchor_distribution, particles, compiled, compiled_anchors
    )


def test_bench_network_distance(benchmark, world):
    _, graph, _, _, _, _ = world
    loc_a, _ = graph.locate(Point(10, 5))
    loc_b, _ = graph.locate(Point(40, 27))
    benchmark(graph.distance, loc_a, loc_b)


def test_bench_locate(benchmark, world):
    _, graph, _, _, _, _ = world
    benchmark(graph.locate, Point(33.3, 17.2))


def _loaded_table(anchors, objects=200, rng_seed=3):
    rng = np.random.default_rng(rng_seed)
    table = AnchorObjectTable()
    all_anchors = anchors.anchors
    for i in range(objects):
        picks = rng.integers(0, len(all_anchors), size=6)
        masses = rng.random(6)
        masses /= masses.sum()
        table.set_distribution(
            f"o{i}",
            {int(all_anchors[p].ap_id): float(m) for p, m in zip(picks, masses)},
        )
    return table


def test_bench_range_query_eval(benchmark, world):
    plan, _, anchors, _, _, _ = world
    table = _loaded_table(anchors)
    query = RangeQuery("q", Rect(15, 3, 30, 12))
    benchmark(evaluate_range_query, query, plan, anchors, table)


def test_bench_knn_query_eval(benchmark, world):
    _, graph, anchors, _, _, _ = world
    table = _loaded_table(anchors)
    query = KNNQuery("q", Point(30, 5), k=3)
    benchmark(evaluate_knn_query, query, graph, anchors, table)
