"""Figure 13 — impact of the reader activation range.

Regenerates all three panels of the paper's Figure 13 for activation
ranges from 0.5 m to 2.5 m. Expected shape (paper Section 5.6): both
methods improve as the range grows (uncovered uncertain regions shrink);
PF retains usable accuracy even at small ranges and dominates SM.
"""

from _profiles import observed, profile_config, profile_name, sweep

from repro.sim.experiments import format_rows, run_figure13


def test_fig13_activation_range(benchmark, capsys):
    config = profile_config()
    ranges = sweep("ranges")

    with observed(benchmark):
        rows = benchmark.pedantic(
            run_figure13, args=(config,), kwargs={"activation_ranges": ranges},
            rounds=1, iterations=1,
        )

    with capsys.disabled():
        print()
        print(
            format_rows(
                rows,
                title=(
                    f"Figure 13 (profile={profile_name()}): KL / hit rate / "
                    "top-k success vs activation range (m)"
                ),
            )
        )

    assert len(rows) == len(ranges)
    by_range = {r["activation_range"]: r for r in rows}
    # Shape: the largest range is more accurate than the smallest, for
    # both methods; PF beats SM at the default range.
    assert by_range[2.5]["range_kl_pf"] <= by_range[0.5]["range_kl_pf"]
    assert by_range[2.0]["range_kl_pf"] < by_range[2.0]["range_kl_sm"]
