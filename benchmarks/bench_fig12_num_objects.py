"""Figure 12 — impact of the number of moving objects (scalability).

Regenerates all three panels of the paper's Figure 12: KL divergence,
kNN hit rate, and top-k success for growing object populations. Expected
shape (paper Section 5.5): KL and top-k success stay roughly stable; the
kNN hit rate of *both* methods degrades as more objects crowd the same
space; PF stays above SM throughout.
"""

from _profiles import observed, profile_config, profile_name, sweep

from repro.sim.experiments import format_rows, run_figure12


def test_fig12_num_objects(benchmark, capsys):
    config = profile_config()
    counts = sweep("objects")

    with observed(benchmark):
        rows = benchmark.pedantic(
            run_figure12, args=(config,), kwargs={"object_counts": counts},
            rounds=1, iterations=1,
        )

    with capsys.disabled():
        print()
        print(
            format_rows(
                rows,
                title=(
                    f"Figure 12 (profile={profile_name()}): KL / hit rate / "
                    "top-k success vs number of moving objects"
                ),
            )
        )

    assert len(rows) == len(counts)
    for row in rows:
        assert row["range_kl_pf"] < row["range_kl_sm"]
        assert row["knn_hit_pf"] > row["knn_hit_sm"]
