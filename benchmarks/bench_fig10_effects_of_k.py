"""Figure 10 — effects of k on kNN query accuracy.

Regenerates the paper's Figure 10 series: average kNN hit rate of both
methods for k = 2..9. Expected shape (paper Section 5.3): the PF hit rate
is high and stable in k and always above the SM hit rate, which grows
slowly with k.
"""

from _profiles import observed, profile_config, profile_name, sweep

from repro.sim.experiments import format_rows, run_figure10


def test_fig10_effects_of_k(benchmark, capsys):
    config = profile_config()
    ks = sweep("ks")

    with observed(benchmark):
        rows = benchmark.pedantic(
            run_figure10, args=(config,), kwargs={"ks": ks}, rounds=1, iterations=1
        )

    with capsys.disabled():
        print()
        print(
            format_rows(
                rows,
                title=(
                    f"Figure 10 (profile={profile_name()}): kNN average hit "
                    "rate vs k"
                ),
            )
        )

    assert len(rows) == len(ks)
    mean_pf = sum(r["knn_hit_pf"] for r in rows) / len(rows)
    mean_sm = sum(r["knn_hit_sm"] for r in rows) / len(rows)
    assert mean_pf > mean_sm
