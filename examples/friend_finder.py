#!/usr/bin/env python3
"""Friend finder: continuous kNN over a moving crowd.

The paper's motivating application (Section 1): "users will have more and
more demand for launching spatial queries for finding friends or Points
Of Interest in indoor places." This example tracks one user ("you")
walking through the building and repeatedly asks: *who are the 3 people
nearest to me right now?* — comparing the particle filter engine against
the symbolic model baseline and ground truth at every step.

Run:  python examples/friend_finder.py
"""

from repro import DEFAULT_CONFIG, Simulation
from repro.sim import knn_hit_rate, true_knn_result

K = 3
QUERY_EVERY = 15  # seconds
ROUNDS = 8


def main() -> None:
    config = DEFAULT_CONFIG.with_overrides(num_objects=40, seed=11)
    sim = Simulation(config)
    sim.run_for(config.warmup_seconds)

    # "You" are object o1; everyone else is a potential friend.
    you = sim.trace.objects[0]
    print(f"tracking {you.object_id}; asking {K}NN every {QUERY_EVERY} s\n")
    print(f"{'t':>4}  {'your true position':>22}  "
          f"{'PF answer':<22} {'hit rate PF':>11} {'hit rate SM':>11}")

    pf_rates = []
    sm_rates = []
    for _ in range(ROUNDS):
        sim.run_for(QUERY_EVERY)
        now = sim.now
        your_position = sim.graph.point_of(you.location)

        others = {
            obj: loc for obj, loc in sim.true_locations().items()
            if obj != you.object_id
        }
        truth = true_knn_result(your_position, others, sim.graph, K)

        pf = sim.pf_engine.knn_query(your_position, K, now, rng=sim.pf_rng)
        sm = sim.sm_engine.knn_query(your_position, K, now)
        pf_returned = [o for o in pf.objects() if o != you.object_id]
        sm_returned = [o for o in sm.top(K + 1) if o != you.object_id][:K]

        pf_rate = knn_hit_rate(pf_returned, truth)
        sm_rate = knn_hit_rate(sm_returned, truth)
        pf_rates.append(pf_rate)
        sm_rates.append(sm_rate)

        top = ", ".join(o for o, _ in pf.ranked() if o != you.object_id)[:28]
        print(
            f"{now:>4}  ({your_position.x:7.2f}, {your_position.y:6.2f})"
            f"        {top:<22} {pf_rate:>11.2f} {sm_rate:>11.2f}"
        )

    print(
        f"\naverage hit rate over {ROUNDS} rounds: "
        f"PF {sum(pf_rates) / len(pf_rates):.2f}  "
        f"SM {sum(sm_rates) / len(sm_rates):.2f}"
    )


if __name__ == "__main__":
    main()
