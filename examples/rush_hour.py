#!/usr/bin/env python3
"""Rush hour: a changing population entering through the building doors.

The paper's motivating settings (subway stations, malls — Section 1)
have people streaming in and out, unlike the fixed population of its
evaluation. This example uses the arrival-scenario generator: 40 people
enter through two entrances over a minute, wander, and leave after a
stay. The tracking system must handle objects it has never seen and
objects that silently left.

Run:  python examples/rush_hour.py
"""

from repro import DEFAULT_CONFIG
from repro.collector import EventDrivenCollector
from repro.geometry import Point
from repro.graph import build_anchor_index, build_walking_graph
from repro.floorplan import paper_office_plan
from repro.rfid import deploy_readers_uniform
from repro.rfid.detection import DetectionModel
from repro.rng import child_rng
from repro.sim import (
    ArrivalTraceGenerator,
    rush_hour_arrivals,
    tracking_statistics,
)

ENTRANCES = [Point(4, 5), Point(60, 27)]


def main() -> None:
    config = DEFAULT_CONFIG
    plan = paper_office_plan()
    graph = build_walking_graph(plan)
    build_anchor_index(graph)  # warm cache parity with full engine setups
    readers = deploy_readers_uniform(plan, config.num_readers, config.activation_range)

    generator = ArrivalTraceGenerator(
        graph,
        config,
        arrivals=rush_hour_arrivals(start=5, duration=60, total=40),
        entry_points=ENTRANCES,
        rng=child_rng(config.seed, "rush-trace"),
        departure_after=90,
    )
    detection = DetectionModel(
        readers,
        detection_probability=config.detection_probability,
        samples_per_second=config.samples_per_second,
    )
    collector = EventDrivenCollector({})
    reading_rng = child_rng(config.seed, "rush-readings")

    print("t    inside  observed  in-range  departed")
    for second in range(1, 241):
        generator.step()
        collector.register_tags(generator.tag_to_object())
        readings = detection.sample_second(
            second, generator.tag_positions(), rng=reading_rng
        )
        collector.ingest_second(second, readings)
        if second % 20 == 0:
            stats = tracking_statistics(collector, second, generator.total_spawned)
            print(
                f"{second:<4} {generator.population:>6} {stats.observed_objects:>9} "
                f"{stats.currently_detected:>9} {len(generator.departed):>9}"
            )

    print(
        f"\nof {generator.total_spawned} people who entered, "
        f"{len(generator.departed)} left again; the collector observed "
        f"{len(collector.observed_objects())} of them at least once."
    )


if __name__ == "__main__":
    main()
