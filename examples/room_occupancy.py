#!/usr/bin/env python3
"""Room occupancy dashboard: probabilistic range queries over every room.

A facilities-management view of the paper's system: with readers only in
hallways (privacy!), estimate how many people are in each room, using the
room boundary as a range-query window. Shows the paper's core point —
noisy, hallway-only RFID readings still support room-level occupancy
estimates once cleansed by the particle filter.

Run:  python examples/room_occupancy.py
"""

from repro import DEFAULT_CONFIG, Simulation
from repro.sim import true_range_result


def main() -> None:
    # People linger in rooms for 10-30 s here (the paper's trace
    # generator never dwells; this example turns dwelling on to make
    # occupancy interesting).
    config = DEFAULT_CONFIG.with_overrides(
        num_objects=60, seed=23, min_dwell_seconds=10.0, max_dwell_seconds=30.0
    )
    sim = Simulation(config)

    print("simulating 3 minutes of an office floor with 60 people ...\n")
    sim.run_for(180)
    now = sim.now

    positions = sim.true_positions()

    # One range query per room, evaluated in a single engine round so the
    # particle filter runs once per candidate object.
    from repro.queries import RangeQuery

    engine = sim.pf_engine
    engine.clear_queries()
    rooms = sim.plan.rooms
    for room in rooms:
        engine.register_range_query(RangeQuery(room.room_id, room.boundary))
    snapshot = engine.evaluate(now, rng=sim.pf_rng)
    engine.clear_queries()

    print(f"{'room':>5} {'expected':>9} {'actual':>7}  occupancy bar")
    total_expected = 0.0
    total_actual = 0
    for room in rooms:
        result = snapshot.range_results[room.room_id]
        expected = sum(result.probabilities.values())
        actual = len(true_range_result(room.boundary, positions))
        total_expected += expected
        total_actual += actual
        bar = "#" * int(round(expected * 2))
        flag = "" if abs(expected - actual) < 1.0 else "  <- off"
        print(f"{room.room_id:>5} {expected:>9.2f} {actual:>7d}  {bar}{flag}")

    hallway_actual = len(positions) - total_actual
    print(
        f"\ntotals: expected in rooms {total_expected:.1f}, actually in rooms "
        f"{total_actual}, in hallways {hallway_actual}"
    )
    error = abs(total_expected - total_actual)
    print(f"absolute error on the room total: {error:.1f} people")


if __name__ == "__main__":
    main()
