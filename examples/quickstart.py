#!/usr/bin/env python3
"""Quickstart: track objects and ask indoor spatial queries.

Builds the paper's office floor (30 rooms, 4 hallways, 19 RFID readers),
simulates a small crowd walking around for two minutes, then answers one
range query and one kNN query with the particle filter-based engine and
compares the answers to the ground truth.

Run:  python examples/quickstart.py
"""

from repro import DEFAULT_CONFIG, Simulation
from repro.geometry import Point, Rect
from repro.sim import true_knn_result, true_range_result


def main() -> None:
    config = DEFAULT_CONFIG.with_overrides(num_objects=30, seed=42)
    sim = Simulation(config)

    print(f"floor plan: {sim.plan}")
    print(f"walking graph: {sim.graph}")
    print(f"anchor points: {len(sim.anchor_index)}")
    print(f"readers: {len(sim.readers)} (activation range "
          f"{config.activation_range} m)\n")

    print("simulating 120 seconds of movement and RFID readings ...")
    sim.run_for(120)
    now = sim.now

    # --- range query: who is in the lower-left quadrant of the building?
    window = Rect(4, 0, 30, 12)
    result = sim.pf_engine.range_query(window, now, rng=sim.pf_rng)
    truth = true_range_result(window, sim.true_positions())

    print(f"\nRange query {window}:")
    print(f"  ground truth ({len(truth)} objects): {sorted(truth)}")
    print("  particle filter answer (top 8 by probability):")
    for object_id, probability in result.top(8):
        marker = "*" if object_id in truth else " "
        print(f"   {marker} {object_id}: {probability:.3f}")

    # --- kNN query: the 3 objects nearest to the middle of the bottom hallway.
    query_point = Point(32, 5)
    knn = sim.pf_engine.knn_query(query_point, 3, now, rng=sim.pf_rng)
    knn_truth = true_knn_result(query_point, sim.true_locations(), sim.graph, 3)

    print(f"\n3NN query at {query_point}:")
    print(f"  ground truth: {knn_truth}")
    print(f"  particle filter answer (sum of probabilities "
          f"{knn.total_probability:.2f}):")
    for object_id, probability in knn.ranked()[:6]:
        marker = "*" if object_id in knn_truth else " "
        print(f"   {marker} {object_id}: {probability:.3f}")

    hits = len(set(knn.objects()) & set(knn_truth))
    print(f"\nkNN hit rate: {hits}/{len(knn_truth)}")


if __name__ == "__main__":
    main()
