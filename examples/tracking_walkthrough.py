#!/usr/bin/env python3
"""Walkthrough of the inference pipeline for a single tracked object.

Reproduces the narrative of the paper's Figure 1, step by step and
without the simulator: a person walks down a hallway past readers d2 and
d3; we feed the raw readings through the event-driven collector and the
particle filter, and watch the posterior sharpen — including the
direction inference after the second reader (the paper's key example of
why particle filters beat the symbolic model).

Run:  python examples/tracking_walkthrough.py
"""

import numpy as np

from repro import DEFAULT_CONFIG
from repro.core import (
    CompiledAnchors,
    CompiledGraph,
    ParticleFilter,
    particles_to_anchor_distribution,
)
from repro.collector import EventDrivenCollector
from repro.floorplan import small_test_plan
from repro.geometry import Point
from repro.graph import build_anchor_index, build_walking_graph
from repro.rfid import RFIDReader
from repro.rfid.readings import RawReading


def describe(distribution, anchors, graph, true_x):
    """One-line summary of an anchor distribution."""
    if not distribution:
        return "(no mass)"
    mean_x = sum(anchors.anchor(ap).point.x * p for ap, p in distribution.items())
    mode = max(distribution, key=distribution.get)
    mode_point = anchors.anchor(mode).point
    right = sum(
        p for ap, p in distribution.items() if anchors.anchor(ap).point.x > true_x - 2
    )
    return (
        f"mean x = {mean_x:5.2f}, mode = ({mode_point.x:.1f}, {mode_point.y:.1f}), "
        f"mass not behind the person: {right:.2f}"
    )


def main() -> None:
    plan = small_test_plan()
    graph = build_walking_graph(plan)
    anchors = build_anchor_index(graph, 1.0)
    readers = {
        "d1": RFIDReader("d1", Point(3.0, 5.0), 2.0, "H1"),
        "d2": RFIDReader("d2", Point(10.0, 5.0), 2.0, "H1"),
        "d3": RFIDReader("d3", Point(17.0, 5.0), 2.0, "H1"),
    }
    compiled = CompiledGraph(graph)
    compiled_anchors = CompiledAnchors(anchors)
    pf = ParticleFilter(compiled, readers, DEFAULT_CONFIG)
    collector = EventDrivenCollector({"tag1": "o1"})

    # The person walks right at ~1 m/s starting at x=9 (inside d2's range).
    print("true trajectory: x = 9 + t (hallway y=5), readers at x=3, 10, 17\n")
    rng = np.random.default_rng(1)
    for second in range(0, 11):
        x = 9.0 + second
        readings = [
            RawReading(second + 0.5, "tag1", r.reader_id)
            for r in readers.values()
            if r.covers(Point(x, 5.0))
        ]
        collector.ingest_second(second, readings)

        history = collector.history("o1")
        if history.is_empty:
            continue
        result = pf.run(history, current_second=second, rng=rng)
        distribution = particles_to_anchor_distribution(
            result.particles, compiled, compiled_anchors
        )
        seen = history.reading_at(second) or "-- silent --"
        print(
            f"t={second:2d}  true x={x:4.1f}  reader: {seen:12s} "
            f"{describe(distribution, anchors, graph, x)}"
        )

    events = ", ".join(
        f"{e.kind.value}@{e.reader_id}:t={e.second}" for e in collector.events()
    )
    print(f"\ncollector events: {events}")
    history = collector.history("o1")
    print(
        f"retained runs: {[(run.reader_id, run.seconds) for run in history.runs]}"
    )
    print(
        "\nNote how after t=8 (leaving d3) the posterior keeps moving right\n"
        "instead of spreading symmetrically — the filter inferred the walking\n"
        "direction from the d2 -> d3 reading sequence (paper Figure 1)."
    )


if __name__ == "__main__":
    main()
