#!/usr/bin/env python3
"""Localization error analysis: why the particle filter wins.

Runs both inference methods on the same simulated world and breaks
localization error down by *staleness* (seconds since the object's last
RFID detection). The particle filter's direction/speed dead-reckoning
keeps the error low through silent stretches; the symbolic model's
uniform spreading does not. Finishes with an ASCII heat map of one
object's inferred distribution against its true position.

Run:  python examples/localization_analysis.py
"""

from repro import DEFAULT_CONFIG, Simulation
from repro.sim import (
    by_staleness_bucket,
    hallway_coverage_fraction,
    localization_samples,
    tracking_statistics,
)
from repro.viz import render_distribution


def main() -> None:
    config = DEFAULT_CONFIG.with_overrides(num_objects=40, seed=17)
    sim = Simulation(config)

    coverage = hallway_coverage_fraction(sim.plan, sim.readers)
    print(
        f"deployment: {len(sim.readers)} readers, activation range "
        f"{config.activation_range} m, hallway coverage {coverage:.0%}\n"
    )

    pf_samples = []
    sm_samples = []
    for timestamp in (80, 120, 160, 200):
        sim.run_until(timestamp)
        truth = sim.true_positions()
        staleness = dict(
            zip(
                sim.pf_engine.collector.observed_objects(),
                [
                    timestamp - sim.pf_engine.collector.last_detection(o)[1]
                    for o in sim.pf_engine.collector.observed_objects()
                ],
            )
        )
        pf_table = sim.pf_engine.locations_snapshot(timestamp, rng=sim.pf_rng)
        sm_table = sim.sm_engine.locations_snapshot(timestamp)
        pf_samples += localization_samples(
            pf_table, sim.anchor_index, truth, staleness, timestamp
        )
        sm_samples += localization_samples(
            sm_table, sim.anchor_index, truth, staleness, timestamp
        )

    stats = tracking_statistics(
        sim.pf_engine.collector, sim.now, config.num_objects
    )
    print(
        f"tracking state at t={sim.now}: {stats.observed_objects}/"
        f"{stats.num_objects} observed, {stats.detected_fraction:.0%} "
        f"currently in range, median staleness "
        f"{stats.median_staleness:.0f} s\n"
    )

    print("mean localization error (m) by staleness, PF vs SM:")
    print(f"{'staleness':>10} {'n':>5} {'PF mode':>8} {'SM mode':>8} "
          f"{'PF E[err]':>10} {'SM E[err]':>10}")
    pf_buckets = by_staleness_bucket(pf_samples)
    sm_buckets = by_staleness_bucket(sm_samples)
    for bucket in pf_buckets:
        pf = pf_buckets[bucket]
        sm = sm_buckets[bucket]
        if pf is None or sm is None:
            continue
        print(
            f"{bucket:>10} {pf.count:>5} {pf.mean_mode_error:>8.2f} "
            f"{sm.mean_mode_error:>8.2f} {pf.mean_expected_error:>10.2f} "
            f"{sm.mean_expected_error:>10.2f}"
        )

    # Heat map of the most-silent object's PF distribution.
    table = sim.pf_engine.locations_snapshot(sim.now, rng=sim.pf_rng)
    objects = table.objects()
    chosen = max(
        objects,
        key=lambda o: sim.now - sim.pf_engine.collector.last_detection(o)[1],
    )
    truth = sim.true_positions()[chosen]
    silent_for = sim.now - sim.pf_engine.collector.last_detection(chosen)[1]
    print(
        f"\nparticle filter distribution of {chosen} "
        f"(silent for {silent_for} s; X marks the true position):\n"
    )
    print(
        render_distribution(
            sim.plan,
            sim.anchor_index,
            table.distribution_of(chosen),
            true_position=truth,
            columns=88,
        )
    )


if __name__ == "__main__":
    main()
