#!/usr/bin/env python3
"""Security desk: continuous monitoring plus closest-pair analysis.

Demonstrates the future-work extensions (paper Section 6) implemented in
this reproduction:

* a *continuous range query* watches a restricted zone and streams
  enter/leave deltas as people move;
* a *closest-pairs query* reports which two people are (expectedly)
  nearest to each other on the walking graph — e.g. for contact tracing.

Run:  python examples/security_monitoring.py
"""

from repro import DEFAULT_CONFIG, Simulation
from repro.geometry import Rect
from repro.queries import ContinuousQueryMonitor, evaluate_closest_pairs


def main() -> None:
    config = DEFAULT_CONFIG.with_overrides(num_objects=25, seed=5)
    sim = Simulation(config)
    sim.run_for(config.warmup_seconds)

    # Restricted zone: the top-right corner of the building.
    zone = Rect(44, 22, 60, 32)
    monitor = ContinuousQueryMonitor(
        sim.pf_engine, report_threshold=0.25, min_change=0.25
    )
    monitor.add_range_query("restricted-zone", zone)

    print(f"monitoring restricted zone {zone} every 10 s\n")
    for _ in range(8):
        sim.run_for(10)
        (delta,) = monitor.tick(sim.now, rng=sim.pf_rng)
        events = []
        events += [f"+{obj} (p={p:.2f})" for obj, p in sorted(delta.entered.items())]
        events += [f"-{obj}" for obj in delta.left]
        events += [f"~{obj} (p={p:.2f})" for obj, p in sorted(delta.updated.items())]
        line = ", ".join(events) if events else "(no change)"
        inside = sorted(monitor.current_result("restricted-zone"))
        print(f"t={sim.now:3d}  {line}")
        print(f"        currently inside: {inside if inside else '(nobody)'}")

    # Closest pair right now, from the filtered location distributions.
    table = sim.pf_engine.locations_snapshot(sim.now, rng=sim.pf_rng)
    pairs = evaluate_closest_pairs(
        sim.graph, sim.anchor_index, table, m=3
    )
    print("\nclosest pairs (expected walking distance):")
    for pair in pairs:
        print(
            f"  {pair.object_a} <-> {pair.object_b}: "
            f"{pair.expected_distance:.2f} m"
        )

    # Cross-check the top pair against the true positions.
    locations = sim.true_locations()
    top = pairs[0]
    true_distance = sim.graph.distance(
        locations[top.object_a], locations[top.object_b]
    )
    print(
        f"\ntrue walking distance of the top pair: {true_distance:.2f} m"
    )

    # Event query: are the top pair meeting inside the restricted zone?
    from repro.queries import EventContext, InZone, Near

    context = EventContext(sim.plan, sim.graph, sim.anchor_index, table)
    meeting = (
        InZone(top.object_a, zone)
        & InZone(top.object_b, zone)
        & Near(top.object_a, top.object_b, 3.0)
    )
    print(
        f"P({top.object_a} meeting {top.object_b} inside the restricted "
        f"zone) = {meeting.probability(context):.3f}"
    )


if __name__ == "__main__":
    main()
