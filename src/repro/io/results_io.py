"""Experiment result rows to CSV / JSON.

The experiment sweeps (:mod:`repro.sim.experiments`) produce lists of
flat dict rows; these helpers persist them for plotting or regression
tracking.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

PathLike = Union[str, Path]

Row = Dict[str, Any]


def save_rows_csv(rows: Sequence[Row], path: PathLike) -> None:
    """Write rows to CSV; the header is the union of all row keys."""
    if not rows:
        Path(path).write_text("", encoding="utf-8")
        return
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def save_rows_json(rows: Sequence[Row], path: PathLike) -> None:
    """Write rows to a JSON array."""
    Path(path).write_text(json.dumps(list(rows), indent=2), encoding="utf-8")


def load_rows_json(path: PathLike) -> List[Row]:
    """Read rows from a JSON array file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array of rows")
    return data
