"""Raw RFID reading logs as CSV or JSON Lines.

The CSV format matches what a reader middleware typically exports: one
row per detection sample, ``time,tag_id,reader_id``, sorted by time. The
JSONL variant stores the same three fields one JSON object per line —
the framing used by streaming middlewares that emit newline-delimited
events. ``load_readings`` dispatches on file extension so replay tooling
(``repro serve --replay``) accepts either.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.rfid.readings import RawReading

PathLike = Union[str, Path]

_HEADER = ["time", "tag_id", "reader_id"]


def write_readings_csv(readings: Iterable[RawReading], path: PathLike) -> None:
    """Write raw readings to a CSV file (header + one row per sample)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for reading in readings:
            writer.writerow([f"{reading.time:.6f}", reading.tag_id, reading.reader_id])


def read_readings_csv(path: PathLike) -> List[RawReading]:
    """Read raw readings from a CSV file, validating the header and rows."""
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty readings file") from None
        if header != _HEADER:
            raise ValueError(
                f"{path}: unexpected header {header!r}; expected {_HEADER!r}"
            )
        readings = []
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise ValueError(
                    f"{path}:{line_number}: expected 3 columns, got {len(row)}"
                )
            time_text, tag_id, reader_id = row
            try:
                time = float(time_text)
            except ValueError:
                raise ValueError(
                    f"{path}:{line_number}: bad time value {time_text!r}"
                ) from None
            readings.append(RawReading(time=time, tag_id=tag_id, reader_id=reader_id))
    readings.sort()
    return readings


def write_readings_jsonl(readings: Iterable[RawReading], path: PathLike) -> None:
    """Write raw readings as JSON Lines (one object per sample)."""
    with open(path, "w", encoding="utf-8") as handle:
        for reading in readings:
            handle.write(
                json.dumps(
                    {
                        "time": round(reading.time, 6),
                        "tag_id": reading.tag_id,
                        "reader_id": reading.reader_id,
                    }
                )
            )
            handle.write("\n")


def read_readings_jsonl(path: PathLike) -> List[RawReading]:
    """Read raw readings from a JSON Lines file, validating each record."""
    readings = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: bad JSON: {exc}") from None
            try:
                reading = RawReading(
                    time=float(record["time"]),
                    tag_id=str(record["tag_id"]),
                    reader_id=str(record["reader_id"]),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: bad reading record: {exc}"
                ) from None
            readings.append(reading)
    readings.sort()
    return readings


def load_readings(path: PathLike) -> List[RawReading]:
    """Load a reading log, dispatching on extension (.csv or .jsonl/.ndjson)."""
    suffix = Path(path).suffix.lower()
    if suffix in (".jsonl", ".ndjson"):
        return read_readings_jsonl(path)
    if suffix == ".csv":
        return read_readings_csv(path)
    raise ValueError(
        f"{path}: unsupported reading-log extension {suffix!r} "
        "(expected .csv, .jsonl, or .ndjson)"
    )


def group_readings_by_second(readings: Iterable[RawReading]):
    """Yield ``(second, [readings])`` batches in time order.

    Convenience for replaying a log file into a collector or engine::

        for second, batch in group_readings_by_second(read_readings_csv(p)):
            engine.ingest_second(second, batch)
    """
    batches = {}
    for reading in readings:
        batches.setdefault(int(reading.time), []).append(reading)
    for second in sorted(batches):
        yield second, sorted(batches[second])
