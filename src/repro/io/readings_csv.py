"""Raw RFID reading logs as CSV.

The on-disk format matches what a reader middleware typically exports:
one row per detection sample, ``time,tag_id,reader_id``, sorted by time.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Union

from repro.rfid.readings import RawReading

PathLike = Union[str, Path]

_HEADER = ["time", "tag_id", "reader_id"]


def write_readings_csv(readings: Iterable[RawReading], path: PathLike) -> None:
    """Write raw readings to a CSV file (header + one row per sample)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for reading in readings:
            writer.writerow([f"{reading.time:.6f}", reading.tag_id, reading.reader_id])


def read_readings_csv(path: PathLike) -> List[RawReading]:
    """Read raw readings from a CSV file, validating the header and rows."""
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty readings file") from None
        if header != _HEADER:
            raise ValueError(
                f"{path}: unexpected header {header!r}; expected {_HEADER!r}"
            )
        readings = []
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise ValueError(
                    f"{path}:{line_number}: expected 3 columns, got {len(row)}"
                )
            time_text, tag_id, reader_id = row
            try:
                time = float(time_text)
            except ValueError:
                raise ValueError(
                    f"{path}:{line_number}: bad time value {time_text!r}"
                ) from None
            readings.append(RawReading(time=time, tag_id=tag_id, reader_id=reader_id))
    readings.sort()
    return readings


def group_readings_by_second(readings: Iterable[RawReading]):
    """Yield ``(second, [readings])`` batches in time order.

    Convenience for replaying a log file into a collector or engine::

        for second, batch in group_readings_by_second(read_readings_csv(p)):
            engine.ingest_second(second, batch)
    """
    batches = {}
    for reading in readings:
        batches.setdefault(int(reading.time), []).append(reading)
    for second in sorted(batches):
        yield second, sorted(batches[second])
