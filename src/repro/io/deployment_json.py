"""Reader deployment (de)serialization to JSON."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.geometry import Point
from repro.rfid.reader import RFIDReader

FORMAT_VERSION = 1

PathLike = Union[str, Path]


def deployment_to_dict(readers: Sequence[RFIDReader]) -> Dict[str, Any]:
    """Serialize a reader deployment to a JSON-compatible dict."""
    return {
        "format": "repro-deployment",
        "version": FORMAT_VERSION,
        "readers": [
            {
                "id": reader.reader_id,
                "position": [reader.position.x, reader.position.y],
                "activation_range": reader.activation_range,
                "hallway": reader.hallway_id,
            }
            for reader in readers
        ],
    }


def deployment_from_dict(data: Dict[str, Any]) -> List[RFIDReader]:
    """Deserialize a reader deployment (validates ranges and unique ids)."""
    if data.get("format") != "repro-deployment":
        raise ValueError(
            f"not a repro-deployment document (format={data.get('format')!r})"
        )
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported repro-deployment version {data.get('version')!r}"
        )
    readers = [
        RFIDReader(
            reader_id=entry["id"],
            position=Point(*entry["position"]),
            activation_range=float(entry["activation_range"]),
            hallway_id=entry.get("hallway", ""),
        )
        for entry in data.get("readers", [])
    ]
    seen = set()
    for reader in readers:
        if reader.reader_id in seen:
            raise ValueError(f"duplicate reader id {reader.reader_id!r}")
        seen.add(reader.reader_id)
    return readers


def save_deployment(readers: Sequence[RFIDReader], path: PathLike) -> None:
    """Write a deployment to a JSON file."""
    Path(path).write_text(
        json.dumps(deployment_to_dict(readers), indent=2), encoding="utf-8"
    )


def load_deployment(path: PathLike) -> List[RFIDReader]:
    """Read a deployment from a JSON file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return deployment_from_dict(data)
