"""Persistence: floor plans, reading logs, deployments, experiment rows.

A deployed tracking system needs its world model and its data streams on
disk: floor plans and reader deployments as JSON documents, raw RFID
reading logs as CSV (the format a real middleware would hand over), and
experiment results as CSV/JSON for analysis tooling.
"""

from repro.io.floorplan_json import (
    load_floorplan,
    floorplan_from_dict,
    floorplan_to_dict,
    save_floorplan,
)
from repro.io.deployment_json import (
    deployment_from_dict,
    deployment_to_dict,
    load_deployment,
    save_deployment,
)
from repro.io.readings_csv import (
    group_readings_by_second,
    load_readings,
    read_readings_csv,
    read_readings_jsonl,
    write_readings_csv,
    write_readings_jsonl,
)
from repro.io.results_io import (
    load_rows_json,
    save_rows_csv,
    save_rows_json,
)

__all__ = [
    "floorplan_to_dict",
    "floorplan_from_dict",
    "save_floorplan",
    "load_floorplan",
    "deployment_to_dict",
    "deployment_from_dict",
    "save_deployment",
    "load_deployment",
    "write_readings_csv",
    "read_readings_csv",
    "write_readings_jsonl",
    "read_readings_jsonl",
    "load_readings",
    "group_readings_by_second",
    "save_rows_csv",
    "save_rows_json",
    "load_rows_json",
]
