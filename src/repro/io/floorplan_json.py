"""Floor plan (de)serialization to JSON.

The document format is versioned and explicit: hallway centerlines with
widths, room rectangles with their doors. Loading re-validates everything
through the normal :class:`~repro.floorplan.FloorPlan` constructor, so a
hand-edited document that violates an invariant (overlapping rooms, door
off its wall) fails with the same errors as programmatic construction.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.floorplan.entities import Door, Hallway, Room
from repro.floorplan.plan import FloorPlan, FloorPlanError
from repro.geometry import Point, Rect, Segment

FORMAT_VERSION = 1

PathLike = Union[str, Path]


def floorplan_to_dict(plan: FloorPlan) -> Dict[str, Any]:
    """Serialize a floor plan to a JSON-compatible dict."""
    return {
        "format": "repro-floorplan",
        "version": FORMAT_VERSION,
        "hallways": [
            {
                "id": h.hallway_id,
                "start": [h.centerline.a.x, h.centerline.a.y],
                "end": [h.centerline.b.x, h.centerline.b.y],
                "width": h.width,
            }
            for h in plan.hallways
        ],
        "rooms": [
            {
                "id": room.room_id,
                "boundary": [
                    room.boundary.min_x,
                    room.boundary.min_y,
                    room.boundary.max_x,
                    room.boundary.max_y,
                ],
                "door": {
                    "id": room.door.door_id,
                    "hallway": room.door.hallway_id,
                    "position": [room.door.position.x, room.door.position.y],
                    "hallway_point": [
                        room.door.hallway_point.x,
                        room.door.hallway_point.y,
                    ],
                },
            }
            for room in plan.rooms
        ],
    }


def floorplan_from_dict(data: Dict[str, Any]) -> FloorPlan:
    """Deserialize and re-validate a floor plan."""
    _check_header(data, "repro-floorplan")
    hallways = [
        Hallway(
            hallway_id=entry["id"],
            centerline=Segment(
                Point(*entry["start"]), Point(*entry["end"])
            ),
            width=float(entry["width"]),
        )
        for entry in data.get("hallways", [])
    ]
    rooms = []
    for entry in data.get("rooms", []):
        door_data = entry["door"]
        door = Door(
            door_id=door_data["id"],
            room_id=entry["id"],
            hallway_id=door_data["hallway"],
            position=Point(*door_data["position"]),
            hallway_point=Point(*door_data["hallway_point"]),
        )
        rooms.append(
            Room(
                room_id=entry["id"],
                boundary=Rect(*entry["boundary"]),
                door=door,
            )
        )
    return FloorPlan(hallways, rooms)


def save_floorplan(plan: FloorPlan, path: PathLike) -> None:
    """Write a floor plan to a JSON file."""
    Path(path).write_text(
        json.dumps(floorplan_to_dict(plan), indent=2), encoding="utf-8"
    )


def load_floorplan(path: PathLike) -> FloorPlan:
    """Read and validate a floor plan from a JSON file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return floorplan_from_dict(data)


def _check_header(data: Dict[str, Any], expected_format: str) -> None:
    if data.get("format") != expected_format:
        raise FloorPlanError(
            f"not a {expected_format} document (format={data.get('format')!r})"
        )
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise FloorPlanError(
            f"unsupported {expected_format} version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
