"""The device sensing (measurement) model (paper Algorithm 2, lines 21-27).

On an observation by reader ``d``, particles within ``d``'s activation
range receive a high weight and all others a low weight; weights are then
normalized and the set is resampled.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.compiled import CompiledGraph
from repro.core.particles import ParticleSet
from repro.rfid.reader import RFIDReader


class DeviceSensingModel:
    """Binary in-range / out-of-range particle reweighting."""

    def __init__(
        self,
        compiled: CompiledGraph,
        readers: Mapping[str, RFIDReader],
        weight_hit: float = 0.9,
        weight_miss: float = 0.01,
    ):
        if weight_hit <= weight_miss:
            raise ValueError("weight_hit must exceed weight_miss")
        if weight_miss < 0:
            raise ValueError("weight_miss must be non-negative")
        self.compiled = compiled
        self.readers = dict(readers)
        self.weight_hit = weight_hit
        self.weight_miss = weight_miss

    def in_range_mask(self, particles: ParticleSet, reader_id: str) -> np.ndarray:
        """Boolean mask of particles inside ``reader_id``'s range."""
        reader = self.readers[reader_id]
        x, y = self.compiled.points(particles.edge, particles.offset)
        dx = x - reader.position.x
        dy = y - reader.position.y
        return dx * dx + dy * dy <= reader.activation_range ** 2 + 1e-12

    def in_any_range_mask(self, particles: ParticleSet) -> np.ndarray:
        """Boolean mask of particles inside *any* reader's range.

        Used by the negative-information extension: on a silent second,
        a particle standing in some reader's range is inconsistent with
        the absence of readings.
        """
        x, y = self.compiled.points(particles.edge, particles.offset)
        mask = np.zeros(len(particles), dtype=bool)
        for reader in self.readers.values():
            dx = x - reader.position.x
            dy = y - reader.position.y
            mask |= dx * dx + dy * dy <= reader.activation_range ** 2 + 1e-12
        return mask

    def reweight_negative(
        self, particles: ParticleSet, negative_likelihood: float
    ) -> np.ndarray:
        """Penalize particles that should have been detected but were not."""
        mask = self.in_any_range_mask(particles)
        particles.weight *= np.where(mask, negative_likelihood, 1.0)
        return mask

    def reweight(self, particles: ParticleSet, reader_id: str) -> np.ndarray:
        """Apply the observation likelihood for a reading from ``reader_id``.

        Returns the in-range mask so the filter can detect total particle
        depletion (no particle consistent with the observation).
        """
        mask = self.in_range_mask(particles, reader_id)
        particles.weight *= np.where(mask, self.weight_hit, self.weight_miss)
        return mask
