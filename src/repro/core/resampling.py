"""Resampling algorithms.

``systematic_resample`` is a direct implementation of the paper's
Algorithm 1 (the classic systematic/low-variance scheme of the SIR
filter): it builds the CDF of the weights, draws one uniform starting
point ``u1 ~ U[0, 1/Ns]``, and walks the CDF with stride ``1/Ns``.

Multinomial, stratified, and residual resampling are provided as
alternatives for the ablation benchmark (they are the standard choices in
the particle-filtering literature; see Arulampalam et al. 2002, the
paper's reference [1]).

All functions map ``(weights, n, rng)`` to an index array into the
original particle set; callers then use
:meth:`~repro.core.particles.ParticleSet.select`.
"""

from __future__ import annotations

import numpy as np

from repro.rng import RngLike, make_rng


def _validated(weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or len(weights) == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if (weights < 0).any():
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0 or not np.isfinite(total):
        raise ValueError("weights must have positive finite sum")
    return weights / total


def systematic_resample(weights: np.ndarray, n: int = None, rng: RngLike = None) -> np.ndarray:
    """Paper Algorithm 1: systematic resampling.

    Returns indices ``j`` such that index ``i`` appears approximately
    ``n * w_i`` times.
    """
    weights = _validated(weights)
    if n is None:
        n = len(weights)
    generator = make_rng(rng)
    cdf = np.cumsum(weights)
    cdf[-1] = 1.0  # guard against float drift
    u1 = generator.uniform(0.0, 1.0 / n)
    points = u1 + np.arange(n) / n
    return np.searchsorted(cdf, points, side="left").astype(np.int64)


def multinomial_resample(weights: np.ndarray, n: int = None, rng: RngLike = None) -> np.ndarray:
    """Multinomial resampling: n i.i.d. draws from the weight distribution."""
    weights = _validated(weights)
    if n is None:
        n = len(weights)
    generator = make_rng(rng)
    cdf = np.cumsum(weights)
    cdf[-1] = 1.0
    draws = generator.random(n)
    return np.searchsorted(cdf, draws, side="left").astype(np.int64)


def stratified_resample(weights: np.ndarray, n: int = None, rng: RngLike = None) -> np.ndarray:
    """Stratified resampling: one uniform draw inside each of n strata."""
    weights = _validated(weights)
    if n is None:
        n = len(weights)
    generator = make_rng(rng)
    cdf = np.cumsum(weights)
    cdf[-1] = 1.0
    points = (np.arange(n) + generator.random(n)) / n
    return np.searchsorted(cdf, points, side="left").astype(np.int64)


def residual_resample(weights: np.ndarray, n: int = None, rng: RngLike = None) -> np.ndarray:
    """Residual resampling: deterministic copies plus multinomial residue."""
    weights = _validated(weights)
    if n is None:
        n = len(weights)
    generator = make_rng(rng)
    scaled = n * weights
    copies = np.floor(scaled).astype(np.int64)
    indices = np.repeat(np.arange(len(weights)), copies)
    remainder = n - len(indices)
    if remainder > 0:
        residual = scaled - copies
        total = residual.sum()
        if total <= 0:
            extra = generator.integers(0, len(weights), size=remainder)
        else:
            cdf = np.cumsum(residual / total)
            cdf[-1] = 1.0
            extra = np.searchsorted(cdf, generator.random(remainder), side="left")
        indices = np.concatenate([indices, extra.astype(np.int64)])
    return indices[:n]


def effective_sample_size(weights: np.ndarray) -> float:
    """ESS = 1 / sum(w_i^2) for normalized weights.

    The standard degeneracy diagnostic: close to ``Ns`` when weights are
    uniform, close to 1 when one particle dominates.
    """
    weights = _validated(weights)
    return float(1.0 / np.sum(weights * weights))


RESAMPLERS = {
    "systematic": systematic_resample,
    "multinomial": multinomial_resample,
    "stratified": stratified_resample,
    "residual": residual_resample,
}
"""Registry used by the ablation benchmark and the filter constructor."""
