"""Vectorized particle state.

Each particle is a hypothesis of an object's state (paper Section 3.2):
its location on the walking graph (edge + offset), moving direction along
the edge, walking speed, whether it is dwelling inside a room, and its
importance weight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ParticleSet:
    """A set of particles stored as parallel numpy arrays.

    ``direction`` is +1 when moving from ``node_a`` toward ``node_b`` of
    the particle's edge, -1 otherwise. ``dwelling`` particles sit at a
    room node and ignore direction until they exit.
    """

    edge: np.ndarray        # int64, edge ids
    offset: np.ndarray      # float64, meters from node_a
    direction: np.ndarray   # int8, +1 / -1
    speed: np.ndarray       # float64, m/s
    dwelling: np.ndarray    # bool
    weight: np.ndarray      # float64, importance weights

    def __post_init__(self) -> None:
        n = len(self.edge)
        for name in ("offset", "direction", "speed", "dwelling", "weight"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"field {name!r} has mismatched length")

    def __len__(self) -> int:
        return len(self.edge)

    @classmethod
    def empty(cls, n: int) -> "ParticleSet":
        """Allocate an uninitialized set of ``n`` particles."""
        return cls(
            edge=np.zeros(n, dtype=np.int64),
            offset=np.zeros(n),
            direction=np.ones(n, dtype=np.int8),
            speed=np.ones(n),
            dwelling=np.zeros(n, dtype=bool),
            weight=np.full(n, 1.0 / max(n, 1)),
        )

    def copy(self) -> "ParticleSet":
        """Deep copy (used by the cache module)."""
        return ParticleSet(
            edge=self.edge.copy(),
            offset=self.offset.copy(),
            direction=self.direction.copy(),
            speed=self.speed.copy(),
            dwelling=self.dwelling.copy(),
            weight=self.weight.copy(),
        )

    def select(self, indices: np.ndarray) -> "ParticleSet":
        """A new set formed by rows ``indices`` with uniform weights.

        This is the "assign sample / assign weight" step of the paper's
        resampling Algorithm 1 (lines 13-14).
        """
        n = len(indices)
        return ParticleSet(
            edge=self.edge[indices].copy(),
            offset=self.offset[indices].copy(),
            direction=self.direction[indices].copy(),
            speed=self.speed[indices].copy(),
            dwelling=self.dwelling[indices].copy(),
            weight=np.full(n, 1.0 / max(n, 1)),
        )

    def to_state(self) -> dict:
        """Serialize to a JSON-safe dict of plain lists.

        Used by the service checkpoint module; :meth:`from_state` inverts
        it exactly (dtypes included), so a checkpoint/restore round trip
        preserves particle state bit-for-bit.
        """
        return {
            "edge": self.edge.tolist(),
            "offset": self.offset.tolist(),
            "direction": self.direction.tolist(),
            "speed": self.speed.tolist(),
            "dwelling": self.dwelling.tolist(),
            "weight": self.weight.tolist(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ParticleSet":
        """Rebuild a set from :meth:`to_state` output."""
        return cls(
            edge=np.asarray(state["edge"], dtype=np.int64),
            offset=np.asarray(state["offset"], dtype=np.float64),
            direction=np.asarray(state["direction"], dtype=np.int8),
            speed=np.asarray(state["speed"], dtype=np.float64),
            dwelling=np.asarray(state["dwelling"], dtype=bool),
            weight=np.asarray(state["weight"], dtype=np.float64),
        )

    def normalize_weights(self) -> None:
        """Scale weights to sum to 1 (Algorithm 2 line 28).

        When the total mass collapses to zero (numerically), falls back to
        uniform weights.
        """
        total = self.weight.sum()
        if total <= 0.0 or not np.isfinite(total):
            self.weight[:] = 1.0 / max(len(self), 1)
        else:
            self.weight /= total
