"""Flat numpy views of the walking graph for fast particle operations.

The :class:`~repro.graph.WalkingGraph` is an object graph convenient for
construction and queries; the particle filter steps thousands of particles
per second, so it works on these precompiled arrays instead.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.graph.anchors import AnchorIndex
from repro.graph.walking_graph import WalkingGraph


class CompiledGraph:
    """Array-of-structs encoding of a walking graph.

    Edges are indexed by their ``edge_id`` (which the builder assigns
    densely from 0). Polyline edges are flattened into a global leg table
    so that 2-D points for ``(edge, offset)`` pairs can be computed fully
    vectorized.
    """

    def __init__(self, graph: WalkingGraph):
        self.graph = graph
        edges = sorted(graph.edges, key=lambda e: e.edge_id)
        if [e.edge_id for e in edges] != list(range(len(edges))):
            raise ValueError("edge ids must be dense, starting at 0")

        nodes = graph.nodes
        self.node_ids: List[str] = [n.node_id for n in nodes]
        self.node_index: Dict[str, int] = {
            nid: i for i, nid in enumerate(self.node_ids)
        }
        self.node_is_room = np.array([n.is_room for n in nodes], dtype=bool)
        self.node_x = np.array([n.point.x for n in nodes])
        self.node_y = np.array([n.point.y for n in nodes])

        self.edge_length = np.array([e.length for e in edges])
        self.edge_is_door = np.array(
            [e.kind.value == "door" for e in edges], dtype=bool
        )
        self.edge_node_a = np.array(
            [self.node_index[e.node_a] for e in edges], dtype=np.int64
        )
        self.edge_node_b = np.array(
            [self.node_index[e.node_b] for e in edges], dtype=np.int64
        )

        # Adjacency: for each node, the incident edge ids.
        adjacency: List[List[int]] = [[] for _ in nodes]
        for e in edges:
            adjacency[self.node_index[e.node_a]].append(e.edge_id)
            adjacency[self.node_index[e.node_b]].append(e.edge_id)
        self.adjacency: List[np.ndarray] = [
            np.array(eids, dtype=np.int64) for eids in adjacency
        ]

        # Flatten polyline legs. leg_ptr[e] .. leg_ptr[e+1] are edge e's legs.
        leg_ptr = [0]
        sx: List[float] = []
        sy: List[float] = []
        ux: List[float] = []
        uy: List[float] = []
        cum: List[float] = []  # offset at which each leg starts
        leg_len: List[float] = []
        for e in edges:
            consumed = 0.0
            for seg in e.path.segments:
                length = seg.length
                if length <= 1e-12:
                    continue
                sx.append(seg.a.x)
                sy.append(seg.a.y)
                ux.append((seg.b.x - seg.a.x) / length)
                uy.append((seg.b.y - seg.a.y) / length)
                cum.append(consumed)
                leg_len.append(length)
                consumed += length
            leg_ptr.append(len(sx))
        self.leg_ptr = np.array(leg_ptr, dtype=np.int64)
        self.leg_sx = np.array(sx)
        self.leg_sy = np.array(sy)
        self.leg_ux = np.array(ux)
        self.leg_uy = np.array(uy)
        self.leg_cum = np.array(cum)
        self.leg_len = np.array(leg_len)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self.edge_length)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.node_ids)

    def points(self, edge: np.ndarray, offset: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """2-D coordinates of ``(edge, offset)`` particle positions.

        Fully vectorized: finds each particle's polyline leg by walking the
        leg table (edges have at most a handful of legs; door spurs have
        two).
        """
        leg = self.leg_ptr[edge].copy()
        last = self.leg_ptr[edge + 1] - 1
        # Advance to the leg containing the offset.
        while True:
            beyond = (leg < last) & (
                offset > self.leg_cum[leg] + self.leg_len[leg] + 1e-12
            )
            if not beyond.any():
                break
            leg[beyond] += 1
        local = np.clip(offset - self.leg_cum[leg], 0.0, self.leg_len[leg])
        x = self.leg_sx[leg] + self.leg_ux[leg] * local
        y = self.leg_sy[leg] + self.leg_uy[leg] * local
        return x, y


class CompiledAnchors:
    """Anchor coordinates as arrays, for vectorized nearest-anchor snaps."""

    def __init__(self, anchor_index: AnchorIndex):
        self.anchor_index = anchor_index
        anchors = anchor_index.anchors
        self.ap_ids = np.array([a.ap_id for a in anchors], dtype=np.int64)
        self.x = np.array([a.point.x for a in anchors])
        self.y = np.array([a.point.y for a in anchors])

    def nearest(self, px: np.ndarray, py: np.ndarray) -> np.ndarray:
        """Ids of the anchor nearest to each input point.

        Computes the full distance matrix; with a few hundred anchors and
        at most a few hundred particles this is faster than any index.
        """
        dx = px[:, None] - self.x[None, :]
        dy = py[:, None] - self.y[None, :]
        return self.ap_ids[np.argmin(dx * dx + dy * dy, axis=1)]
