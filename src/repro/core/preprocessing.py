"""Filter-based preprocessing module (paper Section 4.4).

Receives the candidate set from the query-aware optimization module, runs
(or resumes) the configured Bayesian filter backend for each candidate,
discretizes the result onto anchor points, and fills the ``APtoObjHT``
hash table that the query evaluation module reads.

The estimator is pluggable (:mod:`repro.filters`): the module accepts a
backend name or instance and drives it purely through the
:class:`~repro.filters.base.FilterBackend` contract, so the particle
filter, the graph-Kalman filter, and the symbolic baseline all flow
through this exact code path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

import repro.obs as obs
from repro.collector.collector import EventDrivenCollector
from repro.config import SimulationConfig
from repro.core.resampling import systematic_resample
from repro.graph.anchors import AnchorIndex
from repro.graph.walking_graph import WalkingGraph
from repro.rng import RngLike, make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.particle_cache import ParticleCacheManager
    from repro.filters.registry import BackendSpec


class PreprocessingModule:
    """Runs filter backends for candidate objects and builds ``APtoObjHT``."""

    def __init__(
        self,
        graph: WalkingGraph,
        anchor_index: AnchorIndex,
        readers,
        config: SimulationConfig,
        cache: "Optional[ParticleCacheManager]" = None,
        resampler=systematic_resample,
        backend: "BackendSpec" = "particle",
    ):
        # Deferred: core sits below filters in the layer map (ARCH); the
        # backend registry is only needed at construction time.
        from repro.filters.registry import create_backend

        self.graph = graph
        self.anchor_index = anchor_index
        self.config = config
        self.backend = create_backend(
            backend, graph, anchor_index, readers, config, resampler=resampler
        )
        # Stateless backends have nothing worth resuming; drop the cache
        # so lookups are not wasted (and stats stay meaningful).
        self.cache = cache if self.backend.cacheable else None
        self.compiled_graph = self.backend.compiled_graph
        self.compiled_anchors = self.backend.compiled_anchors
        self.readers = self.backend.readers

    @property
    def filter(self):
        """The particle backend's underlying filter (legacy accessor)."""
        return self.backend.filter  # type: ignore[attr-defined]

    def process(
        self,
        candidates: Iterable[str],
        collector: EventDrivenCollector,
        current_second: int,
        rng: RngLike = None,
        rng_factory: Optional[Callable[[str], RngLike]] = None,
    ):
        """Filter every candidate and return a fresh ``APtoObjHT`` table.

        Objects with no reading history are skipped — the system has no
        evidence about them (they have not yet entered any reader's range).

        ``rng_factory`` (when given) supplies an independent generator per
        object id instead of threading one shared ``rng`` stream through
        every filter run. Per-object streams make the result independent
        of candidate *ordering and partitioning*, which is what lets the
        sharded executor (:mod:`repro.service.shards`) produce bit-identical
        tables at any shard count.
        """
        from repro.index.hashtable import AnchorObjectTable

        generator = make_rng(rng) if rng_factory is None else None
        table = AnchorObjectTable()
        for object_id in candidates:
            history = collector.history(object_id)
            if history.is_empty:
                obs.add("preprocess.objects_skipped_no_history")
                continue
            resume = None
            generation = collector.device_generation(object_id)
            if self.cache is not None:
                resume = self.cache.lookup(object_id, generation)
            object_rng = (
                generator if rng_factory is None else make_rng(rng_factory(object_id))
            )
            run = self.backend.run(
                history, current_second, rng=object_rng, resume=resume
            )
            if self.cache is not None:
                self.cache.store(
                    object_id, run.state(), run.end_second, generation
                )
            with obs.timer("preprocess.anchor_snap"):
                distribution = run.posterior()
            table.set_distribution(object_id, distribution)
            obs.add("preprocess.objects_filtered")
        return table
