"""Anchor-point discretization of a particle set.

Paper Algorithm 2, lines 32-36: every particle is assigned to its nearest
anchor point; an anchor holding ``n`` of the ``Ns`` particles gets
probability ``n / Ns`` (more generally, the sum of its particles'
normalized weights).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.compiled import CompiledAnchors, CompiledGraph
from repro.core.particles import ParticleSet


def particles_to_anchor_distribution(
    particles: ParticleSet,
    compiled_graph: CompiledGraph,
    compiled_anchors: CompiledAnchors,
) -> Dict[int, float]:
    """Snap particles to anchors and return ``{ap_id: probability}``.

    Uses the particles' weights (uniform ``1/Ns`` right after resampling,
    which reduces to the paper's ``n/Ns`` counting).
    """
    if len(particles) == 0:
        return {}
    x, y = compiled_graph.points(particles.edge, particles.offset)
    anchor_ids = compiled_anchors.nearest(x, y)

    weights = particles.weight
    total = weights.sum()
    if total <= 0 or not np.isfinite(total):
        weights = np.full(len(particles), 1.0 / len(particles))
        total = 1.0

    distribution: Dict[int, float] = {}
    for ap_id in np.unique(anchor_ids):
        mass = float(weights[anchor_ids == ap_id].sum() / total)
        if mass > 0.0:
            distribution[int(ap_id)] = mass
    return distribution
