"""Particle filter-based location inference (paper Sections 3.1, 3.2, 4.4).

This is the paper's primary contribution: a Sampling Importance Resampling
(SIR) particle filter whose state space is the indoor walking graph. The
package provides:

* :class:`ParticleSet` — vectorized particle state (edge, offset,
  direction, speed, dwelling flag, weight);
* :class:`CompiledGraph` — flat numpy views of the walking graph for fast
  stepping and point conversion;
* :class:`GraphMotionModel` — the object motion model (constant Gaussian
  speeds, random turns at intersections, room dwell/exit);
* :class:`DeviceSensingModel` — the measurement model (high weight inside
  the observed reader's range, low elsewhere);
* resampling algorithms (paper Algorithm 1 plus alternatives);
* :class:`ParticleFilter` — paper Algorithm 2;
* :func:`particles_to_anchor_distribution` — anchor-point discretization;
* :class:`PreprocessingModule` — the particle filter-based preprocessing
  module that fills the ``APtoObjHT`` table for candidate objects.
"""

from repro.core.compiled import CompiledAnchors, CompiledGraph
from repro.core.particles import ParticleSet
from repro.core.motion import GraphMotionModel
from repro.core.sensing import DeviceSensingModel
from repro.core.resampling import (
    effective_sample_size,
    multinomial_resample,
    residual_resample,
    stratified_resample,
    systematic_resample,
)
from repro.core.filter import FilterResult, ParticleFilter
from repro.core.discretize import particles_to_anchor_distribution
from repro.core.preprocessing import PreprocessingModule

__all__ = [
    "CompiledGraph",
    "CompiledAnchors",
    "ParticleSet",
    "GraphMotionModel",
    "DeviceSensingModel",
    "systematic_resample",
    "multinomial_resample",
    "stratified_resample",
    "residual_resample",
    "effective_sample_size",
    "ParticleFilter",
    "FilterResult",
    "particles_to_anchor_distribution",
    "PreprocessingModule",
]
