"""The particle filter algorithm (paper Algorithm 2).

Given an object's retained reading history (up to the two most recent
detecting devices), the filter:

1. seeds particles uniformly within the activation range of the older
   device at the history's first second;
2. replays every second up to ``min(t_d + 60, t_current)``: particles move
   along the graph (motion model), and on observed seconds are reweighted
   (sensing model), normalized, and resampled (Algorithm 1);
3. returns the final particle set, which the preprocessing module snaps to
   anchor points.

Resuming from a cached state (paper Section 4.5) replays only the seconds
after the cached timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Tuple

import numpy as np

import repro.obs as obs
from repro.collector.collector import ReadingHistory
from repro.config import SimulationConfig
from repro.core.compiled import CompiledGraph
from repro.core.motion import GraphMotionModel
from repro.core.particles import ParticleSet
from repro.core.resampling import systematic_resample
from repro.core.sensing import DeviceSensingModel
from repro.rfid.reader import RFIDReader
from repro.rng import RngLike, make_rng

Resampler = Callable[..., np.ndarray]


@dataclass
class FilterResult:
    """Output of one filter run: final particles and the second they represent."""

    particles: ParticleSet
    end_second: int


class ParticleFilter:
    """SIR particle filter over the indoor walking graph."""

    def __init__(
        self,
        compiled: CompiledGraph,
        readers: Mapping[str, RFIDReader],
        config: SimulationConfig,
        resampler: Resampler = systematic_resample,
    ):
        self.compiled = compiled
        self.readers = dict(readers)
        self.config = config
        self.resampler = resampler
        self.motion = GraphMotionModel(
            compiled,
            speed_mean=config.speed_mean,
            speed_std=config.speed_std,
            room_exit_probability=config.room_exit_probability,
            door_entry_probability=config.door_entry_probability,
        )
        self.sensing = DeviceSensingModel(
            compiled, readers,
            weight_hit=config.weight_hit,
            weight_miss=config.weight_miss,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        history: ReadingHistory,
        current_second: int,
        rng: RngLike = None,
        resume: Optional[Tuple[ParticleSet, int]] = None,
    ) -> FilterResult:
        """Run (or resume) the filter for one object.

        ``resume`` is ``(particles, state_second)`` from the cache module;
        when provided and not in the future, only seconds after
        ``state_second`` are replayed. The caller is responsible for cache
        validity (same device generation — Section 4.5).
        """
        if history.is_empty:
            raise ValueError(
                f"object {history.object_id!r} has no readings; it cannot be filtered"
            )
        generator = make_rng(rng)
        t0 = history.first_second
        td = history.last_second
        # Line 6 of Algorithm 2: never run more than 60 s past the last
        # reading — with no observations the cloud disperses into noise.
        t_end = int(min(td + self.config.silence_cap_seconds, current_second))

        with obs.span("filter.run", object=history.object_id):
            if resume is not None and resume[1] <= t_end:
                particles = resume[0].copy()
                t_state = resume[1]
                obs.add("filter.resumed_runs")
            else:
                particles = self._initialize(history, generator)
                t_state = t0
            obs.add("filter.runs")
            obs.add("filter.seconds_replayed", max(t_end - t_state, 0))

            for second in range(t_state + 1, t_end + 1):
                self.predict(particles, generator, dt=1.0)
                reader_id = history.reading_at(second)
                if reader_id is None:
                    if self.config.use_negative_information:
                        self.observe_silence(particles, generator)
                    continue
                self.observe(particles, reader_id, generator)
        return FilterResult(particles=particles, end_second=t_end)

    def predict(
        self, particles: ParticleSet, rng: np.random.Generator, dt: float = 1.0
    ) -> None:
        """Advance every particle by ``dt`` seconds (the motion model step).

        Exposed as a public primitive (together with :meth:`observe` and
        :meth:`observe_silence`) so the :mod:`repro.filters` particle
        backend can drive the same predict/update sequence :meth:`run`
        executes, with the identical RNG draw order.
        """
        with obs.timer("filter.predict"):
            self.motion.step(particles, rng, dt=dt)

    def observe_silence(
        self, particles: ParticleSet, rng: np.random.Generator
    ) -> None:
        """Negative-information extension: no reading is also evidence.

        Particles standing inside some reader's range during a silent
        second are penalized (the object would almost surely have been
        read there). Resampling is deferred until the weights degenerate,
        so repeated silent seconds do not add resampling noise.
        """
        with obs.timer("filter.weight"):
            mask = self.sensing.reweight_negative(
                particles, self.config.negative_likelihood
            )
        obs.add("filter.silent_observations")
        with obs.timer("filter.normalize"):
            if mask.all():
                # Everything is in covered space (e.g. dense deployments
                # right after initialization): silence carries no
                # contrast, undo.
                particles.normalize_weights()
                return
            particles.normalize_weights()
        ess = 1.0 / float(np.sum(particles.weight ** 2))
        self._record_ess(ess, len(particles))
        if ess < len(particles) / 2.0:
            with obs.timer("filter.resample"):
                indices = self.resampler(particles.weight, len(particles), rng)
                resampled = particles.select(indices)
                self._replace(particles, resampled)

    # ------------------------------------------------------------------
    def initialize(self, history: ReadingHistory, rng: np.random.Generator) -> ParticleSet:
        """Algorithm 2 line 5: seed within the older device's range."""
        reader = self.readers[history.initial_reader_id]
        return self.motion.initialize_in_circle(
            self.config.num_particles, reader.detection_circle, rng
        )

    # Backwards-compatible alias (pre-repro.filters name).
    _initialize = initialize

    def observe(
        self, particles: ParticleSet, reader_id: str, rng: np.random.Generator
    ) -> None:
        """Reweight, normalize, and resample on one observation."""
        with obs.timer("filter.weight"):
            mask = self.sensing.reweight(particles, reader_id)
        obs.add("filter.observations")
        if not mask.any():
            # Particle depletion: no hypothesis is consistent with the
            # observation (e.g. the cloud dispersed during a long silent
            # stretch, or the object backtracked against all particles).
            # Recover by re-seeding within the observed reader's range —
            # the object is certainly there (paper Section 3.2, Case 1).
            obs.add("filter.depletion_reseeds")
            # A depleted cloud is the extreme of weight degeneracy: record
            # it as ESS 1.0 so the epoch-level `accuracy.ess_mean` proxy
            # actually collapses under reader outages instead of silently
            # omitting the worst-off objects from the mean.
            self._record_ess(1.0, len(particles))
            reseeded = self.motion.initialize_in_circle(
                len(particles), self.readers[reader_id].detection_circle, rng
            )
            self._replace(particles, reseeded)
            return
        with obs.timer("filter.normalize"):
            particles.normalize_weights()
        if obs.enabled():
            # Effective sample size before resampling: the paper's proxy
            # for weight degeneracy, exported per observation so the
            # epoch event log can trend accuracy drift.
            self._record_ess(
                1.0 / float(np.sum(particles.weight ** 2)), len(particles)
            )
        with obs.timer("filter.resample"):
            indices = self.resampler(particles.weight, len(particles), rng)
            self._replace(particles, particles.select(indices))

    @staticmethod
    def _record_ess(ess: float, num_particles: int) -> None:
        """Export one pre-resample ESS sample plus its collapse counter.

        ``filter.ess_collapses`` counts samples below a quarter of the
        particle budget — the per-run degeneracy events whose per-epoch
        *fraction* (``accuracy.ess_collapse_frac`` in the event log) is
        what the ``ess_collapse`` drift alert watches. The family mean
        alone dilutes localized collapses past recognition.
        """
        obs.observe("filter.ess", ess)
        if ess < num_particles / 4.0:
            obs.add("filter.ess_collapses")

    @staticmethod
    def _replace(particles: ParticleSet, source: ParticleSet) -> None:
        """Overwrite ``particles`` in place with ``source``'s state."""
        particles.edge[:] = source.edge
        particles.offset[:] = source.offset
        particles.direction[:] = source.direction
        particles.speed[:] = source.speed
        particles.dwelling[:] = source.dwelling
        particles.weight[:] = source.weight
