"""The object motion model on the walking graph (paper Sections 3.1, 4.4).

Particles move forward with constant per-particle speeds drawn from
``N(1 m/s, 0.1)``, choose a random direction at intersections, and enter /
leave rooms: a particle that reaches a room node dwells there and moves
out with probability 0.1 per second (Algorithm 2, lines 8-16).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.geometry import Circle
from repro.core.compiled import CompiledGraph
from repro.core.particles import ParticleSet
from repro.rng import RngLike, make_rng

#: Scan resolution (meters) when enumerating edge positions inside a circle.
_INIT_SCAN_STEP = 0.25

#: Cap on edge hops per particle per step; at >= 0.05 m/s minimum speed and
#: 1 s steps a particle can never legitimately cross this many edges.
_MAX_HOPS = 64


class GraphMotionModel:
    """Graph-constrained particle motion."""

    def __init__(
        self,
        compiled: CompiledGraph,
        speed_mean: float = 1.0,
        speed_std: float = 0.1,
        room_exit_probability: float = 0.1,
        door_entry_probability: float = 0.2,
        min_speed: float = 0.05,
    ):
        if speed_mean <= 0:
            raise ValueError("speed_mean must be positive")
        if not 0.0 <= room_exit_probability <= 1.0:
            raise ValueError("room_exit_probability must be in [0, 1]")
        if not 0.0 <= door_entry_probability <= 1.0:
            raise ValueError("door_entry_probability must be in [0, 1]")
        self.compiled = compiled
        self.speed_mean = speed_mean
        self.speed_std = speed_std
        self.room_exit_probability = room_exit_probability
        self.door_entry_probability = door_entry_probability
        self.min_speed = min_speed

    # ------------------------------------------------------------------
    # initialization
    # ------------------------------------------------------------------
    def draw_speeds(self, n: int, rng: RngLike = None) -> np.ndarray:
        """Speeds ~ N(mean, std), floored at ``min_speed``."""
        generator = make_rng(rng)
        return np.maximum(
            generator.normal(self.speed_mean, self.speed_std, size=n),
            self.min_speed,
        )

    def positions_in_circle(self, circle: Circle) -> List[Tuple[int, float]]:
        """Candidate ``(edge_id, offset)`` positions inside ``circle``.

        Scans every edge at a fine resolution; used to seed particles
        uniformly within a reader's activation range (Algorithm 2 line 5).
        """
        candidates: List[Tuple[int, float]] = []
        for edge in self.compiled.graph.edges:
            steps = max(int(edge.length / _INIT_SCAN_STEP), 1)
            for i in range(steps + 1):
                offset = min(i * _INIT_SCAN_STEP, edge.length)
                if circle.contains(edge.point_at(offset)):
                    candidates.append((edge.edge_id, offset))
        return candidates

    def initialize_in_circle(
        self, n: int, circle: Circle, rng: RngLike = None
    ) -> ParticleSet:
        """Seed ``n`` particles uniformly on the graph within ``circle``.

        Each particle picks a random direction and a Gaussian speed. If
        the circle misses the graph entirely (malformed deployment), the
        particles collapse onto the closest graph location instead of
        failing, so the filter stays usable.
        """
        generator = make_rng(rng)
        candidates = self.positions_in_circle(circle)
        particles = ParticleSet.empty(n)
        if candidates:
            picks = generator.integers(0, len(candidates), size=n)
            jitter = generator.uniform(-_INIT_SCAN_STEP / 2, _INIT_SCAN_STEP / 2, size=n)
            for row, pick in enumerate(picks):
                edge_id, offset = candidates[pick]
                length = self.compiled.edge_length[edge_id]
                particles.edge[row] = edge_id
                particles.offset[row] = min(max(offset + jitter[row], 0.0), length)
        else:
            loc, _ = self.compiled.graph.locate(circle.center)
            particles.edge[:] = loc.edge_id
            particles.offset[:] = loc.offset
        particles.direction[:] = np.where(
            generator.random(n) < 0.5, 1, -1
        ).astype(np.int8)
        particles.speed[:] = self.draw_speeds(n, generator)
        particles.dwelling[:] = False
        particles.weight[:] = 1.0 / max(n, 1)
        return particles

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, particles: ParticleSet, rng: RngLike = None, dt: float = 1.0) -> None:
        """Advance every particle by ``dt`` seconds, in place."""
        generator = make_rng(rng)
        compiled = self.compiled

        # 1. Dwelling particles decide whether to leave their room.
        dwelling_rows = np.nonzero(particles.dwelling)[0]
        if len(dwelling_rows):
            exits = dwelling_rows[
                generator.random(len(dwelling_rows)) < self.room_exit_probability
            ]
            for row in exits:
                self._exit_room(particles, int(row), generator)

        # 2. Vectorized move for particles that stay on their edge.
        moving = ~particles.dwelling
        distance = particles.speed * dt
        tentative = particles.offset + particles.direction * distance
        lengths = compiled.edge_length[particles.edge]
        stays = moving & (tentative >= 0.0) & (tentative <= lengths)
        particles.offset[stays] = tentative[stays]

        # 3. Per-particle walk for the edge crossers.
        crossers = np.nonzero(moving & ~stays)[0]
        for row in crossers:
            self._walk(particles, int(row), float(distance[row]), generator)

    def _exit_room(self, particles: ParticleSet, row: int, rng: np.random.Generator) -> None:
        """Move a dwelling particle onto its door edge, heading out."""
        compiled = self.compiled
        edge_id = int(particles.edge[row])
        node_a = compiled.edge_node_a[edge_id]
        node_b = compiled.edge_node_b[edge_id]
        if compiled.node_is_room[node_b]:
            particles.offset[row] = compiled.edge_length[edge_id]
            particles.direction[row] = -1
        elif compiled.node_is_room[node_a]:
            particles.offset[row] = 0.0
            particles.direction[row] = 1
        else:  # pragma: no cover - dwelling particles always sit on door edges
            raise RuntimeError(
                f"dwelling particle on edge {edge_id} which has no room node"
            )
        particles.speed[row] = self.draw_speeds(1, rng)[0]
        particles.dwelling[row] = False

    def _walk(self, particles: ParticleSet, row: int, distance: float, rng: np.random.Generator) -> None:
        """Walk one particle across node transitions until ``distance`` is spent."""
        compiled = self.compiled
        edge = int(particles.edge[row])
        offset = float(particles.offset[row])
        direction = int(particles.direction[row])
        remaining = distance

        for _ in range(_MAX_HOPS):
            length = compiled.edge_length[edge]
            space = (length - offset) if direction > 0 else offset
            if remaining <= space + 1e-12:
                offset += direction * remaining
                offset = min(max(offset, 0.0), length)
                break
            remaining -= space
            node = int(
                compiled.edge_node_b[edge] if direction > 0
                else compiled.edge_node_a[edge]
            )
            offset = length if direction > 0 else 0.0
            if compiled.node_is_room[node]:
                particles.dwelling[row] = True
                break
            edge = self._choose_next_edge(node, edge, rng)
            if compiled.edge_node_a[edge] == node:
                offset = 0.0
                direction = 1
            else:
                offset = compiled.edge_length[edge]
                direction = -1
        particles.edge[row] = edge
        particles.offset[row] = offset
        particles.direction[row] = direction

    def _choose_next_edge(
        self, node: int, arrival_edge: int, rng: np.random.Generator
    ) -> int:
        """Pick the edge a particle continues on after reaching ``node``.

        The paper's model is "particles pick a random direction at
        intersections"; a uniform choice over incident edges would send a
        particle through every door with probability ~1/2, far more often
        than people actually enter rooms. We therefore bias the choice:
        with probability ``door_entry_probability`` the particle turns
        into a (random) door spur when one is available, otherwise it
        continues on a random hallway edge. The arrival edge is excluded
        (no immediate U-turns) unless the node is a dead end.
        """
        compiled = self.compiled
        candidates = compiled.adjacency[node]
        if len(candidates) > 1:
            candidates = candidates[candidates != arrival_edge]
        if len(candidates) == 1:
            return int(candidates[0])
        door_mask = compiled.edge_is_door[candidates]
        doors = candidates[door_mask]
        hallways = candidates[~door_mask]
        if len(doors) and len(hallways):
            pool = doors if rng.random() < self.door_entry_probability else hallways
        elif len(doors):
            pool = doors
        else:
            pool = hallways
        return int(pool[rng.integers(len(pool))])
