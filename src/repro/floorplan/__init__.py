"""Indoor floor plan model.

The paper's setting (Section 4.2) is a typical office building: hallways
whose width is fully covered by RFID detection ranges, and rooms connected
to hallways by doors. This package models those entities, validates their
composition, and provides the deterministic preset used by the paper's
evaluation (30 rooms, 4 hallways, 19 readers on a single floor).
"""

from repro.floorplan.entities import Door, Hallway, Room
from repro.floorplan.plan import FloorPlan, FloorPlanError
from repro.floorplan.builder import FloorPlanBuilder
from repro.floorplan.presets import (
    cross_office_plan,
    linear_office_plan,
    paper_office_plan,
    small_test_plan,
)

__all__ = [
    "Door",
    "Hallway",
    "Room",
    "FloorPlan",
    "FloorPlanError",
    "FloorPlanBuilder",
    "paper_office_plan",
    "small_test_plan",
    "linear_office_plan",
    "cross_office_plan",
]
