"""Floor plan entities: hallways, rooms, doors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.geometry import Point, Rect, Segment


@dataclass(frozen=True)
class Hallway:
    """A straight, axis-aligned hallway.

    The hallway is described by its *centerline* segment plus a width; the
    walkable band is the rectangle of that width around the centerline.
    The paper models hallways as lines (Section 4.2) because readers cover
    the full hallway width, so positions across the width are
    indistinguishable; the width still matters for range-query evaluation
    (Algorithm 3 compensates by the width ratio ``w_qh / w_h``).
    """

    hallway_id: str
    centerline: Segment
    width: float

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"hallway width must be positive, got {self.width}")
        if self.centerline.is_degenerate:
            raise ValueError(f"hallway {self.hallway_id} has a degenerate centerline")
        if not (self.centerline.is_horizontal or self.centerline.is_vertical):
            raise ValueError(
                f"hallway {self.hallway_id} centerline must be axis-aligned"
            )

    @property
    def length(self) -> float:
        """Centerline length."""
        return self.centerline.length

    @property
    def band(self) -> Rect:
        """The walkable rectangle of the hallway."""
        half = self.width / 2.0
        a, b = self.centerline.a, self.centerline.b
        if self.centerline.is_horizontal:
            return Rect(min(a.x, b.x), a.y - half, max(a.x, b.x), a.y + half)
        return Rect(a.x - half, min(a.y, b.y), a.x + half, max(a.y, b.y))

    def project(self, p: Point) -> Tuple[float, float]:
        """Project ``p`` onto the centerline; returns ``(offset, distance)``."""
        return self.centerline.project(p)

    def point_at(self, offset: float) -> Point:
        """The centerline point at arc-length ``offset``."""
        return self.centerline.point_at(offset)

    def contains(self, p: Point) -> bool:
        """True if ``p`` lies in the walkable band."""
        return self.band.contains(p)


@dataclass(frozen=True)
class Door:
    """A door connecting a room to a hallway.

    ``position`` is the door's location on the room boundary;
    ``hallway_point`` is its projection onto the hallway centerline, which
    is where the walking graph attaches the room spur.
    """

    door_id: str
    room_id: str
    hallway_id: str
    position: Point
    hallway_point: Point

    @property
    def spur_length(self) -> float:
        """Distance from the hallway centerline to the door."""
        return self.position.distance_to(self.hallway_point)


@dataclass(frozen=True)
class Room:
    """A rectangular room with a single door onto a hallway.

    Rooms have no reader coverage (readers are deployed only in hallways,
    for cost and privacy reasons — paper Section 1), so the location
    resolution inside a room is the room itself.
    """

    room_id: str
    boundary: Rect
    door: Door

    def __post_init__(self) -> None:
        if self.boundary.area <= 0:
            raise ValueError(f"room {self.room_id} must have positive area")
        if self.door.room_id != self.room_id:
            raise ValueError(
                f"door {self.door.door_id} belongs to room {self.door.room_id}, "
                f"not {self.room_id}"
            )
        if self.boundary.distance_to_point(self.door.position) > 1e-6:
            raise ValueError(
                f"door {self.door.door_id} must lie on the boundary of room "
                f"{self.room_id}"
            )

    @property
    def center(self) -> Point:
        """The room's center point (the walking-graph room node)."""
        return self.boundary.center

    @property
    def area(self) -> float:
        """Floor area of the room."""
        return self.boundary.area

    def contains(self, p: Point) -> bool:
        """True if ``p`` lies inside the room."""
        return self.boundary.contains(p)
