"""Deterministic floor plan presets.

``paper_office_plan`` reproduces the evaluation setting of the paper
(Section 5): a single floor with 30 rooms and 4 hallways, every room
connected to a hallway by a door. The exact geometry is not published, so
we use a rectangular hallway loop (two horizontal and two vertical
hallways) with 16 rooms on the outside of the loop and 14 rooms inside —
see DESIGN.md for why this preserves the structure that matters.
"""

from __future__ import annotations

from repro.geometry import Point, Rect
from repro.floorplan.builder import FloorPlanBuilder
from repro.floorplan.plan import FloorPlan

#: Building extent of the paper preset, meters.
PAPER_BUILDING_WIDTH = 64.0
PAPER_BUILDING_HEIGHT = 32.0

#: Hallway geometry of the paper preset.
_HALLWAY_WIDTH = 2.0
_LOOP_MIN_X = 4.0
_ROOM_DEPTH = 4.0
_BOTTOM_Y = 5.0


def paper_office_plan(
    width: float = PAPER_BUILDING_WIDTH, height: float = PAPER_BUILDING_HEIGHT
) -> FloorPlan:
    """The 30-room, 4-hallway office floor used throughout the evaluation.

    Layout (not to scale)::

        +--------------------------------------------------+
        |  r9 r10 r11 r12 r13 r14 r15 r16    (outer top)    |
        |==== H2 (top hallway) =============================|
        |  inner top row (7 rooms)                          |
        | H3                                             H4 |
        |  inner bottom row (7 rooms)                       |
        |==== H1 (bottom hallway) ==========================|
        |  r1 r2 r3 r4 r5 r6 r7 r8          (outer bottom)  |
        +--------------------------------------------------+

    The default 64 m x 32 m footprint gives 156 m of hallway centerline;
    the 19 readers at the default 2 m activation range then cover about
    half of the hallways, leaving cells a few meters long between
    readers — the regime where the particle filter's direction/speed
    inference visibly beats the symbolic model's uniform spreading.
    ``width``/``height`` rescale the footprint while keeping the
    room/hallway/reader topology identical.
    """
    loop_max_x = width - _LOOP_MIN_X
    top_y = height - _BOTTOM_Y
    if loop_max_x - _LOOP_MIN_X < 16.0 or top_y - _BOTTOM_Y < 10.0:
        raise ValueError(f"building {width} x {height} is too small for the preset")

    builder = FloorPlanBuilder()
    builder.add_hallway(
        "H1", Point(_LOOP_MIN_X, _BOTTOM_Y), Point(loop_max_x, _BOTTOM_Y),
        width=_HALLWAY_WIDTH,
    )
    builder.add_hallway(
        "H2", Point(_LOOP_MIN_X, top_y), Point(loop_max_x, top_y),
        width=_HALLWAY_WIDTH,
    )
    builder.add_hallway(
        "H3", Point(_LOOP_MIN_X + 1.0, _BOTTOM_Y), Point(_LOOP_MIN_X + 1.0, top_y),
        width=_HALLWAY_WIDTH,
    )
    builder.add_hallway(
        "H4", Point(loop_max_x - 1.0, _BOTTOM_Y), Point(loop_max_x - 1.0, top_y),
        width=_HALLWAY_WIDTH,
    )

    inner_lo = _BOTTOM_Y + 1.0   # top edge of H1's band
    inner_hi = top_y - 1.0       # bottom edge of H2's band
    inner_mid = (inner_lo + inner_hi) / 2.0
    room_index = 1

    # Outer bottom row: 8 rooms below H1, doors opening up onto H1.
    room_index = _add_room_row(
        builder, room_index, "H1",
        x_lo=_LOOP_MIN_X, x_hi=loop_max_x,
        y_lo=_BOTTOM_Y - 1.0 - _ROOM_DEPTH, y_hi=_BOTTOM_Y - 1.0, count=8,
    )
    # Outer top row: 8 rooms above H2, doors opening down onto H2.
    room_index = _add_room_row(
        builder, room_index, "H2",
        x_lo=_LOOP_MIN_X, x_hi=loop_max_x,
        y_lo=top_y + 1.0, y_hi=top_y + 1.0 + _ROOM_DEPTH, count=8,
    )
    # Inner bottom row: 7 rooms inside the loop facing H1.
    room_index = _add_room_row(
        builder, room_index, "H1",
        x_lo=_LOOP_MIN_X + 2.0, x_hi=loop_max_x - 2.0,
        y_lo=inner_lo, y_hi=inner_mid, count=7,
    )
    # Inner top row: 7 rooms inside the loop facing H2.
    room_index = _add_room_row(
        builder, room_index, "H2",
        x_lo=_LOOP_MIN_X + 2.0, x_hi=loop_max_x - 2.0,
        y_lo=inner_mid, y_hi=inner_hi, count=7,
    )

    plan = builder.build()
    assert len(plan.rooms) == 30, "paper preset must have exactly 30 rooms"
    assert len(plan.hallways) == 4, "paper preset must have exactly 4 hallways"
    return plan


def small_test_plan() -> FloorPlan:
    """A minimal plan for unit tests: one hallway, four rooms.

    Mirrors the structure of the paper's Figure 1 example — a straight
    hallway with rooms on both sides.
    """
    builder = FloorPlanBuilder()
    builder.add_hallway("H1", Point(0.0, 5.0), Point(20.0, 5.0), width=2.0)
    builder.add_room("R1", Rect(0.0, 0.0, 10.0, 4.0), "H1")
    builder.add_room("R2", Rect(10.0, 0.0, 20.0, 4.0), "H1")
    builder.add_room("R3", Rect(0.0, 6.0, 10.0, 10.0), "H1")
    builder.add_room("R4", Rect(10.0, 6.0, 20.0, 10.0), "H1")
    return builder.build()


def linear_office_plan(
    num_rooms_per_side: int = 5,
    room_width: float = 6.0,
    room_depth: float = 5.0,
    hallway_width: float = 2.0,
) -> FloorPlan:
    """A single straight hallway with rooms on both sides.

    The structure of the paper's Figure 1 example, parameterized — useful
    for controlled experiments where the loop topology of the paper
    preset would confound results (e.g. studying direction inference).
    """
    if num_rooms_per_side < 1:
        raise ValueError("num_rooms_per_side must be >= 1")
    length = num_rooms_per_side * room_width
    y_center = room_depth + hallway_width / 2.0
    builder = FloorPlanBuilder()
    builder.add_hallway(
        "H1", Point(0.0, y_center), Point(length, y_center), width=hallway_width
    )
    band_lo = y_center - hallway_width / 2.0
    band_hi = y_center + hallway_width / 2.0
    index = 1
    for i in range(num_rooms_per_side):
        builder.add_room(
            f"R{index}",
            Rect(i * room_width, band_lo - room_depth,
                 (i + 1) * room_width, band_lo),
            "H1",
        )
        index += 1
    for i in range(num_rooms_per_side):
        builder.add_room(
            f"R{index}",
            Rect(i * room_width, band_hi,
                 (i + 1) * room_width, band_hi + room_depth),
            "H1",
        )
        index += 1
    return builder.build()


def cross_office_plan(arm_length: float = 24.0, rooms_per_arm: int = 3) -> FloorPlan:
    """Two hallways crossing at the center, rooms along every arm side.

    A topology with a true 4-way intersection (the loop preset only has
    3-way corners), exercising the motion model's random-turn behaviour
    at high-degree nodes.
    """
    if arm_length < 12.0:
        raise ValueError("arm_length must be >= 12")
    if rooms_per_arm < 1:
        raise ValueError("rooms_per_arm must be >= 1")
    center = arm_length
    builder = FloorPlanBuilder()
    builder.add_hallway(
        "H1", Point(0.0, center), Point(2 * arm_length, center), width=2.0
    )
    builder.add_hallway(
        "H2", Point(center, 0.0), Point(center, 2 * arm_length), width=2.0
    )
    # Rooms keep a 6 m clearance from the crossing so the four arms'
    # corner rooms never collide with each other or the hallway bands.
    room_width = (arm_length - 6.0) / rooms_per_arm
    index = 1
    for i in range(rooms_per_arm):
        # Below the horizontal hallway, west arm.
        builder.add_room(
            f"R{index}",
            Rect(i * room_width, center - 5.0, (i + 1) * room_width, center - 1.0),
            "H1",
        )
        index += 1
        # Above the horizontal hallway, east arm.
        builder.add_room(
            f"R{index}",
            Rect(
                center + 6.0 + i * room_width, center + 1.0,
                center + 6.0 + (i + 1) * room_width, center + 5.0,
            ),
            "H1",
        )
        index += 1
        # West of the vertical hallway, south arm.
        builder.add_room(
            f"R{index}",
            Rect(center - 5.0, i * room_width, center - 1.0, (i + 1) * room_width),
            "H2",
        )
        index += 1
        # East of the vertical hallway, north arm.
        builder.add_room(
            f"R{index}",
            Rect(
                center + 1.0, center + 6.0 + i * room_width,
                center + 5.0, center + 6.0 + (i + 1) * room_width,
            ),
            "H2",
        )
        index += 1
    return builder.build()


def _add_room_row(
    builder: FloorPlanBuilder,
    start_index: int,
    hallway_id: str,
    x_lo: float,
    x_hi: float,
    y_lo: float,
    y_hi: float,
    count: int,
) -> int:
    """Add ``count`` equal-width rooms spanning ``[x_lo, x_hi]``."""
    width = (x_hi - x_lo) / count
    index = start_index
    for i in range(count):
        boundary = Rect(x_lo + i * width, y_lo, x_lo + (i + 1) * width, y_hi)
        builder.add_room(f"R{index}", boundary, hallway_id)
        index += 1
    return index
