"""The composed floor plan and its validation rules."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.geometry import Point, Rect
from repro.floorplan.entities import Door, Hallway, Room


class FloorPlanError(ValueError):
    """Raised when a floor plan violates its structural invariants."""


class FloorPlan:
    """An immutable single-floor plan: hallways, rooms, and doors.

    Invariants enforced at construction:

    * rooms do not overlap each other;
    * rooms do not overlap hallway walkable bands;
    * every door's room and hallway exist, the door lies on its room's
      boundary, and its hallway projection lies inside the hallway band;
    * hallway ids and room ids are unique.
    """

    def __init__(self, hallways: Iterable[Hallway], rooms: Iterable[Room]):
        self._hallways: Dict[str, Hallway] = {}
        for hallway in hallways:
            if hallway.hallway_id in self._hallways:
                raise FloorPlanError(f"duplicate hallway id {hallway.hallway_id!r}")
            self._hallways[hallway.hallway_id] = hallway

        self._rooms: Dict[str, Room] = {}
        for room in rooms:
            if room.room_id in self._rooms:
                raise FloorPlanError(f"duplicate room id {room.room_id!r}")
            self._rooms[room.room_id] = room

        self._validate()
        self._bounds = self._compute_bounds()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def hallways(self) -> List[Hallway]:
        """All hallways, in insertion order."""
        return list(self._hallways.values())

    @property
    def rooms(self) -> List[Room]:
        """All rooms, in insertion order."""
        return list(self._rooms.values())

    @property
    def doors(self) -> List[Door]:
        """All doors, one per room."""
        return [room.door for room in self._rooms.values()]

    @property
    def bounds(self) -> Rect:
        """Bounding rectangle of the whole plan."""
        return self._bounds

    @property
    def total_area(self) -> float:
        """Walkable area: hallway bands plus room areas.

        Hallway intersections are counted once (overlaps between hallway
        bands are subtracted pairwise; the presets never make three bands
        overlap in one spot).
        """
        area = sum(h.band.area for h in self._hallways.values())
        hallway_list = list(self._hallways.values())
        for i, first in enumerate(hallway_list):
            for second in hallway_list[i + 1:]:
                area -= first.band.overlap_area(second.band)
        area += sum(room.area for room in self._rooms.values())
        return area

    def hallway(self, hallway_id: str) -> Hallway:
        """Look up a hallway by id."""
        try:
            return self._hallways[hallway_id]
        except KeyError:
            raise FloorPlanError(f"unknown hallway {hallway_id!r}") from None

    def room(self, room_id: str) -> Room:
        """Look up a room by id."""
        try:
            return self._rooms[room_id]
        except KeyError:
            raise FloorPlanError(f"unknown room {room_id!r}") from None

    def has_room(self, room_id: str) -> bool:
        """True if ``room_id`` names a room of this plan."""
        return room_id in self._rooms

    def room_at(self, p: Point) -> Optional[Room]:
        """The room containing ``p``, or ``None``."""
        for room in self._rooms.values():
            if room.contains(p):
                return room
        return None

    def hallway_at(self, p: Point) -> Optional[Hallway]:
        """The hallway whose band contains ``p``, or ``None``."""
        for hallway in self._hallways.values():
            if hallway.contains(p):
                return hallway
        return None

    def contains(self, p: Point) -> bool:
        """True if ``p`` is in walkable space (hallway band or room)."""
        return self.hallway_at(p) is not None or self.room_at(p) is not None

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self._hallways:
            raise FloorPlanError("a floor plan needs at least one hallway")

        room_list = list(self._rooms.values())
        for i, first in enumerate(room_list):
            for second in room_list[i + 1:]:
                if first.boundary.overlap_area(second.boundary) > 1e-9:
                    raise FloorPlanError(
                        f"rooms {first.room_id!r} and {second.room_id!r} overlap"
                    )

        for room in room_list:
            for hallway in self._hallways.values():
                if room.boundary.overlap_area(hallway.band) > 1e-9:
                    raise FloorPlanError(
                        f"room {room.room_id!r} overlaps hallway "
                        f"{hallway.hallway_id!r}"
                    )

        for room in room_list:
            door = room.door
            if door.hallway_id not in self._hallways:
                raise FloorPlanError(
                    f"door {door.door_id!r} references unknown hallway "
                    f"{door.hallway_id!r}"
                )
            hallway = self._hallways[door.hallway_id]
            offset, dist = hallway.project(door.hallway_point)
            if dist > 1e-6:
                raise FloorPlanError(
                    f"door {door.door_id!r} hallway_point is not on the "
                    f"centerline of hallway {door.hallway_id!r}"
                )
            del offset

    def _compute_bounds(self) -> Rect:
        rects = [h.band for h in self._hallways.values()]
        rects += [room.boundary for room in self._rooms.values()]
        return Rect(
            min(r.min_x for r in rects),
            min(r.min_y for r in rects),
            max(r.max_x for r in rects),
            max(r.max_y for r in rects),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FloorPlan(hallways={len(self._hallways)}, rooms={len(self._rooms)})"
        )
