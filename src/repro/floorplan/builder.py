"""Programmatic floor plan construction.

The builder provides the small vocabulary the presets (and users) need:
add axis-aligned hallways, add rooms with a door onto a named hallway, and
finally validate everything into an immutable :class:`FloorPlan`.
"""

from __future__ import annotations

from typing import List

from repro.geometry import Point, Rect, Segment
from repro.floorplan.entities import Door, Hallway, Room
from repro.floorplan.plan import FloorPlan, FloorPlanError


class FloorPlanBuilder:
    """Incrementally assemble a :class:`FloorPlan`."""

    def __init__(self) -> None:
        self._hallways: List[Hallway] = []
        self._rooms: List[Room] = []
        self._door_counter = 0

    def add_hallway(
        self, hallway_id: str, start: Point, end: Point, width: float = 2.0
    ) -> Hallway:
        """Add an axis-aligned hallway with the given centerline."""
        hallway = Hallway(hallway_id, Segment(start, end), width)
        self._hallways.append(hallway)
        return hallway

    def add_room(
        self, room_id: str, boundary: Rect, hallway_id: str, door_x: float = None,
        door_y: float = None,
    ) -> Room:
        """Add a rectangular room with a door onto ``hallway_id``.

        The door is placed on the room edge facing the hallway. By default
        it sits at the room-center coordinate along the shared wall; pass
        ``door_x`` (for horizontal hallways) or ``door_y`` (for vertical
        hallways) to shift it.
        """
        hallway = self._find_hallway(hallway_id)
        door_pos = self._door_position(boundary, hallway, door_x, door_y)
        offset, dist = hallway.project(door_pos)
        hallway_point = hallway.point_at(offset)
        if dist > hallway.width / 2.0 + 1e-6:
            raise FloorPlanError(
                f"room {room_id!r} door at {door_pos} is {dist:.2f} m from the "
                f"centerline of hallway {hallway_id!r}, beyond its half width"
            )
        self._door_counter += 1
        door = Door(
            door_id=f"door{self._door_counter}",
            room_id=room_id,
            hallway_id=hallway_id,
            position=door_pos,
            hallway_point=hallway_point,
        )
        room = Room(room_id=room_id, boundary=boundary, door=door)
        self._rooms.append(room)
        return room

    def build(self) -> FloorPlan:
        """Validate and return the immutable floor plan."""
        return FloorPlan(self._hallways, self._rooms)

    # ------------------------------------------------------------------
    def _find_hallway(self, hallway_id: str) -> Hallway:
        for hallway in self._hallways:
            if hallway.hallway_id == hallway_id:
                return hallway
        raise FloorPlanError(f"unknown hallway {hallway_id!r}; add it first")

    @staticmethod
    def _door_position(
        boundary: Rect, hallway: Hallway, door_x, door_y
    ) -> Point:
        """Place the door on the room edge nearest to the hallway band."""
        band = hallway.band
        if hallway.centerline.is_horizontal:
            x = door_x if door_x is not None else boundary.center.x
            if not boundary.min_x - 1e-9 <= x <= boundary.max_x + 1e-9:
                raise FloorPlanError(
                    f"door_x={x} falls outside the room x-range "
                    f"[{boundary.min_x}, {boundary.max_x}]"
                )
            # Room above or below the hallway band?
            y = boundary.min_y if boundary.min_y >= band.max_y - 1e-9 else boundary.max_y
            return Point(x, y)
        y = door_y if door_y is not None else boundary.center.y
        if not boundary.min_y - 1e-9 <= y <= boundary.max_y + 1e-9:
            raise FloorPlanError(
                f"door_y={y} falls outside the room y-range "
                f"[{boundary.min_y}, {boundary.max_y}]"
            )
        x = boundary.min_x if boundary.min_x >= band.max_x - 1e-9 else boundary.max_x
        return Point(x, y)
