"""Command-line interface.

Five subcommands::

    repro simulate    run the simulator; export the floor plan, reader
                      deployment, and raw reading log
    repro render      draw a floor plan (and optional deployment) as ASCII
    repro experiment  regenerate one of the paper's figures (9-13)
    repro demo        a 60-second end-to-end demo with live queries
    repro stats       render the summary table of a --trace output file

``simulate`` and ``experiment`` accept ``--trace PATH``: observability
(:mod:`repro.obs`) is enabled for the run and the collected metrics and
spans are written to ``PATH`` as JSON.

Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import repro.obs as obs
from repro.config import DEFAULT_CONFIG
from repro.geometry import Point, Rect
from repro.sim.experiments import (
    format_rows,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_figure13,
)

_FIGURES = {
    "fig9": run_figure9,
    "fig10": run_figure10,
    "fig11": run_figure11,
    "fig12": run_figure12,
    "fig13": run_figure13,
}


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "RFID + particle filter indoor spatial query evaluation "
            "(EDBT 2013 reproduction)"
        ),
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="run the simulator and export world + reading log"
    )
    simulate.add_argument("--objects", type=int, default=50)
    simulate.add_argument("--seconds", type=int, default=120)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--readings", metavar="CSV", help="raw reading log output")
    simulate.add_argument("--plan", metavar="JSON", help="floor plan output")
    simulate.add_argument("--deployment", metavar="JSON", help="deployment output")
    simulate.add_argument(
        "--render", action="store_true", help="print the final world state"
    )
    simulate.add_argument(
        "--trace", metavar="JSON",
        help="enable observability and write metrics + spans here",
    )

    render = subparsers.add_parser(
        "render", help="draw a floor plan as ASCII"
    )
    render.add_argument(
        "--plan", metavar="JSON", help="floor plan JSON (default: paper preset)"
    )
    render.add_argument(
        "--deployment", metavar="JSON", help="reader deployment JSON to overlay"
    )
    render.add_argument("--columns", type=int, default=96)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate a figure of the paper's evaluation"
    )
    experiment.add_argument("figure", choices=sorted(_FIGURES))
    experiment.add_argument("--objects", type=int, default=None)
    experiment.add_argument("--seconds", type=int, default=None)
    experiment.add_argument("--seed", type=int, default=None)
    experiment.add_argument("--out-csv", metavar="CSV", help="save rows as CSV")
    experiment.add_argument("--out-json", metavar="JSON", help="save rows as JSON")
    experiment.add_argument(
        "--trace", metavar="JSON",
        help="enable observability and write metrics + spans here",
    )

    subparsers.add_parser("demo", help="run a quick end-to-end demo")

    stats = subparsers.add_parser(
        "stats", help="summarize a trace file written by --trace"
    )
    stats.add_argument("trace", metavar="JSON", help="trace file to summarize")
    stats.add_argument(
        "--out-csv", metavar="CSV", help="also export flattened metric rows"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "simulate": _cmd_simulate,
        "render": _cmd_render,
        "experiment": _cmd_experiment,
        "demo": _cmd_demo,
        "stats": _cmd_stats,
    }[args.command]
    return handler(args)


def _start_trace(args: argparse.Namespace) -> bool:
    """Enable observability when ``--trace`` was requested."""
    if getattr(args, "trace", None):
        # Fail before the run, not after it: a bad output path should not
        # cost minutes of simulation first.
        parent = os.path.dirname(os.path.abspath(args.trace))
        if not os.path.isdir(parent):
            raise SystemExit(
                f"repro: error: --trace directory does not exist: {parent}"
            )
        obs.enable()
        return True
    return False


def _finish_trace(args: argparse.Namespace, meta: dict) -> None:
    """Export and disable observability after a traced run."""
    obs.export_json(args.trace, meta=meta)
    obs.disable()
    print(f"trace -> {args.trace}")


# ----------------------------------------------------------------------
def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.io import save_deployment, save_floorplan, write_readings_csv
    from repro.sim import Simulation

    tracing = _start_trace(args)
    config = DEFAULT_CONFIG.with_overrides(
        num_objects=args.objects, seed=args.seed
    )
    sim = Simulation(config, build_symbolic=False)

    all_readings = []
    for _ in range(args.seconds):
        sim.run_for(1)
        all_readings.extend(sim.last_readings)

    if tracing:
        # Exercise one full evaluation round (pruning -> filtering ->
        # query eval) plus an all-objects snapshot, so the trace covers
        # pruning counters AND filter phases for every tracked object,
        # not just collector throughput.
        sim.pf_engine.range_query(sim.random_window(), sim.now, rng=sim.pf_rng)
        sim.pf_engine.locations_snapshot(sim.now, rng=sim.pf_rng)

    print(
        f"simulated {args.seconds} s, {args.objects} objects, "
        f"{len(all_readings)} raw readings"
    )
    if args.plan:
        save_floorplan(sim.plan, args.plan)
        print(f"floor plan -> {args.plan}")
    if args.deployment:
        save_deployment(sim.readers, args.deployment)
        print(f"deployment -> {args.deployment}")
    if args.readings:
        write_readings_csv(all_readings, args.readings)
        print(f"reading log -> {args.readings}")
    if args.render:
        from repro.viz import render_floorplan

        print(render_floorplan(sim.plan, sim.readers, sim.true_positions()))
    if tracing:
        _finish_trace(
            args,
            meta={
                "command": "simulate",
                "objects": args.objects,
                "seconds": args.seconds,
                "seed": args.seed,
            },
        )
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.floorplan import paper_office_plan
    from repro.io import load_deployment, load_floorplan
    from repro.viz import render_floorplan

    plan = load_floorplan(args.plan) if args.plan else paper_office_plan()
    readers = load_deployment(args.deployment) if args.deployment else []
    print(render_floorplan(plan, readers, columns=args.columns))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    tracing = _start_trace(args)
    config = DEFAULT_CONFIG
    if args.objects is not None:
        config = config.with_overrides(num_objects=args.objects)
    if args.seconds is not None:
        config = config.with_overrides(duration_seconds=args.seconds)
    if args.seed is not None:
        config = config.with_overrides(seed=args.seed)

    rows = _FIGURES[args.figure](config)
    print(format_rows(rows, title=f"{args.figure} (paper Figure {args.figure[3:]})"))

    if args.out_csv:
        from repro.io import save_rows_csv

        save_rows_csv(rows, args.out_csv)
        print(f"rows -> {args.out_csv}")
    if args.out_json:
        from repro.io import save_rows_json

        save_rows_json(rows, args.out_json)
        print(f"rows -> {args.out_json}")
    if tracing:
        _finish_trace(args, meta={"command": "experiment", "figure": args.figure})
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.report import load_trace, render_summary, write_csv

    data = load_trace(args.trace)
    print(render_summary(data))
    if args.out_csv:
        write_csv(data, args.out_csv)
        print(f"rows -> {args.out_csv}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    del args
    from repro.sim import Simulation, true_knn_result, true_range_result

    config = DEFAULT_CONFIG.with_overrides(num_objects=25, seed=3)
    sim = Simulation(config)
    print("simulating 90 seconds ...")
    sim.run_for(90)

    window = Rect(4, 0, 30, 12)
    result = sim.pf_engine.range_query(window, sim.now, rng=sim.pf_rng)
    truth = true_range_result(window, sim.true_positions())
    print(f"\nrange query {window}")
    print(f"  truth: {sorted(truth)}")
    print(f"  top answers: {result.top(5)}")

    point = Point(30, 5)
    knn = sim.pf_engine.knn_query(point, 3, sim.now, rng=sim.pf_rng)
    knn_truth = true_knn_result(point, sim.true_locations(), sim.graph, 3)
    print(f"\n3NN at {point}")
    print(f"  truth: {knn_truth}")
    print(f"  answers: {knn.ranked()[:5]}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
