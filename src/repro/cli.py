"""Command-line interface.

Ten subcommands::

    repro simulate    run the simulator; export the floor plan, reader
                      deployment, and raw reading log
    repro render      draw a floor plan (and optional deployment) as ASCII
    repro experiment  regenerate one of the paper's figures (9-13)
    repro serve       run the online tracking service over a replayed log
                      (or live simulation): sharded filtering, standing
                      queries, checkpoint/restore; ``--metrics-port``
                      serves /metrics + /healthz (+/alerts), ``--events``
                      writes the per-epoch event log (with rotation),
                      drift alerting runs whenever observability is on
    repro demo        a 60-second end-to-end demo with live queries
    repro stats       render the summary table of a --trace output file
                      (``--prom`` for Prometheus text, ``--chrome-trace``
                      for a Perfetto span timeline, ``--flamegraph`` for
                      speedscope JSON, ``--collapsed`` for flamegraph.pl
                      stacks)
    repro profile     run a seeded workload under the deterministic
                      profiler clock and print/export where time goes
                      (per phase, shard, backend, object bucket)
    repro top         live ANSI dashboard over a running serve endpoint
                      or an --events log file
    repro bench       run the deterministic benchmark suite and gate a
                      result file against a committed baseline
    repro lint        static-check the repo's determinism, clock, and
                      thread-safety invariants (repro.analysis)
    repro analytics   continuous occupancy/flow/dwell analytics: run a
                      live simulation with the engine attached (serve),
                      answer historical window queries from a recorded
                      event log (window), or summarize a whole log
                      (report)

``simulate`` and ``experiment`` accept ``--trace PATH``: observability
(:mod:`repro.obs`) is enabled for the run and the collected metrics and
spans are written to ``PATH`` as JSON.

Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import repro.obs as obs
from repro.analysis.baseline import DEFAULT_BASELINE
from repro.analysis.rules.schema_lock import DEFAULT_SCHEMA_LOCK
from repro.config import DEFAULT_CONFIG
from repro.geometry import Point, Rect
from repro.filters import DEFAULT_BACKEND, available_backends
from repro.sim.experiments import (
    format_rows,
    run_backend_comparison,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_figure13,
)

_FIGURES = {
    "fig9": run_figure9,
    "fig10": run_figure10,
    "fig11": run_figure11,
    "fig12": run_figure12,
    "fig13": run_figure13,
}


def _add_filter_option(
    subparser: argparse.ArgumentParser, default: Optional[str] = DEFAULT_BACKEND
) -> None:
    """The shared ``--filter`` backend selector.

    ``serve`` passes ``default=None`` so a restore with no explicit
    ``--filter`` adopts the checkpoint's recorded backend.
    """
    if default is None:
        note = f"default: {DEFAULT_BACKEND}; --restore adopts the checkpoint's"
    else:
        note = f"default: {default}"
    subparser.add_argument(
        "--filter",
        dest="filter_backend",
        choices=available_backends(),
        default=default,
        help=f"Bayesian filter backend ({note})",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "RFID + particle filter indoor spatial query evaluation "
            "(EDBT 2013 reproduction)"
        ),
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="run the simulator and export world + reading log"
    )
    simulate.add_argument("--objects", type=int, default=50)
    simulate.add_argument("--seconds", type=int, default=120)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--readings", metavar="CSV", help="raw reading log output")
    simulate.add_argument("--plan", metavar="JSON", help="floor plan output")
    simulate.add_argument("--deployment", metavar="JSON", help="deployment output")
    simulate.add_argument(
        "--render", action="store_true", help="print the final world state"
    )
    simulate.add_argument(
        "--trace", metavar="JSON",
        help="enable observability and write metrics + spans here",
    )
    _add_filter_option(simulate)

    render = subparsers.add_parser(
        "render", help="draw a floor plan as ASCII"
    )
    render.add_argument(
        "--plan", metavar="JSON", help="floor plan JSON (default: paper preset)"
    )
    render.add_argument(
        "--deployment", metavar="JSON", help="reader deployment JSON to overlay"
    )
    render.add_argument("--columns", type=int, default=96)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate a figure of the paper's evaluation"
    )
    experiment.add_argument("figure", choices=sorted(_FIGURES) + ["backends"])
    experiment.add_argument("--objects", type=int, default=None)
    experiment.add_argument("--seconds", type=int, default=None)
    experiment.add_argument("--seed", type=int, default=None)
    experiment.add_argument("--out-csv", metavar="CSV", help="save rows as CSV")
    experiment.add_argument("--out-json", metavar="JSON", help="save rows as JSON")
    experiment.add_argument(
        "--trace", metavar="JSON",
        help="enable observability and write metrics + spans here",
    )
    _add_filter_option(experiment)

    serve = subparsers.add_parser(
        "serve", help="run the online tracking & query-serving service"
    )
    source = serve.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--replay", metavar="LOG",
        help="replay a recorded reading log (.csv or .jsonl)",
    )
    source.add_argument(
        "--live", action="store_true",
        help="generate readings live from the simulator",
    )
    serve.add_argument("--plan", metavar="JSON", help="floor plan (default: paper preset)")
    serve.add_argument(
        "--deployment", metavar="JSON",
        help="reader deployment (default: paper-uniform deployment)",
    )
    serve.add_argument(
        "--tags", metavar="JSON",
        help="tag-to-object mapping file (default: identity mapping)",
    )
    serve.add_argument("--objects", type=int, default=25, help="live mode: object count")
    serve.add_argument("--seconds", type=int, default=None, help="max seconds to serve")
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument("--shards", type=int, default=1, help="filter worker shards")
    serve.add_argument(
        "--shard-mode", choices=["serial", "thread", "process"], default="thread",
    )
    serve.add_argument(
        "--tick-rate", type=float, default=0.0, metavar="HZ",
        help="target ticks per second (0 = as fast as possible)",
    )
    serve.add_argument("--no-cache", action="store_true", help="disable the particle cache")
    serve.add_argument(
        "--prune", action="store_true",
        help="only filter objects relevant to standing queries",
    )
    serve.add_argument(
        "--range", dest="ranges", action="append", metavar="X1,Y1,X2,Y2",
        default=[], help="standing range query (repeatable)",
    )
    serve.add_argument(
        "--knn", dest="knns", action="append", metavar="X,Y,K",
        default=[], help="standing kNN query (repeatable)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=64, help="ingest queue bound (backpressure)"
    )
    serve.add_argument("--checkpoint", metavar="JSON", help="checkpoint output path")
    serve.add_argument(
        "--checkpoint-interval", type=int, default=0, metavar="TICKS",
        help="write the checkpoint every N ticks (plus once at end)",
    )
    serve.add_argument(
        "--restore", metavar="JSON", help="resume from a checkpoint file"
    )
    serve.add_argument("--quiet", action="store_true", help="suppress per-delta output")
    serve.add_argument(
        "--trace", metavar="JSON",
        help="enable observability and write metrics + spans here",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help=(
            "serve /metrics (Prometheus), /healthz and /readyz on this "
            "port (0 = pick a free port); implies observability"
        ),
    )
    serve.add_argument(
        "--metrics-host", default="127.0.0.1", metavar="HOST",
        help="bind address for --metrics-port (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--events", metavar="JSONL",
        help=(
            "write one structured event record per epoch tick here "
            "(phase timings, per-shard wall time, queue pressure, "
            "accuracy proxies); implies observability"
        ),
    )
    serve.add_argument(
        "--events-rotate-mb", type=float, default=None, metavar="MB",
        help="rotate the --events log when it reaches this size",
    )
    serve.add_argument(
        "--events-keep", type=int, default=3, metavar="N",
        help="rotated --events generations to keep (default: 3)",
    )
    serve.add_argument(
        "--alerts-log", metavar="JSONL",
        help=(
            "write drift-alert fired/resolved events here; implies "
            "observability (alert rules always run while observability "
            "is on)"
        ),
    )
    serve.add_argument(
        "--analytics", action="store_true",
        help=(
            "attach the incremental analytics engine (occupancy, flows, "
            "dwell, heatmap); adds /analytics to --metrics-port, an "
            "'analytics' section to --events records, and checkpoints "
            "the aggregates for bit-exact resume"
        ),
    )
    _add_filter_option(serve, default=None)

    subparsers.add_parser("demo", help="run a quick end-to-end demo")

    stats = subparsers.add_parser(
        "stats", help="summarize a trace file written by --trace"
    )
    stats.add_argument("trace", metavar="JSON", help="trace file to summarize")
    stats.add_argument(
        "--out-csv", metavar="CSV", help="also export flattened metric rows"
    )
    stats.add_argument(
        "--prom", action="store_true",
        help="print the metrics in Prometheus text format instead",
    )
    stats.add_argument(
        "--chrome-trace", metavar="JSON", dest="chrome_trace",
        help="export the spans as Chrome trace-event JSON (Perfetto)",
    )
    stats.add_argument(
        "--flamegraph", metavar="JSON",
        help="export the spans as speedscope JSON (speedscope.app)",
    )
    stats.add_argument(
        "--collapsed", metavar="TXT",
        help="export collapsed stacks (flamegraph.pl / inferno input)",
    )

    profile = subparsers.add_parser(
        "profile",
        help="deterministic cost-attribution profile of a seeded workload",
    )
    profile.add_argument(
        "--smoke", action="store_true",
        help="tiny fixed workload (what CI runs twice and diffs)",
    )
    profile.add_argument("--objects", type=int, default=25)
    profile.add_argument("--seconds", type=int, default=30)
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument(
        "--wall", action="store_true",
        help=(
            "attribute real wall time instead of deterministic clock "
            "units (output is machine-dependent)"
        ),
    )
    profile.add_argument(
        "--top", type=int, default=12, help="phases to print (default: 12)"
    )
    profile.add_argument(
        "--out", metavar="JSON", help="write the attribution document"
    )
    profile.add_argument(
        "--speedscope", metavar="JSON",
        help="write the speedscope flamegraph export",
    )
    profile.add_argument(
        "--collapsed", metavar="TXT", help="write collapsed stacks"
    )
    _add_filter_option(profile)

    top = subparsers.add_parser(
        "top", help="live terminal dashboard for a running serve"
    )
    top_source = top.add_mutually_exclusive_group(required=True)
    top_source.add_argument(
        "--url", metavar="URL",
        help="base URL of a serve --metrics-port endpoint",
    )
    top_source.add_argument(
        "--events", metavar="JSONL",
        help="tail a serve --events log file instead (also post-mortem)",
    )
    top.add_argument(
        "--alerts-log", metavar="JSONL",
        help="with --events: also fold in this alert event log",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh interval (default: 1.0)",
    )
    top.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="render N frames then exit (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (no ANSI clear)",
    )
    top.add_argument("--width", type=int, default=100)
    top.add_argument(
        "--no-ansi", action="store_true",
        help="never emit ANSI clear codes (append frames instead)",
    )

    bench = subparsers.add_parser(
        "bench", help="deterministic benchmark suite + regression gate"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_run = bench_sub.add_parser(
        "run", help="run the workload suite and write a result file"
    )
    scale = bench_run.add_mutually_exclusive_group()
    scale.add_argument(
        "--smoke", dest="profile", action="store_const", const="smoke",
        help="seconds-scale workloads (default; what CI runs)",
    )
    scale.add_argument(
        "--full", dest="profile", action="store_const", const="full",
        help="minutes-scale workloads for local before/after runs",
    )
    bench_run.set_defaults(profile="smoke")
    bench_run.add_argument("--seed", type=int, default=7)
    bench_run.add_argument(
        "--out", metavar="JSON", default=None,
        help="result path (default: benchmarks/BENCH_<date>.json)",
    )
    bench_compare = bench_sub.add_parser(
        "compare", help="gate a candidate result against a baseline"
    )
    bench_compare.add_argument(
        "candidate", metavar="JSON", help="candidate result file"
    )
    bench_compare.add_argument(
        "--baseline", metavar="JSON", required=True,
        help="committed baseline result file",
    )
    bench_compare.add_argument(
        "--tolerance", type=float, default=None, metavar="X",
        help="max calibration-normalized slowdown factor (default: 1.5)",
    )
    bench_compare.add_argument(
        "--strict-digest", action="store_true",
        help="also fail when answer digests differ (same-platform only)",
    )

    lint = subparsers.add_parser(
        "lint", help="check the repo's determinism/clock/thread invariants"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"], metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt",
        help="report format (json is the CI contract)",
    )
    lint.add_argument(
        "--project", action="store_true",
        help=(
            "whole-program mode: also run the cross-file rules "
            "(ARCH/SEED/SCHEMA/LOCKORDER) over one shared project view"
        ),
    )
    lint.add_argument(
        "--rules", metavar="ID[,ID]",
        help="run only these rule ids (e.g. DET,THR or ARCH,LOCKORDER)",
    )
    lint.add_argument(
        "--schema-lock", metavar="JSON", default=None,
        help=(
            "schema lockfile the SCHEMA rule checks drift against "
            f"(default: {DEFAULT_SCHEMA_LOCK} if it exists; "
            "project mode only)"
        ),
    )
    lint.add_argument(
        "--write-schema-lock", action="store_true",
        help=(
            "regenerate the schema lockfile from the current tree and "
            "exit 0 (project mode only)"
        ),
    )
    lint.add_argument(
        "--baseline", metavar="JSON", default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} if it exists)"
        ),
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the invariant catalog and exit",
    )

    analytics = subparsers.add_parser(
        "analytics",
        help="continuous occupancy/flow/dwell analytics over the service",
    )
    analytics_sub = analytics.add_subparsers(
        dest="analytics_command", required=True
    )
    a_serve = analytics_sub.add_parser(
        "serve",
        help=(
            "run a live simulation with the analytics engine attached; "
            "prints the aggregate summary and accuracy vs ground truth"
        ),
    )
    a_serve.add_argument("--objects", type=int, default=25)
    a_serve.add_argument("--seconds", type=int, default=60)
    a_serve.add_argument("--seed", type=int, default=7)
    a_serve.add_argument(
        "--events", metavar="JSONL",
        help="record per-epoch analytics deltas here (window-query input)",
    )
    a_serve.add_argument(
        "--out", metavar="JSON",
        help="also write the summary + accuracy document as JSON",
    )
    _add_filter_option(a_serve)
    a_window = analytics_sub.add_parser(
        "window",
        help=(
            "historical window query over a recorded event log "
            "(reads rotated generations)"
        ),
    )
    a_window.add_argument(
        "events", metavar="JSONL", help="event log from serve --events"
    )
    a_window.add_argument(
        "--from", dest="t0", type=int, default=None, metavar="SECOND",
        help="window start (inclusive; default: log start)",
    )
    a_window.add_argument(
        "--to", dest="t1", type=int, default=None, metavar="SECOND",
        help="window end (inclusive; default: log end)",
    )
    a_window.add_argument(
        "--room", default=None, help="restrict occupancy to one region"
    )
    a_window.add_argument(
        "--json", action="store_true", help="print the raw JSON document"
    )
    a_report = analytics_sub.add_parser(
        "report", help="summarize a whole recorded event log"
    )
    a_report.add_argument(
        "events", metavar="JSONL", help="event log from serve --events"
    )
    a_report.add_argument(
        "--json", action="store_true", help="print the raw JSON document"
    )

    gateway = subparsers.add_parser(
        "gateway",
        help=(
            "partitioned multi-process tracking behind a multi-tenant "
            "HTTP query gateway"
        ),
    )
    tenant_source = gateway.add_mutually_exclusive_group()
    tenant_source.add_argument(
        "--tenants", metavar="JSON",
        help="tenant spec file (a list of {tenant_id, seed, num_objects, plan})",
    )
    tenant_source.add_argument(
        "--demo-tenants", type=int, default=2, metavar="N",
        help="serve N synthetic tenants with distinct seeds (default: 2)",
    )
    gateway.add_argument(
        "--plan", default="paper", metavar="PRESET",
        help="floorplan preset for --demo-tenants (paper/small/linear/cross)",
    )
    gateway.add_argument(
        "--objects", type=int, default=8, metavar="N",
        help="objects per demo tenant (default: 8)",
    )
    gateway.add_argument(
        "--base-seed", type=int, default=101, metavar="SEED",
        help="seed of the first demo tenant (default: 101)",
    )
    gateway.add_argument(
        "--partitions", type=int, default=None, metavar="N",
        help=(
            "worker partitions on the consistent-hash ring "
            "(default: 2, or the checkpoint's count with --restore)"
        ),
    )
    gateway.add_argument(
        "--transport", choices=("process", "inline"), default="process",
        help="worker transport (inline = single-process debug baseline)",
    )
    gateway.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="per-partition ingest queue bound (default: 64)",
    )
    gateway.add_argument(
        "--shed-policy", choices=("block", "shed"), default="block",
        help=(
            "full-queue policy: block (lossless backpressure, default) "
            "or shed the oldest queued sub-tick"
        ),
    )
    gateway.add_argument(
        "--seconds", type=int, default=30, metavar="N",
        help="simulated seconds to stream per tenant (default: 30)",
    )
    gateway.add_argument(
        "--http-port", type=int, default=None, metavar="PORT",
        help=(
            "serve the HTTP query gateway (range/kNN/sessions/analytics "
            "+ /metrics, /healthz) on this port (0 = pick a free port); "
            "implies observability"
        ),
    )
    gateway.add_argument(
        "--http-host", default="127.0.0.1", metavar="HOST",
        help="bind address for --http-port (default: 127.0.0.1)",
    )
    gateway.add_argument(
        "--trace", metavar="JSON",
        help=(
            "write the merged fleet trace at exit (coordinator plus "
            "every worker: partition-labeled metrics, cross-process "
            "spans; feed it to `repro stats --chrome-trace`); implies "
            "observability"
        ),
    )
    gateway.add_argument(
        "--telemetry-interval", type=int, default=8, metavar="TICKS",
        help=(
            "poll worker registries every N collected ticks on the "
            "process transport (0 = only on /metrics scrapes and at "
            "exit; default: 8)"
        ),
    )
    gateway.add_argument(
        "--linger", type=float, default=0.0, metavar="SECONDS",
        help="keep serving HTTP this long after the stream ends",
    )
    gateway.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="rolling per-partition checkpoint directory",
    )
    gateway.add_argument(
        "--checkpoint-interval", type=int, default=0, metavar="TICKS",
        help="checkpoint every N seconds of stream (plus once at end)",
    )
    gateway.add_argument(
        "--restore", action="store_true",
        help="resume from --checkpoint-dir (partition count may differ)",
    )
    gateway.add_argument(
        "--analytics", action="store_true",
        help="attach per-tenant analytics engines (adds /analytics data)",
    )
    gateway.add_argument(
        "--range", action="append", metavar="X1,Y1,X2,Y2", default=[],
        help="standing range query opened for every tenant (repeatable)",
    )
    gateway.add_argument(
        "--knn", action="append", metavar="X,Y,K", default=[],
        help="standing kNN query opened for every tenant (repeatable)",
    )
    gateway.add_argument(
        "--quiet", action="store_true", help="suppress per-delta output"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "simulate": _cmd_simulate,
        "render": _cmd_render,
        "experiment": _cmd_experiment,
        "serve": _cmd_serve,
        "demo": _cmd_demo,
        "stats": _cmd_stats,
        "profile": _cmd_profile,
        "top": _cmd_top,
        "bench": _cmd_bench,
        "lint": _cmd_lint,
        "analytics": _cmd_analytics,
        "gateway": _cmd_gateway,
    }[args.command]
    return handler(args)


def _start_trace(args: argparse.Namespace) -> bool:
    """Enable observability when ``--trace`` was requested."""
    if getattr(args, "trace", None):
        # Fail before the run, not after it: a bad output path should not
        # cost minutes of simulation first.
        parent = os.path.dirname(os.path.abspath(args.trace))
        if not os.path.isdir(parent):
            raise SystemExit(
                f"repro: error: --trace directory does not exist: {parent}"
            )
        obs.enable()
        return True
    return False


def _finish_trace(args: argparse.Namespace, meta: dict) -> None:
    """Export and disable observability after a traced run."""
    obs.export_json(args.trace, meta=meta)
    obs.disable()
    print(f"trace -> {args.trace}")


# ----------------------------------------------------------------------
def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.io import save_deployment, save_floorplan, write_readings_csv
    from repro.sim import Simulation

    tracing = _start_trace(args)
    config = DEFAULT_CONFIG.with_overrides(
        num_objects=args.objects, seed=args.seed
    )
    sim = Simulation(
        config, build_symbolic=False, filter_backend=args.filter_backend
    )

    all_readings = []
    for _ in range(args.seconds):
        sim.run_for(1)
        all_readings.extend(sim.last_readings)

    if tracing:
        # Exercise one full evaluation round (pruning -> filtering ->
        # query eval) plus an all-objects snapshot, so the trace covers
        # pruning counters AND filter phases for every tracked object,
        # not just collector throughput.
        sim.pf_engine.range_query(sim.random_window(), sim.now, rng=sim.pf_rng)
        sim.pf_engine.locations_snapshot(sim.now, rng=sim.pf_rng)

    print(
        f"simulated {args.seconds} s, {args.objects} objects, "
        f"{len(all_readings)} raw readings "
        f"({args.filter_backend} filter)"
    )
    if args.plan:
        save_floorplan(sim.plan, args.plan)
        print(f"floor plan -> {args.plan}")
    if args.deployment:
        save_deployment(sim.readers, args.deployment)
        print(f"deployment -> {args.deployment}")
    if args.readings:
        write_readings_csv(all_readings, args.readings)
        print(f"reading log -> {args.readings}")
    if args.render:
        from repro.viz import render_floorplan

        print(render_floorplan(sim.plan, sim.readers, sim.true_positions()))
    if tracing:
        _finish_trace(
            args,
            meta={
                "command": "simulate",
                "objects": args.objects,
                "seconds": args.seconds,
                "seed": args.seed,
                "filter": args.filter_backend,
            },
        )
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.floorplan import paper_office_plan
    from repro.io import load_deployment, load_floorplan
    from repro.viz import render_floorplan

    plan = load_floorplan(args.plan) if args.plan else paper_office_plan()
    readers = load_deployment(args.deployment) if args.deployment else []
    print(render_floorplan(plan, readers, columns=args.columns))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    tracing = _start_trace(args)
    config = DEFAULT_CONFIG
    if args.objects is not None:
        config = config.with_overrides(num_objects=args.objects)
    if args.seconds is not None:
        config = config.with_overrides(duration_seconds=args.seconds)
    if args.seed is not None:
        config = config.with_overrides(seed=args.seed)

    if args.figure == "backends":
        rows = run_backend_comparison(config)
        title = "backends (filter backend comparison)"
    else:
        rows = _FIGURES[args.figure](config, filter_backend=args.filter_backend)
        title = f"{args.figure} (paper Figure {args.figure[3:]})"
    print(format_rows(rows, title=title))

    if args.out_csv:
        from repro.io import save_rows_csv

        save_rows_csv(rows, args.out_csv)
        print(f"rows -> {args.out_csv}")
    if args.out_json:
        from repro.io import save_rows_json

        save_rows_json(rows, args.out_json)
        print(f"rows -> {args.out_json}")
    if tracing:
        _finish_trace(
            args,
            meta={
                "command": "experiment",
                "figure": args.figure,
                "filter": args.filter_backend,
            },
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.report import load_trace, render_summary, write_csv

    data = load_trace(args.trace)
    if args.prom:
        from repro.obs.expo import render_prometheus

        print(render_prometheus(data), end="")
    else:
        print(render_summary(data))
    if args.out_csv:
        write_csv(data, args.out_csv)
        print(f"rows -> {args.out_csv}")
    if args.chrome_trace:
        from repro.obs.chrometrace import write_chrome_trace

        write_chrome_trace(data, args.chrome_trace)
        print(f"chrome trace -> {args.chrome_trace}")
    if args.flamegraph:
        from repro.obs.profiler import write_speedscope

        write_speedscope(data, args.flamegraph, name=args.trace)
        print(f"speedscope -> {args.flamegraph}")
    if args.collapsed:
        from repro.obs.profiler import build_profile, write_collapsed

        write_collapsed(build_profile(data), args.collapsed)
        print(f"collapsed stacks -> {args.collapsed}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import time

    from repro.obs.profiler import (
        CountingClock,
        build_profile,
        render_attribution,
        write_collapsed,
        write_profile,
        write_speedscope,
    )
    from repro.sim import Simulation

    objects = 8 if args.smoke else args.objects
    seconds = 10 if args.smoke else args.seconds
    clock_kind = "wall" if args.wall else "deterministic"
    if not args.wall:
        # Span durations under the counting clock measure instrumented
        # operations, not machine speed: same seed -> bit-identical
        # attribution on any machine (CI asserts exactly this).
        obs.set_clock(CountingClock())
    obs.enable()
    try:
        config = DEFAULT_CONFIG.with_overrides(
            num_objects=objects, seed=args.seed
        )
        sim = Simulation(
            config, build_symbolic=False, filter_backend=args.filter_backend
        )
        sim.run_for(seconds)
        # One full evaluation round so query-path phases are attributed
        # too, not just the collector/filter loop.
        sim.pf_engine.range_query(sim.random_window(), sim.now, rng=sim.pf_rng)
        sim.pf_engine.locations_snapshot(sim.now, rng=sim.pf_rng)
        meta = {
            "command": "profile",
            "objects": objects,
            "seconds": seconds,
            "seed": args.seed,
            "filter": args.filter_backend,
            "clock": clock_kind,
        }
        snapshot = obs.snapshot(meta=meta)
    finally:
        obs.disable()
        obs.reset()
        obs.set_clock(time.perf_counter)

    result = build_profile(snapshot, clock=clock_kind, meta=meta)
    print(render_attribution(result, top=args.top))
    if args.out:
        write_profile(result, args.out)
        print(f"profile -> {args.out}")
    if args.speedscope:
        write_speedscope(
            snapshot, args.speedscope,
            name=f"repro profile seed={args.seed}",
        )
        print(f"speedscope -> {args.speedscope}")
    if args.collapsed:
        write_collapsed(result, args.collapsed)
        print(f"collapsed stacks -> {args.collapsed}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.obs.dashboard import EventLogTopSource, HttpTopSource, TopLoop

    source: object
    if args.url:
        source = HttpTopSource(args.url)
    else:
        source = EventLogTopSource(args.events, alerts_path=args.alerts_log)
    frames = 1 if args.once else args.frames
    loop = TopLoop(
        source,
        clock=time.monotonic,
        sleep=time.sleep,
        interval=args.interval,
        width=args.width,
        frames=frames,
        use_ansi=not (args.no_ansi or args.once),
    )
    try:
        loop.run()
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        compare_results,
        default_result_name,
        load_result,
        render_report,
        run_suite,
        write_result,
    )
    from repro.bench.compare import (
        DEFAULT_TOLERANCE,
        EXIT_INCOMPARABLE,
        BenchFormatError,
    )

    if args.bench_command == "run":
        result = run_suite(profile=args.profile, seed=args.seed)
        out = args.out or os.path.join("benchmarks", default_result_name())
        write_result(result, out)
        total = sum(
            w["wall_seconds"] for w in result["workloads"].values()
        )
        print(
            f"bench {args.profile}: {len(result['workloads'])} workloads, "
            f"{total:.2f}s measured, calibration "
            f"{result['calibration_seconds'] * 1000:.1f}ms"
        )
        print(f"result -> {out}")
        return 0

    try:
        baseline = load_result(args.baseline)
        candidate = load_result(args.candidate)
    except (OSError, ValueError, BenchFormatError) as exc:
        print(f"repro: bench error: {exc}", file=sys.stderr)
        return EXIT_INCOMPARABLE
    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    report = compare_results(
        baseline,
        candidate,
        tolerance=tolerance,
        strict_digest=args.strict_digest,
    )
    print(render_report(report))
    return report.exit_code


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        Baseline,
        all_project_rules,
        all_rules,
        build_project,
        lint_paths,
        lint_project,
        load_if_exists,
        render_json,
        render_text,
    )
    from repro.analysis.rules.schema_lock import write_lock

    if args.list_rules:
        for heading, rules in (
            ("per-file rules", all_rules()),
            ("whole-program rules (--project)", all_project_rules()),
        ):
            print(f"{heading}:")
            for rule_cls in rules:
                meta = rule_cls.META
                print(f"{meta.rule_id}  [{meta.severity}]  {meta.title}")
                print(f"     {meta.invariant}")
                if meta.applies_to:
                    print(f"     scope: {', '.join(meta.applies_to)}")
        return 0

    schema_lock = args.schema_lock
    if schema_lock is None and os.path.exists(DEFAULT_SCHEMA_LOCK):
        schema_lock = DEFAULT_SCHEMA_LOCK

    if args.write_schema_lock:
        if not args.project:
            print(
                "repro: lint error: --write-schema-lock requires --project",
                file=sys.stderr,
            )
            return 2
        lock_path = schema_lock or DEFAULT_SCHEMA_LOCK
        project = build_project(args.paths, schema_lock_path=lock_path)
        write_lock(project, lock_path)
        print(f"schema lock -> {lock_path}")
        return 0

    only = [r.strip().upper() for r in args.rules.split(",")] if args.rules else []
    try:
        if args.project:
            result = lint_project(
                args.paths, only=only, schema_lock_path=schema_lock
            )
        else:
            result = lint_paths(args.paths, only=only)
    except (KeyError, OSError) as exc:
        print(f"repro: lint error: {exc}", file=sys.stderr)
        return 2

    baseline_path = args.baseline if args.baseline is not None else DEFAULT_BASELINE
    findings = result.sorted_findings()

    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(
            f"baseline -> {baseline_path} "
            f"({len(findings)} grandfathered finding(s))"
        )
        return 0

    try:
        baseline = load_if_exists(baseline_path)
    except ValueError as exc:
        print(f"repro: lint error: {exc}", file=sys.stderr)
        return 2
    diff = baseline.subtract(findings)

    if args.fmt == "json":
        print(
            render_json(
                result,
                new_findings=diff.new,
                baselined=diff.matched,
                stale_baseline_entries=diff.stale,
            )
        )
    else:
        print(render_text(result, new_findings=diff.new, baselined=diff.matched))
        if diff.stale:
            print(
                f"note: {diff.stale} stale baseline entr(y/ies) no longer "
                f"match; re-run with --write-baseline to shrink {baseline_path}"
            )
    return 1 if diff.new else 0


def _parse_range_spec(text: str) -> Rect:
    parts = text.split(",")
    if len(parts) != 4:
        raise SystemExit(f"repro: error: bad --range {text!r} (want X1,Y1,X2,Y2)")
    try:
        x1, y1, x2, y2 = (float(p) for p in parts)
        return Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
    except ValueError:
        raise SystemExit(f"repro: error: bad --range {text!r}") from None


def _parse_knn_spec(text: str):
    parts = text.split(",")
    if len(parts) != 3:
        raise SystemExit(f"repro: error: bad --knn {text!r} (want X,Y,K)")
    try:
        return Point(float(parts[0]), float(parts[1])), int(parts[2])
    except ValueError:
        raise SystemExit(f"repro: error: bad --knn {text!r}") from None


def _format_delta(delta) -> str:
    parts = []
    if delta.entered:
        entered = ", ".join(f"{o}:{p:.2f}" for o, p in sorted(delta.entered.items()))
        parts.append(f"+[{entered}]")
    if delta.left:
        parts.append(f"-[{', '.join(delta.left)}]")
    if delta.updated:
        updated = ", ".join(f"{o}:{p:.2f}" for o, p in sorted(delta.updated.items()))
        parts.append(f"~[{updated}]")
    return f"[t={delta.second}] {delta.query_id} " + " ".join(parts)


def _occupancy_accuracy_provider(service, sim):
    """Per-room occupancy error vs live-simulation ground truth.

    Compares the service's expected per-room object mass (belief-table
    probabilities folded through each anchor's room) against the true
    per-room counts from the simulator, plus one combined hallway
    bucket. Returned fields merge into each epoch record's ``accuracy``
    section and feed the ``occupancy_error`` drift rule.
    """
    from repro.sim.ground_truth import HALLWAY_REGION, true_room_counts

    hall_key = HALLWAY_REGION

    def provider():
        true_counts = true_room_counts(service.plan, sim.true_positions())
        estimated = {key: 0.0 for key in true_counts}
        table = service.snapshot().table
        for object_id in table.objects():
            for ap_id, prob in table.distribution_of(object_id).items():
                room_id = service.anchor_index.anchor(ap_id).room_id
                key = room_id if room_id in estimated else hall_key
                estimated[key] += prob
        errors = [
            abs(estimated[key] - true_counts[key]) for key in true_counts
        ]
        return {
            "occupancy_error_mean": round(sum(errors) / len(errors), 9),
            "occupancy_rooms_compared": len(errors),
        }

    return provider


def _cmd_serve(args: argparse.Namespace) -> int:
    import json as _json

    from repro.io import load_deployment, load_floorplan
    from repro.service import (
        BoundedQueue,
        CheckpointCompatibilityError,
        EpochScheduler,
        LiveSimSource,
        ReplaySource,
        SourceFeeder,
        TrackingService,
        restore_from_file,
    )

    tracing = _start_trace(args)
    # --metrics-port, --events and --alerts-log all need the registry
    # recording; turn observability on for the run even without --trace.
    # None of them touches the RNG streams, so replay output stays
    # bit-identical either way.
    obs_session = tracing
    if (
        args.metrics_port is not None or args.events or args.alerts_log
    ) and not obs.enabled():
        obs.enable()
        obs_session = True
    plan = load_floorplan(args.plan) if args.plan else None
    readers = load_deployment(args.deployment) if args.deployment else None
    tags = None
    if args.tags:
        with open(args.tags, encoding="utf-8") as handle:
            tags = {str(k): str(v) for k, v in _json.load(handle).items()}

    if args.restore:
        try:
            service = restore_from_file(
                args.restore,
                plan=plan,
                readers=readers,
                num_shards=args.shards,
                mode=args.shard_mode,
                use_cache=None if not args.no_cache else False,
                filter_backend=args.filter_backend,
            )
        except CheckpointCompatibilityError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
        print(
            f"restored from {args.restore}: tick {service.ticks}, "
            f"second {service.last_second}, "
            f"filter {service.executor.filter_backend.name}"
        )
        if service.analytics is not None:
            print(
                f"analytics resumed: {service.analytics.epochs} epochs, "
                f"{service.analytics.updates} updates"
            )
    else:
        config = DEFAULT_CONFIG
        if args.seed is not None:
            config = config.with_overrides(seed=args.seed)
        if args.live:
            config = config.with_overrides(num_objects=args.objects)
        service = TrackingService(
            config,
            plan=plan,
            readers=readers,
            tag_to_object=tags,
            num_shards=args.shards,
            mode=args.shard_mode,
            use_cache=not args.no_cache,
            use_pruning=args.prune,
            seed=args.seed,
            filter_backend=args.filter_backend or DEFAULT_BACKEND,
        )

    if args.analytics:
        service.enable_analytics()
    analytics_engine = service.analytics

    on_delta = None if args.quiet else lambda delta: print(_format_delta(delta))
    existing = {sub.session_id for sub in service.sessions.subscriptions()}
    if on_delta is not None:
        for session_id in existing:
            service.sessions.attach_callback(session_id, on_delta)
    for index, spec in enumerate(args.ranges):
        session_id = f"range-{index}"
        if session_id not in existing:
            service.sessions.subscribe_range(
                _parse_range_spec(spec), callback=on_delta, session_id=session_id
            )
    for index, spec in enumerate(args.knns):
        session_id = f"knn-{index}"
        if session_id not in existing:
            point, k = _parse_knn_spec(spec)
            service.sessions.subscribe_knn(
                point, k, callback=on_delta, session_id=session_id
            )
    for sub in service.sessions.subscriptions():
        print(f"standing query {sub.describe()}")

    if args.live:
        from repro.sim import Simulation

        seconds = args.seconds if args.seconds is not None else 60
        sim = Simulation(service.config, plan=service.plan,
                         readers=service.readers, build_symbolic=False)
        if service.last_second is not None:
            sim.run_until(service.last_second)
        source = LiveSimSource(sim, seconds)
    else:
        source = ReplaySource.from_file(
            args.replay,
            start_after=service.last_second,
            max_seconds=args.seconds,
        )

    queue = BoundedQueue(maxsize=args.queue_size)
    feeder = SourceFeeder(source, queue)

    event_writer = None
    event_recorder = None
    alert_writer = None
    alert_engine = None
    if obs_session:
        # Drift alerting rides on the epoch records: the recorder always
        # runs during an observability session (writer-less when no
        # --events file was asked for), and every record feeds the rules.
        from repro.obs.alerts import ALERTS_FORMAT, ALERTS_VERSION, AlertEngine
        from repro.obs.events import EpochEventRecorder, EpochEventWriter

        if args.events:
            event_writer = EpochEventWriter(
                args.events,
                rotate_mb=args.events_rotate_mb,
                keep=args.events_keep,
            )
        if args.alerts_log:
            alert_writer = EpochEventWriter(
                args.alerts_log, fmt=ALERTS_FORMAT, version=ALERTS_VERSION
            )
        alert_engine = AlertEngine(writer=alert_writer)
        accuracy_provider = (
            _occupancy_accuracy_provider(service, sim) if args.live else None
        )
        event_recorder = EpochEventRecorder(
            event_writer,
            obs.registry(),
            accuracy_provider=accuracy_provider,
            analytics_provider=(
                analytics_engine.epoch_delta
                if analytics_engine is not None
                else None
            ),
        )

    scheduler = EpochScheduler(
        service,
        queue,
        tick_interval=(1.0 / args.tick_rate) if args.tick_rate > 0 else 0.0,
        checkpoint_path=args.checkpoint,
        checkpoint_interval=args.checkpoint_interval,
        event_recorder=event_recorder,
        alert_engine=alert_engine,
    )

    metrics_server = None
    if args.metrics_port is not None:
        from repro.obs.expo import MetricsServer

        metrics_server = MetricsServer(
            snapshot_provider=obs.snapshot,
            health_provider=scheduler.health,
            ready_provider=scheduler.ready,
            alerts_provider=(
                alert_engine.summary if alert_engine is not None else None
            ),
            analytics_provider=(
                analytics_engine.summary
                if analytics_engine is not None
                else None
            ),
            host=args.metrics_host,
            port=args.metrics_port,
        )
        bound = metrics_server.start()
        print(f"metrics on http://{args.metrics_host}:{bound}/metrics")
        if analytics_engine is not None:
            print(
                f"analytics on http://{args.metrics_host}:{bound}/analytics"
            )

    feeder.start()
    try:
        ticks = scheduler.run()
    finally:
        queue.close()
        feeder.join(timeout=10.0)
        service.close()
        if metrics_server is not None:
            metrics_server.stop()
        if event_writer is not None:
            event_writer.close()
        if alert_writer is not None:
            alert_writer.close()
    if event_writer is not None:
        rotated = (
            f", {event_writer.rotations} rotation(s)"
            if event_writer.rotations
            else ""
        )
        print(
            f"event log -> {args.events} "
            f"({event_writer.records_written} epoch records{rotated})"
        )
    if alert_writer is not None:
        print(
            f"alert log -> {args.alerts_log} "
            f"({alert_writer.records_written} alert event(s))"
        )
    if alert_engine is not None:
        for alert in alert_engine.active():
            print(
                f"active alert [{alert['severity']}] {alert['rule']}: "
                f"{alert['description']}"
            )
    if feeder.error is not None:
        print(f"repro: ingest error: {feeder.error}", file=sys.stderr)
        return 1

    snap = service.snapshot()
    delivered = sum(s.deltas_delivered for s in service.sessions.subscriptions())
    print(
        f"served {ticks} ticks (through second {service.last_second}), "
        f"tracking {len(snap.table.objects())} objects, "
        f"{len(service.sessions)} standing queries, "
        f"{delivered} deltas delivered"
    )
    if analytics_engine is not None and analytics_engine.epochs:
        busiest = ", ".join(
            f"{region}={score:.2f}"
            for region, score in analytics_engine.top_regions(3)
        )
        print(
            f"analytics: {analytics_engine.epochs} epochs, "
            f"{analytics_engine.updates} updates, "
            f"{analytics_engine.flow_events} flow events; busiest {busiest}"
        )
    if args.checkpoint and scheduler.checkpoints_written:
        print(f"checkpoint -> {args.checkpoint}")
    if tracing:
        _finish_trace(
            args,
            meta={
                "command": "serve",
                "shards": args.shards,
                "mode": args.shard_mode,
                "ticks": ticks,
                "filter": service.executor.filter_backend.name,
            },
        )
    elif obs_session:
        obs.disable()
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    del args
    from repro.sim import Simulation, true_knn_result, true_range_result

    config = DEFAULT_CONFIG.with_overrides(num_objects=25, seed=3)
    sim = Simulation(config)
    print("simulating 90 seconds ...")
    sim.run_for(90)

    window = Rect(4, 0, 30, 12)
    result = sim.pf_engine.range_query(window, sim.now, rng=sim.pf_rng)
    truth = true_range_result(window, sim.true_positions())
    print(f"\nrange query {window}")
    print(f"  truth: {sorted(truth)}")
    print(f"  top answers: {result.top(5)}")

    point = Point(30, 5)
    knn = sim.pf_engine.knn_query(point, 3, sim.now, rng=sim.pf_rng)
    knn_truth = true_knn_result(point, sim.true_locations(), sim.graph, 3)
    print(f"\n3NN at {point}")
    print(f"  truth: {knn_truth}")
    print(f"  answers: {knn.ranked()[:5]}")
    return 0


def _cmd_analytics(args: argparse.Namespace) -> int:
    return {
        "serve": _cmd_analytics_serve,
        "window": _cmd_analytics_window,
        "report": _cmd_analytics_report,
    }[args.analytics_command](args)


def _cmd_analytics_serve(args: argparse.Namespace) -> int:
    """Live simulation with the analytics engine attached, synchronously.

    Drives the tracking service tick by tick (no feeder thread, no
    scheduler: analytics needs nothing time-based), tracks ground truth
    alongside, then prints the aggregate summary, the accuracy scores,
    and the result of the incremental-vs-recompute self-check.
    """
    import json as _json

    from repro.analytics import TruthTracker, accuracy_summary
    from repro.analytics.report import render_accuracy, render_summary
    from repro.service import LiveSimSource, TrackingService
    from repro.sim import Simulation

    # Enable observability for the run only (the recorder needs the
    # registry); leave it exactly as found so later commands in the
    # same process see a clean slate.
    obs_session = False
    if args.events and not obs.enabled():
        obs.enable()
        obs_session = True
    config = DEFAULT_CONFIG.with_overrides(
        seed=args.seed, num_objects=args.objects
    )
    with TrackingService(
        config, seed=args.seed, filter_backend=args.filter_backend
    ) as service:
        engine = service.enable_analytics()
        truth = TruthTracker(service.plan)
        sim = Simulation(
            service.config,
            plan=service.plan,
            readers=service.readers,
            build_symbolic=False,
        )
        event_writer = None
        recorder = None
        if args.events:
            from repro.obs.events import EpochEventRecorder, EpochEventWriter

            event_writer = EpochEventWriter(args.events)
            recorder = EpochEventRecorder(
                event_writer,
                obs.registry(),
                analytics_provider=engine.epoch_delta,
            )
        try:
            for tick, batch in enumerate(
                LiveSimSource(sim, args.seconds).batches(), start=1
            ):
                service.process_batch(batch)
                truth.observe(batch.second, sim.true_positions())
                if recorder is not None:
                    recorder.record_epoch(
                        second=batch.second, tick=tick, wall_seconds=0.0
                    )
        finally:
            if event_writer is not None:
                event_writer.close()
        engine.self_check(service.snapshot().table)
        accuracy = accuracy_summary(engine, truth)
        print(render_summary(engine.summary()))
        print(render_accuracy(accuracy))
        print("recompute equivalence: OK")
        if event_writer is not None:
            print(
                f"event log -> {args.events} "
                f"({event_writer.records_written} epoch records)"
            )
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                _json.dump(
                    {"summary": engine.summary(), "accuracy": accuracy},
                    handle,
                    indent=2,
                    sort_keys=True,
                )
                handle.write("\n")
            print(f"analytics document -> {args.out}")
    if obs_session:
        obs.disable()
    return 0


def _load_analytics_records(path: str):
    from repro.obs.events import read_all_events

    try:
        _, records = read_all_events(path)
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(f"repro: error: {exc}")
    return records


def _cmd_analytics_window(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analytics import window_report
    from repro.analytics.report import render_window

    records = _load_analytics_records(args.events)
    report = window_report(records, t0=args.t0, t1=args.t1, region=args.room)
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_window(report))
    if not report["epochs"]:
        print(
            "note: no analytics epochs matched — was the log recorded "
            "with serve --analytics --events?"
        )
    return 0


def _cmd_analytics_report(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analytics import window_report
    from repro.analytics.report import render_window

    records = _load_analytics_records(args.events)
    report = window_report(records)
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_window(report))
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    """Partitioned multi-tenant tracking behind the HTTP query gateway."""
    import time as _time

    from repro.gateway import (
        GatewayCoordinator,
        GatewayServer,
        TenantWorld,
        demo_tenants,
        load_tenants,
        restore_coordinator,
        save_checkpoint,
    )
    from repro.gateway.checkpoint import GatewayCompatibilityError
    from repro.service import LiveSimSource
    from repro.sim import Simulation

    if args.tenants:
        specs = load_tenants(args.tenants)
    else:
        specs = demo_tenants(
            args.demo_tenants,
            base_seed=args.base_seed,
            num_objects=args.objects,
            plan=args.plan,
        )
    if args.restore and not args.checkpoint_dir:
        raise SystemExit("repro: error: --restore needs --checkpoint-dir")

    obs_session = args.http_port is not None or bool(args.trace)
    if obs_session and not obs.enabled():
        obs.enable()

    if args.restore:
        try:
            coordinator = restore_coordinator(
                args.checkpoint_dir,
                tenants=specs if args.tenants else None,
                num_partitions=args.partitions,
                transport=args.transport,
                queue_depth=args.queue_depth,
                shed_policy=args.shed_policy,
                telemetry_interval=args.telemetry_interval,
            )
        except GatewayCompatibilityError as exc:
            raise SystemExit(f"repro: error: {exc}") from None
        specs = list(coordinator.tenants.values())
        print(
            f"restored {len(specs)} tenant(s) from {args.checkpoint_dir} "
            f"at {coordinator.num_partitions} partition(s)"
        )
    else:
        coordinator = GatewayCoordinator(
            specs,
            num_partitions=args.partitions if args.partitions is not None else 2,
            transport=args.transport,
            queue_depth=args.queue_depth,
            shed_policy=args.shed_policy,
            telemetry_interval=args.telemetry_interval,
        )
    server = None
    exit_code = 0
    try:
        if obs.enabled():
            coordinator.enable_alerts()
        if args.analytics:
            coordinator.enable_analytics()
        for spec in specs:
            for range_spec in args.range:
                coordinator.subscribe_range(
                    spec.tenant_id, _parse_range_spec(range_spec)
                )
            for knn_spec in args.knn:
                point, k = _parse_knn_spec(knn_spec)
                coordinator.subscribe_knn(spec.tenant_id, point, k)

        if args.http_port is not None:
            server = GatewayServer(
                coordinator, host=args.http_host, port=args.http_port
            ).start()
            print(f"gateway http on {server.url}")

        # Per-tenant live sources; a restored tenant's simulation is
        # replayed to its checkpointed second first, so the stream
        # resumes exactly where the checkpoint stopped.
        sources = {}
        for spec in specs:
            world = TenantWorld(spec)
            sim = Simulation(
                world.config, plan=world.plan, readers=world.readers,
                build_symbolic=False,
            )
            health = coordinator.health()
            last = health["tenants"][spec.tenant_id]["last_second"]
            if last is not None:
                sim.run_until(last)
            sources[spec.tenant_id] = iter(
                LiveSimSource(sim, args.seconds).batches()
            )

        streamed = 0
        for _step in range(args.seconds):
            for spec in specs:
                coordinator.submit_tick(spec.tenant_id, next(sources[spec.tenant_id]))
            for _spec in specs:
                tenant_id, _second, deltas = coordinator.collect_tick()
                if not args.quiet:
                    for delta in deltas:
                        if not delta.is_empty:
                            print(f"{tenant_id} {_format_delta(delta)}")
            streamed += 1
            if (
                args.checkpoint_dir
                and args.checkpoint_interval
                and streamed % args.checkpoint_interval == 0
            ):
                save_checkpoint(coordinator, args.checkpoint_dir)
                if not args.quiet:
                    print(f"checkpoint -> {args.checkpoint_dir}")
        if args.checkpoint_dir:
            save_checkpoint(coordinator, args.checkpoint_dir)
            print(f"checkpoint -> {args.checkpoint_dir}")

        health = coordinator.health()
        print(
            f"served {streamed} second(s) x {len(specs)} tenant(s) over "
            f"{coordinator.num_partitions} partition(s) "
            f"[{health['status']}]"
        )
        for tenant_id, record in sorted(health["tenants"].items()):  # type: ignore[union-attr]
            line = (
                f"  {tenant_id}: ticks={record['ticks']} "
                f"last_second={record['last_second']} "
                f"sessions={record['open_sessions']}"
            )
            if record["partial_ticks"]:
                line += f" partial={record['partial_ticks']}"
            if args.analytics:
                summary = coordinator.analytics_summary(tenant_id)
                line += f" analytics_epochs={summary['epochs']}"
            print(line)
        if args.trace:
            from repro.obs.report import write_json

            coordinator.poll_telemetry()
            document = coordinator.fleet_snapshot(
                meta={
                    "command": "gateway",
                    "tenants": len(specs),
                    "partitions": coordinator.num_partitions,
                    "transport": coordinator.transport,
                    "seconds": args.seconds,
                }
            )
            write_json(document, args.trace)
            print(f"fleet trace -> {args.trace}")
        if server is not None and args.linger > 0:
            _time.sleep(args.linger)
    finally:
        if server is not None:
            server.stop()
        coordinator.close()
        if obs_session:
            obs.disable()
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
