"""2-D geometry substrate.

Every higher-level model in the reproduction (floor plans, walking graphs,
RFID activation ranges, query windows) is expressed in terms of the small
set of immutable primitives defined here: :class:`Point`, :class:`Segment`,
:class:`Rect`, and :class:`Circle`.
"""

from repro.geometry.point import Point
from repro.geometry.polyline import Polyline
from repro.geometry.segment import Segment
from repro.geometry.shapes import Circle, Rect

__all__ = ["Point", "Segment", "Rect", "Circle", "Polyline"]
