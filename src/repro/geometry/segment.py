"""Line segments and projection utilities.

Hallway centerlines and walking-graph edges are straight segments; particle
motion, anchor-point placement, and reader coverage all need projection and
interpolation along segments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.geometry.point import Point


@dataclass(frozen=True)
class Segment:
    """A directed straight segment from ``a`` to ``b``."""

    a: Point
    b: Point

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.a.distance_to(self.b)

    @property
    def is_degenerate(self) -> bool:
        """True when the endpoints coincide."""
        return self.a.is_close(self.b)

    @property
    def is_horizontal(self) -> bool:
        """True when both endpoints share a y coordinate."""
        return math.isclose(self.a.y, self.b.y, abs_tol=1e-9)

    @property
    def is_vertical(self) -> bool:
        """True when both endpoints share an x coordinate."""
        return math.isclose(self.a.x, self.b.x, abs_tol=1e-9)

    def point_at(self, offset: float) -> Point:
        """The point at arc-length ``offset`` from ``a`` along the segment.

        ``offset`` is clamped into ``[0, length]`` so that accumulated
        floating-point drift in particle motion can never leave the segment.
        """
        length = self.length
        # Exact zero is the degenerate-segment sentinel, not a tolerance
        # question: any positive length, however tiny, divides safely.
        if length == 0.0:  # repro-lint: disable=FP
            return self.a
        t = min(max(offset / length, 0.0), 1.0)
        return self.a.lerp(self.b, t)

    def project(self, p: Point) -> Tuple[float, float]:
        """Project ``p`` onto the segment.

        Returns ``(offset, distance)`` where ``offset`` is the arc length
        from ``a`` to the closest point (clamped to the segment) and
        ``distance`` is the Euclidean distance from ``p`` to that closest
        point.
        """
        length = self.length
        denom = length * length
        # Exact check: catches true degenerates and length^2 underflow,
        # the only cases where the division below is unsafe.
        if denom == 0.0:  # repro-lint: disable=FP
            return 0.0, self.a.distance_to(p)
        ax, ay = self.a.x, self.a.y
        bx, by = self.b.x, self.b.y
        t = ((p.x - ax) * (bx - ax) + (p.y - ay) * (by - ay)) / denom
        t = min(max(t, 0.0), 1.0)
        closest = Point(ax + t * (bx - ax), ay + t * (by - ay))
        return t * length, closest.distance_to(p)

    def closest_point(self, p: Point) -> Point:
        """The point on the segment closest to ``p``."""
        offset, _ = self.project(p)
        return self.point_at(offset)

    def distance_to_point(self, p: Point) -> float:
        """Euclidean distance from ``p`` to the segment."""
        _, dist = self.project(p)
        return dist

    def reversed(self) -> "Segment":
        """The same segment directed from ``b`` to ``a``."""
        return Segment(self.b, self.a)

    def sample(self, spacing: float, include_endpoints: bool = True):
        """Yield points spaced ``spacing`` apart along the segment.

        The first point is ``a``; the last sampled point may fall short of
        ``b`` unless ``include_endpoints`` forces ``b`` to be yielded.
        """
        if spacing <= 0:
            raise ValueError(f"spacing must be positive, got {spacing}")
        length = self.length
        n = int(math.floor(length / spacing))
        offsets = [i * spacing for i in range(n + 1)]
        if include_endpoints and (not offsets or offsets[-1] < length - 1e-9):
            offsets.append(length)
        for offset in offsets:
            yield self.point_at(offset)
