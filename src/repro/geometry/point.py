"""Immutable 2-D point."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """A point in the plane, in meters.

    Points are immutable and hashable so that they can key dictionaries
    (e.g. the anchor-point hash table ``APtoObjHT`` keys entries by anchor
    coordinates, exactly as the paper describes in Section 4.2).
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt for comparisons)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def lerp(self, other: "Point", t: float) -> "Point":
        """Linear interpolation: ``self`` at ``t=0``, ``other`` at ``t=1``."""
        return Point(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )

    def midpoint(self, other: "Point") -> "Point":
        """The point halfway between ``self`` and ``other``."""
        return self.lerp(other, 0.5)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def is_close(self, other: "Point", tol: float = 1e-9) -> bool:
        """True if both coordinates match within ``tol``."""
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Point({self.x:g}, {self.y:g})"
