"""Axis-aligned rectangles and circles.

Rectangles model rooms, hallway bands, and range-query windows; circles
model RFID activation ranges and the uncertain regions of the query-aware
optimization module (paper Section 4.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.geometry.point import Point
from repro.geometry.segment import Segment


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                "invalid Rect: min corner must not exceed max corner "
                f"({self.min_x}, {self.min_y}, {self.max_x}, {self.max_y})"
            )

    @classmethod
    def from_corners(cls, p: Point, q: Point) -> "Rect":
        """Build the bounding rectangle of two arbitrary corner points."""
        return cls(
            min(p.x, q.x), min(p.y, q.y), max(p.x, q.x), max(p.y, q.y)
        )

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        """Build a rectangle of the given size centered on ``center``."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        return cls(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Width times height."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """The rectangle's center point."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the boundary."""
        return (
            self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y
        )

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside this rectangle."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the two rectangles share any point (boundaries count)."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rectangle, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def overlap_area(self, other: "Rect") -> float:
        """Area of the intersection (0.0 when disjoint)."""
        inter = self.intersection(other)
        return inter.area if inter is not None else 0.0

    def expanded(self, margin: float) -> "Rect":
        """A rectangle grown by ``margin`` on every side."""
        return Rect(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def distance_to_point(self, p: Point) -> float:
        """Euclidean distance from ``p`` to the rectangle (0 if inside)."""
        dx = max(self.min_x - p.x, 0.0, p.x - self.max_x)
        dy = max(self.min_y - p.y, 0.0, p.y - self.max_y)
        return math.hypot(dx, dy)

    def clamp_point(self, p: Point) -> Point:
        """The point of the rectangle closest to ``p``."""
        return Point(
            min(max(p.x, self.min_x), self.max_x),
            min(max(p.y, self.min_y), self.max_y),
        )


@dataclass(frozen=True)
class Circle:
    """A circle given by center and radius.

    Used for RFID activation ranges and for the uncertain region
    ``UR(o_i)`` of the query-aware optimization module.
    """

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"radius must be non-negative, got {self.radius}")

    @property
    def area(self) -> float:
        """pi * r^2."""
        return math.pi * self.radius * self.radius

    def contains(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the circle."""
        return self.center.squared_distance_to(p) <= self.radius * self.radius + 1e-12

    def intersects_rect(self, rect: Rect) -> bool:
        """True if the circle and rectangle share any point."""
        return rect.distance_to_point(self.center) <= self.radius + 1e-12

    def intersects_circle(self, other: "Circle") -> bool:
        """True if the two circles share any point."""
        reach = self.radius + other.radius
        return self.center.squared_distance_to(other.center) <= reach * reach + 1e-12

    def intersects_segment(self, seg: Segment) -> bool:
        """True if any point of ``seg`` lies inside the circle."""
        return seg.distance_to_point(self.center) <= self.radius + 1e-12

    def segment_overlap(self, seg: Segment) -> Optional[tuple]:
        """Arc-length interval of ``seg`` covered by the circle.

        Returns ``(lo, hi)`` offsets along the segment (from ``seg.a``)
        bounding the covered chord, or ``None`` when the segment misses the
        circle entirely. Used to carve reader-covered intervals out of
        hallway edges when building the symbolic deployment graph.
        """
        length = seg.length
        # Solve |a + t*(b-a) - c|^2 = r^2 for t in [0, 1].
        ax, ay = seg.a.x, seg.a.y
        dx, dy = seg.b.x - ax, seg.b.y - ay
        fx, fy = ax - self.center.x, ay - self.center.y
        qa = dx * dx + dy * dy
        # Exact check: catches true degenerates and length^2 underflow,
        # the only cases where the quadratic below is unsolvable.
        if qa == 0.0:  # repro-lint: disable=FP
            return (0.0, 0.0) if self.contains(seg.a) else None
        qb = 2.0 * (fx * dx + fy * dy)
        qc = fx * fx + fy * fy - self.radius * self.radius
        disc = qb * qb - 4.0 * qa * qc
        if disc < 0:
            return None
        sqrt_disc = math.sqrt(disc)
        t0 = (-qb - sqrt_disc) / (2.0 * qa)
        t1 = (-qb + sqrt_disc) / (2.0 * qa)
        lo = max(t0, 0.0)
        hi = min(t1, 1.0)
        if lo > hi:
            return None
        return (lo * length, hi * length)

    def bounding_rect(self) -> Rect:
        """The smallest axis-aligned rectangle containing the circle."""
        return Rect(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )
