"""Polylines: multi-leg paths with arc-length parameterization.

Door edges of the walking graph are two-leg polylines (hallway centerline
point -> door -> room center), so edge traversal, anchor placement, and
projection must work on polylines, not just straight segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.segment import Segment


@dataclass(frozen=True)
class Polyline:
    """An immutable chain of straight legs through ``points``."""

    points: Tuple[Point, ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ValueError("a polyline needs at least two points")

    @classmethod
    def from_points(cls, points: Sequence[Point]) -> "Polyline":
        """Build a polyline, dropping consecutive duplicate points."""
        cleaned: List[Point] = []
        for p in points:
            if not cleaned or not cleaned[-1].is_close(p):
                cleaned.append(p)
        if len(cleaned) == 1:
            cleaned.append(cleaned[0])
        return cls(tuple(cleaned))

    @property
    def segments(self) -> List[Segment]:
        """The straight legs of the polyline."""
        return [
            Segment(self.points[i], self.points[i + 1])
            for i in range(len(self.points) - 1)
        ]

    @property
    def length(self) -> float:
        """Total arc length."""
        return sum(seg.length for seg in self.segments)

    @property
    def start(self) -> Point:
        """First point."""
        return self.points[0]

    @property
    def end(self) -> Point:
        """Last point."""
        return self.points[-1]

    def point_at(self, offset: float) -> Point:
        """The point at arc length ``offset`` from the start (clamped)."""
        remaining = max(offset, 0.0)
        last = self.points[0]
        for seg in self.segments:
            leg = seg.length
            if remaining <= leg:
                return seg.point_at(remaining)
            remaining -= leg
            last = seg.b
        return last

    def project(self, p: Point) -> Tuple[float, float]:
        """Closest point on the polyline to ``p``.

        Returns ``(offset, distance)`` with ``offset`` measured from the
        start along the arc.
        """
        best_offset = 0.0
        best_dist = float("inf")
        consumed = 0.0
        for seg in self.segments:
            offset, dist = seg.project(p)
            if dist < best_dist:
                best_dist = dist
                best_offset = consumed + offset
            consumed += seg.length
        return best_offset, best_dist

    def reversed(self) -> "Polyline":
        """The same polyline traversed end to start."""
        return Polyline(tuple(reversed(self.points)))
