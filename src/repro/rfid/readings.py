"""Reading records produced by the RFID layer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, order=True)
class RawReading:
    """One raw detection sample: (detection time, tag id, reader id).

    Matches the record the paper's raw reading generator feeds into the
    probabilistic evaluation modules (Section 5.1).
    """

    time: float
    tag_id: str
    reader_id: str


@dataclass(frozen=True)
class AggregatedReading:
    """One per-second aggregated entry for one object (Section 4.1).

    ``reader_id`` is the device that detected the object during that
    second; aggregation of tens of raw samples into one entry per second
    both saves storage and masks transient false negatives.
    """

    second: int
    object_id: str
    reader_id: str

    def __post_init__(self) -> None:
        if self.second < 0:
            raise ValueError(f"second must be non-negative, got {self.second}")


@dataclass(frozen=True)
class ReadingEntry:
    """A per-second slot as the particle filter consumes it.

    ``reader_id`` is ``None`` on silent seconds (no observation), which
    Algorithm 2 skips without reweighting.
    """

    second: int
    reader_id: Optional[str]
