"""RFID reader model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Circle, Point


@dataclass(frozen=True)
class RFIDReader:
    """A fixed RFID reader with a circular activation range.

    Readers are deployed on hallway centerlines; the default 2 m range
    fully covers the 2 m hallway width, which is the assumption behind
    modelling hallways as lines (paper Section 4.2).
    """

    reader_id: str
    position: Point
    activation_range: float
    hallway_id: str = ""

    def __post_init__(self) -> None:
        if self.activation_range <= 0:
            raise ValueError(
                f"activation_range must be positive, got {self.activation_range}"
            )

    @property
    def detection_circle(self) -> Circle:
        """The activation range as a circle."""
        return Circle(self.position, self.activation_range)

    def covers(self, p: Point) -> bool:
        """True if ``p`` is inside the activation range."""
        return self.detection_circle.contains(p)

    def with_range(self, activation_range: float) -> "RFIDReader":
        """A copy of this reader with a different activation range."""
        return RFIDReader(
            self.reader_id, self.position, activation_range, self.hallway_id
        )
