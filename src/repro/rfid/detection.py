"""Noisy detection model: turning true positions into raw readings.

The paper's raw reading generator "checks whether each object is detected
by a reader according to the deployment of readers and the current
location of the object" (Section 5.1), with false negatives from RF
interference etc. (Section 1). We model each reader as sampling
``samples_per_second`` times a second and missing an in-range tag
independently per sample with probability ``1 - detection_probability``.

For robustness experiments, :class:`ReaderOutage` windows silence whole
readers (hardware failure, power loss): during an outage the reader
produces no readings at all, and the inference layers must cope with the
resulting coverage hole.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.geometry import Point
from repro.rfid.reader import RFIDReader
from repro.rfid.readings import RawReading
from repro.rng import RngLike, make_rng


@dataclass(frozen=True)
class ReaderOutage:
    """A reader producing no readings during ``[start, end)`` seconds."""

    reader_id: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"outage end {self.end} must be after start {self.start}"
            )

    def covers(self, second: int) -> bool:
        """True when the reader is dark during ``second``."""
        return self.start <= second < self.end


class DetectionModel:
    """Per-sample Bernoulli detection with false negatives."""

    def __init__(
        self,
        readers: Sequence[RFIDReader],
        detection_probability: float = 0.85,
        samples_per_second: int = 10,
        outages: Sequence[ReaderOutage] = (),
    ):
        if not 0.0 <= detection_probability <= 1.0:
            raise ValueError("detection_probability must be in [0, 1]")
        if samples_per_second < 1:
            raise ValueError("samples_per_second must be >= 1")
        self.readers = list(readers)
        self.detection_probability = detection_probability
        self.samples_per_second = samples_per_second
        self.outages = list(outages)
        known = {r.reader_id for r in self.readers}
        for outage in self.outages:
            if outage.reader_id not in known:
                raise ValueError(
                    f"outage references unknown reader {outage.reader_id!r}"
                )

    def _is_dark(self, reader_id: str, second: int) -> bool:
        return any(
            outage.reader_id == reader_id and outage.covers(second)
            for outage in self.outages
        )

    def sample_second(
        self,
        second: int,
        tag_positions: Mapping[str, Point],
        rng: RngLike = None,
    ) -> List[RawReading]:
        """Raw readings generated during ``[second, second + 1)``.

        ``tag_positions`` maps tag id to the tag's true position during
        that second (positions are treated as constant within the second,
        matching the 1 Hz resolution of the true trace generator).
        """
        generator = make_rng(rng)
        readings: List[RawReading] = []
        for reader in self.readers:
            if self._is_dark(reader.reader_id, second):
                continue
            circle = reader.detection_circle
            for tag_id, position in tag_positions.items():
                if not circle.contains(position):
                    continue
                hits = generator.random(self.samples_per_second) < self.detection_probability
                for sample_index in np.nonzero(hits)[0]:
                    readings.append(
                        RawReading(
                            time=second + (sample_index + 0.5) / self.samples_per_second,
                            tag_id=tag_id,
                            reader_id=reader.reader_id,
                        )
                    )
        readings.sort()
        return readings

    def probability_of_missed_second(self) -> float:
        """Chance that an in-range tag produces no reading for a second.

        With the defaults (p=0.85, 10 samples) this is ~5.8e-9 — the
        aggregation argument of Section 4.1: "it is very unlikely that all
        the readings of an object during one second are totally missed".
        """
        return (1.0 - self.detection_probability) ** self.samples_per_second

    def detecting_reader(self, position: Point) -> Optional[RFIDReader]:
        """The reader whose range covers ``position``, if any.

        With disjoint ranges at most one reader covers a point; if ranges
        overlap the nearest reader wins.
        """
        best = None
        best_dist = float("inf")
        for reader in self.readers:
            dist = reader.position.distance_to(position)
            if dist <= reader.activation_range and dist < best_dist:
                best = reader
                best_dist = dist
        return best
