"""RFID tag model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RFIDTag:
    """A passive tag attached to a moving object.

    The simulator keeps a bijection between tags and objects; the explicit
    mapping exists so that reading streams speak in tag ids (what a reader
    actually observes) while the query system speaks in object ids.
    """

    tag_id: str
    object_id: str
