"""Reader deployment strategies.

The paper deploys "a total of 19 RFID readers on hallways with uniform
distance to each other" (Section 5). :func:`deploy_readers_uniform` places
``n`` readers at uniform arc spacing along the concatenated hallway
centerlines of a floor plan.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.floorplan.plan import FloorPlan
from repro.rfid.reader import RFIDReader

#: Default distance kept between a reader and a hallway end. Chosen so the
#: paper preset's 19 readers stay pairwise > 4 m apart (disjoint at the
#: default 2 m activation range; ranges may touch at the 2.5 m end of the
#: Figure 13 sweep, which the detection model handles by nearest-reader
#: assignment).
DEFAULT_END_MARGIN = 1.7


def deploy_readers_uniform(
    plan: FloorPlan, count: int, activation_range: float, end_margin: float = DEFAULT_END_MARGIN
) -> List[RFIDReader]:
    """Place ``count`` readers on hallway centerlines with uniform spacing.

    The reader budget is apportioned to hallways proportionally to their
    centerline lengths (largest-remainder method); each hallway then gets
    its readers at uniform spacing within ``[end_margin, length -
    end_margin]``. The margin keeps readers of different hallways apart at
    hallway junctions, preserving the disjoint-activation-range deployment
    the paper assumes (Section 2.2).
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if end_margin < 0:
        raise ValueError(f"end_margin must be non-negative, got {end_margin}")
    hallways = plan.hallways
    total = sum(h.length for h in hallways)

    # Largest-remainder apportionment of `count` readers over hallways.
    quotas = [h.length / total * count for h in hallways]
    allocation = [int(q) for q in quotas]
    remainders = sorted(
        range(len(hallways)),
        key=lambda i: (quotas[i] - allocation[i], hallways[i].length),
        reverse=True,
    )
    shortfall = count - sum(allocation)
    for i in remainders[:shortfall]:
        allocation[i] += 1

    readers: List[RFIDReader] = []
    reader_number = 1
    for hallway, n in zip(hallways, allocation):
        if n == 0:
            continue
        margin = min(end_margin, hallway.length / 4.0)
        usable = hallway.length - 2.0 * margin
        for i in range(n):
            offset = margin + (i + 0.5) * usable / n
            readers.append(
                RFIDReader(
                    reader_id=f"d{reader_number}",
                    position=hallway.point_at(offset),
                    activation_range=activation_range,
                    hallway_id=hallway.hallway_id,
                )
            )
            reader_number += 1
    return readers


def ranges_are_disjoint(readers: Sequence[RFIDReader]) -> bool:
    """True when no two activation ranges overlap.

    Disjoint ranges are the common indoor deployment the paper assumes
    (Section 2.2); the simulator checks this so experiments with very
    large activation ranges are flagged explicitly rather than silently
    changing the detection semantics.
    """
    readers = list(readers)
    for i, first in enumerate(readers):
        for second in readers[i + 1:]:
            if first.detection_circle.intersects_circle(second.detection_circle):
                return False
    return True


def reader_by_id(readers: Sequence[RFIDReader]) -> Dict[str, RFIDReader]:
    """Index readers by id, rejecting duplicates."""
    table: Dict[str, RFIDReader] = {}
    for reader in readers:
        if reader.reader_id in table:
            raise ValueError(f"duplicate reader id {reader.reader_id!r}")
        table[reader.reader_id] = reader
    return table
