"""RFID substrate: readers, tags, deployments, and noisy detection.

Models the paper's sensing layer (Sections 1 and 4.1): readers with a
fixed activation range are deployed along hallways; each moving object
carries a tag; raw readings are generated at tens of samples per second
and suffer false negatives.
"""

from repro.rfid.reader import RFIDReader
from repro.rfid.tag import RFIDTag
from repro.rfid.readings import AggregatedReading, RawReading
from repro.rfid.detection import DetectionModel, ReaderOutage
from repro.rfid.deployment import (
    deploy_readers_uniform,
    ranges_are_disjoint,
    reader_by_id,
)

__all__ = [
    "RFIDReader",
    "RFIDTag",
    "RawReading",
    "AggregatedReading",
    "DetectionModel",
    "ReaderOutage",
    "deploy_readers_uniform",
    "ranges_are_disjoint",
    "reader_by_id",
]
