"""Runtime coercion helpers for restoring JSON-decoded payloads.

Checkpoint envelopes and event-log records arrive as
``Mapping[str, object]``; these helpers narrow individual values back to
concrete types with a loud ``TypeError`` on shape drift, instead of
scattering ``type: ignore`` pragmas over every restore path.
"""

from __future__ import annotations

from typing import Any, List, Mapping


def as_int(value: object) -> int:
    """Narrow ``value`` to ``int`` (bools are rejected — JSON ``true`` is not a count)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"expected int, got {type(value).__name__}")
    return value


def as_float(value: object) -> float:
    """Narrow ``value`` to ``float``, accepting JSON integers."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"expected number, got {type(value).__name__}")
    return float(value)


def as_map(value: object) -> Mapping[Any, Any]:
    """Narrow ``value`` to a mapping."""
    if not isinstance(value, Mapping):
        raise TypeError(f"expected mapping, got {type(value).__name__}")
    return value


def as_list(value: object) -> List[Any]:
    """Narrow ``value`` to a list."""
    if not isinstance(value, list):
        raise TypeError(f"expected list, got {type(value).__name__}")
    return value
