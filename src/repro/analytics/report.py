"""Text rendering of analytics documents for the CLI.

Pure formatting: every function takes an already-computed document (the
engine's :meth:`~repro.analytics.engine.AnalyticsEngine.summary`, a
:func:`~repro.analytics.windows.window_report`, or an accuracy summary)
and returns printable lines. No I/O, no recomputation.
"""

from __future__ import annotations

from typing import List, Mapping, Optional


def _fmt(value: object, digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_summary(summary: Mapping[str, object]) -> str:
    """Render an engine ``summary()`` document as a report."""
    lines: List[str] = ["== analytics =="]
    lines.append(
        f"epochs={_fmt(summary.get('epochs'))} "
        f"updates={_fmt(summary.get('updates'))} "
        f"objects={_fmt(summary.get('objects'))} "
        f"span=[{_fmt(summary.get('first_second'))}"
        f"..{_fmt(summary.get('last_second'))}]"
    )
    occupancy = summary.get("occupancy")
    if isinstance(occupancy, Mapping) and occupancy:
        lines.append("-- occupancy (expected ± sd) --")
        for region in occupancy:
            cell = occupancy[region]
            assert isinstance(cell, Mapping)
            expected = float(cell.get("expected", 0.0))
            variance = max(float(cell.get("variance", 0.0)), 0.0)
            lines.append(
                f"  {region:<14} {expected:8.3f} ± {variance ** 0.5:.3f}"
            )
    top = summary.get("top_regions")
    if isinstance(top, list) and top:
        ranked = ", ".join(
            f"{row['region']}={float(row['expected']):.3f}" for row in top
        )
        lines.append(f"-- busiest -- {ranked}")
    flows = summary.get("flows")
    if isinstance(flows, Mapping):
        edges = flows.get("edges")
        lines.append(f"-- flows ({_fmt(flows.get('events'))} events) --")
        if isinstance(edges, Mapping) and edges:
            for edge in edges:
                lines.append(f"  {edge:<28} {edges[edge]}")
        else:
            lines.append("  (no transitions observed)")
    dwell = summary.get("dwell")
    if isinstance(dwell, Mapping) and dwell:
        lines.append("-- dwell (completed stays) --")
        for region in dwell:
            cell = dwell[region]
            assert isinstance(cell, Mapping)
            lines.append(
                f"  {region:<14} n={_fmt(cell.get('count'))} "
                f"mean={_fmt(cell.get('mean_seconds'), 1)}s"
            )
    return "\n".join(lines)


def render_window(report: Mapping[str, object]) -> str:
    """Render a :func:`window_report` document."""
    window = report.get("window")
    assert isinstance(window, Mapping)
    lines: List[str] = [
        f"== analytics window [{_fmt(window.get('t0'))}"
        f"..{_fmt(window.get('t1'))}] "
        f"({_fmt(report.get('epochs'))} epochs, seconds "
        f"{_fmt(report.get('first_second'))}"
        f"..{_fmt(report.get('last_second'))}) =="
    ]
    occupancy = report.get("occupancy")
    if isinstance(occupancy, Mapping) and occupancy:
        lines.append(
            f"  {'region':<14} {'mean':>8} {'min':>8} {'max':>8} {'last':>8}"
        )
        for region in occupancy:
            cell = occupancy[region]
            assert isinstance(cell, Mapping)
            lines.append(
                f"  {region:<14} {_fmt(cell.get('mean')):>8}"
                f" {_fmt(cell.get('min')):>8} {_fmt(cell.get('max')):>8}"
                f" {_fmt(cell.get('last')):>8}"
            )
    else:
        lines.append("  (no analytics epochs in window)")
    flows = report.get("flows")
    if isinstance(flows, Mapping) and flows:
        lines.append("-- flows --")
        for edge in flows:
            lines.append(f"  {edge:<28} {flows[edge]}")
    dwell = report.get("dwell")
    if isinstance(dwell, Mapping) and dwell:
        lines.append("-- dwell --")
        for region in dwell:
            cell = dwell[region]
            assert isinstance(cell, Mapping)
            lines.append(
                f"  {region:<14} n={_fmt(cell.get('count'))} "
                f"mean={_fmt(cell.get('mean_seconds'), 1)}s"
            )
    return "\n".join(lines)


def render_accuracy(accuracy: Optional[Mapping[str, object]]) -> str:
    """Render an :func:`accuracy_summary` document (or note its absence)."""
    if accuracy is None:
        return "== accuracy == (no ground truth available)"
    lines = [
        "== accuracy vs ground truth ==",
        f"  occupancy MAE        {_fmt(accuracy.get('occupancy_mae'))}",
        f"  flow-count error     {_fmt(accuracy.get('flow_count_error'))}"
        f" (estimated {_fmt(accuracy.get('flow_events_estimated'))},"
        f" true {_fmt(accuracy.get('flow_events_true'))})",
        f"  dwell TV distance    {_fmt(accuracy.get('dwell_distance_mean'))}",
    ]
    return "\n".join(lines)
