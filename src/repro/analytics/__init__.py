"""Continuous spatial analytics over the tracking service's belief state.

The subsystem ROADMAP item 4 asked for: per-room occupancy (expected
count + variance), enter/leave flow rates, dwell-time distributions,
density heatmaps, and top-k busiest regions — all maintained
*incrementally* from per-epoch snapshot deltas by
:class:`~repro.analytics.engine.AnalyticsEngine`, checkpointed inside
the service's v2 envelope, replayable from the epoch event log for
historical window queries, and scored against simulator ground truth.
"""

from repro.analytics.accuracy import TruthTracker, accuracy_summary
from repro.analytics.engine import (
    ANALYTICS_STATE_VERSION,
    DEFAULT_FLOW_HYSTERESIS,
    AnalyticsEngine,
    RECOMPUTE_TOLERANCE,
    SnapshotLike,
    flow_key,
)
from repro.analytics.naive import NaiveAnalytics
from repro.analytics.regions import HALLWAYS, RegionMap
from repro.analytics.report import render_accuracy, render_summary, render_window
from repro.analytics.streaming import (
    DEFAULT_DWELL_EDGES,
    LazyTopK,
    StreamingHistogram,
)
from repro.analytics.windows import (
    analytics_epochs,
    dwell_window,
    flow_window,
    occupancy_window,
    window_report,
)

__all__ = [
    "ANALYTICS_STATE_VERSION",
    "AnalyticsEngine",
    "DEFAULT_DWELL_EDGES",
    "DEFAULT_FLOW_HYSTERESIS",
    "HALLWAYS",
    "LazyTopK",
    "NaiveAnalytics",
    "RECOMPUTE_TOLERANCE",
    "RegionMap",
    "SnapshotLike",
    "StreamingHistogram",
    "TruthTracker",
    "accuracy_summary",
    "analytics_epochs",
    "dwell_window",
    "flow_key",
    "flow_window",
    "occupancy_window",
    "render_accuracy",
    "render_summary",
    "render_window",
    "window_report",
]
