"""Reference analytics by full recompute — the equivalence comparator.

:class:`NaiveAnalytics` implements the same aggregate *definitions* as
:class:`~repro.analytics.engine.AnalyticsEngine` but rebuilds everything
from scratch on every epoch: it re-folds every object's posterior
(changed or not), re-sums every region, re-sorts the full region list
for top-k, and re-derives every modal region before diffing against the
previous epoch's modal map. That makes it trivially correct and
trivially slow — exactly what a recompute baseline should be.

Uses: the incremental-vs-recompute equivalence tests hold the engine's
aggregates against this class (exact within
:data:`~repro.analytics.engine.RECOMPUTE_TOLERANCE`), and the
``analytics_replay`` bench workload measures the throughput gap between
the two on the same snapshot stream.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analytics.engine import DEFAULT_FLOW_HYSTERESIS, SnapshotLike
from repro.analytics.regions import RegionMap
from repro.analytics.streaming import DEFAULT_DWELL_EDGES, StreamingHistogram
from repro.floorplan.plan import FloorPlan
from repro.graph.anchors import AnchorIndex


class NaiveAnalytics:
    """Same aggregates as :class:`AnalyticsEngine`, recomputed per epoch."""

    def __init__(
        self,
        plan: FloorPlan,
        anchor_index: AnchorIndex,
        dwell_edges: Sequence[float] = DEFAULT_DWELL_EDGES,
        flow_hysteresis: int = DEFAULT_FLOW_HYSTERESIS,
    ) -> None:
        if flow_hysteresis < 1:
            raise ValueError("flow_hysteresis must be >= 1")
        self.region_map = RegionMap(plan, anchor_index)
        self.dwell_edges: Tuple[float, ...] = tuple(float(e) for e in dwell_edges)
        self.flow_hysteresis = int(flow_hysteresis)
        self.occupancy: Dict[str, float] = {
            region: 0.0 for region in self.region_map.regions
        }
        self.variance: Dict[str, float] = {
            region: 0.0 for region in self.region_map.regions
        }
        self.density: Dict[int, float] = {}
        self.flows: Dict[str, int] = {}
        self.enters: Dict[str, int] = {}
        self.leaves: Dict[str, int] = {}
        self.dwell_region: Dict[str, StreamingHistogram] = {}
        self._modal: Dict[str, str] = {}
        self._modal_since: Dict[str, int] = {}
        self._pending: Dict[str, Tuple[str, int, int]] = {}
        self.epochs = 0
        self.flow_events = 0

    def observe_snapshot(self, snapshot: SnapshotLike) -> None:
        """Recompute every aggregate from the full table, then diff modals."""
        second = int(snapshot.second)
        table = snapshot.table
        # Full refold: every object, every epoch.
        occupancy = {region: 0.0 for region in self.region_map.regions}
        variance = {region: 0.0 for region in self.region_map.regions}
        density: Dict[int, float] = {}
        modal: Dict[str, str] = {}
        for object_id in sorted(table.objects()):
            distribution = table.distribution_of(object_id)
            for ap_id, probability in distribution.items():
                density[ap_id] = density.get(ap_id, 0.0) + probability
            mass = self.region_map.fold(distribution)
            for region, value in mass.items():
                occupancy[region] += value
                variance[region] += value * (1.0 - value)
            region = RegionMap.modal_region(mass)
            assert region is not None
            modal[object_id] = region
        # Diff the full modal map against last epoch's (same debounce as
        # the engine: a differing readout must repeat flow_hysteresis
        # consecutive epochs before it commits, backdated to first sight).
        for object_id in sorted(set(self._modal) - set(modal)):
            old_region = self._modal.pop(object_id)
            self._pending.pop(object_id, None)
            self._close_dwell(old_region, second - self._modal_since.pop(object_id))
            self.leaves[old_region] = self.leaves.get(old_region, 0) + 1
        for object_id in sorted(modal):
            readout = modal[object_id]
            committed = self._modal.get(object_id)
            if committed is None:
                self.enters[readout] = self.enters.get(readout, 0) + 1
                self._modal_since[object_id] = second
                self._modal[object_id] = readout
                continue
            if readout == committed:
                self._pending.pop(object_id, None)
                continue
            pending = self._pending.get(object_id)
            if pending is not None and pending[0] == readout:
                first_seen, count = pending[1], pending[2] + 1
            else:
                first_seen, count = second, 1
            if count < self.flow_hysteresis:
                self._pending[object_id] = (readout, first_seen, count)
                continue
            self._pending.pop(object_id, None)
            self._close_dwell(
                committed, first_seen - self._modal_since[object_id]
            )
            key = f"{committed}->{readout}"
            self.flows[key] = self.flows.get(key, 0) + 1
            self.leaves[committed] = self.leaves.get(committed, 0) + 1
            self.enters[readout] = self.enters.get(readout, 0) + 1
            self._modal_since[object_id] = first_seen
            self._modal[object_id] = readout
            self.flow_events += 1
        self.occupancy = occupancy
        self.variance = variance
        self.density = density
        self.epochs += 1

    def _close_dwell(self, region: str, seconds: int) -> None:
        if region not in self.dwell_region:
            self.dwell_region[region] = StreamingHistogram(self.dwell_edges)
        self.dwell_region[region].add(float(seconds))

    def top_regions(self, k: int) -> List[Tuple[str, float]]:
        """Top-k by re-sorting the full region list (the naive way)."""
        ranked = sorted(
            self.occupancy.items(), key=lambda item: (-item[1], item[0])
        )
        return [(region, score) for region, score in ranked[: max(k, 0)]]

    def modal_of(self, object_id: str) -> Optional[str]:
        """The object's current modal region (None when absent)."""
        return self._modal.get(object_id)
