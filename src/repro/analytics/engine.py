"""The incremental analytics engine.

:class:`AnalyticsEngine` subscribes to the per-epoch snapshots a
:class:`~repro.service.tracking.TrackingService` publishes (or an
offline replay of them) and maintains every aggregate **from deltas**:

* **occupancy** — per-region expected object count plus variance, from
  posterior room-membership mass (expected counts are additive over
  objects; variance is the Poisson-binomial ``Σ m·(1-m)``);
* **flow** — enter/leave counts per region and per directed room edge,
  from modal-region transitions;
* **dwell** — per-region and per-object streaming histograms of
  completed stays (no per-epoch rescan of history);
* **density heatmap** — expected mass per anchor point of the walking
  graph, updated by subtracting an object's previous posterior and
  adding its new one;
* **top-k busiest regions** — a monotone lazy heap updated from region
  deltas.

Per epoch the engine touches only the objects whose posterior changed
(one sparse pass per changed object); nothing is ever recomputed from
the full table. The full-recompute definitions live in
:meth:`recompute_from` / :meth:`self_check` — the assert-able
equivalence path the tests (and the ``analytics_replay`` bench) hold the
incremental path against, exact within ``1e-6`` absolute (float
summation order is the only difference).

The engine is driven from the service's scheduler thread, like the
standing-query sessions; it draws no randomness and reads no clock
(epoch ``second`` values come from the snapshots), so attaching it
cannot perturb replay results.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
)

import repro.obs as obs
from repro.analytics._coerce import as_float, as_int, as_list, as_map
from repro.analytics.regions import RegionMap
from repro.analytics.streaming import (
    DEFAULT_DWELL_EDGES,
    LazyTopK,
    StreamingHistogram,
)
from repro.floorplan.plan import FloorPlan
from repro.graph.anchors import AnchorIndex
from repro.index.hashtable import AnchorObjectTable

if TYPE_CHECKING:
    from repro.queries.density import ZoneDensity

#: Analytics checkpoint state version (carried inside the service's v2
#: checkpoint envelope). Version 2 added modal-readout hysteresis: the
#: committed modal region, the pending-candidate debounce state, and the
#: ``flow_hysteresis`` threshold are all part of the serialized state.
ANALYTICS_STATE_VERSION = 2

#: Default modal-transition debounce: a new modal region must hold for
#: this many consecutive epochs before a flow event is committed. The
#: posterior's modal region flaps between adjacent rooms while belief
#: mass is split near a door, and every flap used to count as a
#: transition — inflating flow counts roughly 4× against ground truth.
#: ``1`` disables the debounce (every readout flip commits immediately).
DEFAULT_FLOW_HYSTERESIS = 2

#: Absolute float tolerance of the incremental-vs-recompute equivalence
#: guarantee. Incremental maintenance applies the same additions in a
#: different order than a full refold, so the aggregates agree to well
#: under this bound but not bit-exactly.
RECOMPUTE_TOLERANCE = 1e-6

FlowKey = str


def flow_key(source: str, target: str) -> FlowKey:
    """The JSON-safe key of one directed room edge."""
    return f"{source}->{target}"


class SnapshotLike(Protocol):
    """The slice of a service snapshot the analytics engine reads.

    :class:`~repro.service.tracking.ServiceSnapshot` satisfies this; so
    does any replayed stand-in with the same two fields. Keeping the
    dependency structural avoids an analytics → service import cycle.
    """

    @property
    def second(self) -> int: ...

    @property
    def table(self) -> AnchorObjectTable: ...


class AnalyticsEngine:
    """Incrementally-maintained occupancy/flow/dwell analytics."""

    def __init__(
        self,
        plan: FloorPlan,
        anchor_index: AnchorIndex,
        dwell_edges: Sequence[float] = DEFAULT_DWELL_EDGES,
        flow_hysteresis: int = DEFAULT_FLOW_HYSTERESIS,
    ) -> None:
        if flow_hysteresis < 1:
            raise ValueError("flow_hysteresis must be >= 1")
        self.region_map = RegionMap(plan, anchor_index)
        self.dwell_edges: Tuple[float, ...] = tuple(float(e) for e in dwell_edges)
        self.flow_hysteresis = int(flow_hysteresis)
        # -- per-object state ------------------------------------------
        self._dist: Dict[str, Dict[int, float]] = {}
        self._mass: Dict[str, Dict[str, float]] = {}
        self._modal: Dict[str, str] = {}
        self._modal_since: Dict[str, int] = {}
        #: debounce state: object -> (candidate region, second the
        #: candidate was first read out, consecutive readout count)
        self._pending: Dict[str, Tuple[str, int, int]] = {}
        # -- aggregates -------------------------------------------------
        self._occupancy: Dict[str, float] = {
            region: 0.0 for region in self.region_map.regions
        }
        self._occ_m2: Dict[str, float] = {
            region: 0.0 for region in self.region_map.regions
        }
        self._density: Dict[int, float] = {}
        self._flows: Dict[FlowKey, int] = {}
        self._enters: Dict[str, int] = {}
        self._leaves: Dict[str, int] = {}
        self._dwell_region: Dict[str, StreamingHistogram] = {}
        self._dwell_object: Dict[str, StreamingHistogram] = {}
        self._topk = LazyTopK()
        for region in self.region_map.regions:
            self._topk.update(region, 0.0)
        # -- counters ---------------------------------------------------
        self.epochs = 0
        self.updates = 0
        self.flow_events = 0
        self.first_second: Optional[int] = None
        self.last_second: Optional[int] = None
        self._epoch_delta: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # the write path: one call per published snapshot
    # ------------------------------------------------------------------
    def observe_snapshot(self, snapshot: SnapshotLike) -> Dict[str, object]:
        """Fold one published service snapshot into every aggregate.

        ``snapshot`` needs only ``.second`` and ``.table`` (the
        :class:`~repro.service.tracking.ServiceSnapshot` shape). Returns
        the epoch's analytics delta record (what the event log stores).
        """
        second = int(snapshot.second)
        table = snapshot.table
        if self.last_second is not None and second <= self.last_second:
            raise ValueError(
                f"snapshots must advance in time: got second {second} "
                f"after {self.last_second}"
            )
        epoch_flows: Dict[FlowKey, int] = {}
        epoch_dwells: List[Tuple[str, float]] = []
        epoch_updates = 0
        touched: Set[str] = set()

        present = set(table.objects())
        for object_id in sorted(set(self._dist) - present):
            self._retire_object(object_id, second, epoch_dwells, touched)
            epoch_updates += 1

        for object_id in sorted(present):
            new_dist = table.distribution_of(object_id)
            old_dist = self._dist.get(object_id)
            if old_dist == new_dist:
                # Posterior unchanged: zero aggregate delta — but an
                # unchanged posterior re-reads the same modal region, so
                # a pending transition candidate keeps accumulating (the
                # naive comparator, which reprocesses every object every
                # epoch, counts this epoch; so must we).
                if object_id in self._pending:
                    self._observe_modal_readout(
                        object_id,
                        self._pending[object_id][0],
                        second,
                        epoch_flows,
                        epoch_dwells,
                    )
                continue
            epoch_updates += 1
            self._apply_density_delta(old_dist, new_dist)
            new_mass = self.region_map.fold(new_dist)
            old_mass = self._mass.get(object_id, {})
            for region in sorted(set(old_mass) | set(new_mass)):
                old_m = old_mass.get(region, 0.0)
                new_m = new_mass.get(region, 0.0)
                self._occupancy[region] += new_m - old_m
                self._occ_m2[region] += new_m * (1.0 - new_m) - old_m * (1.0 - old_m)
                touched.add(region)
            new_modal = RegionMap.modal_region(new_mass)
            assert new_modal is not None  # present objects carry mass
            old_modal = self._modal.get(object_id)
            if old_modal is None:
                self._enters[new_modal] = self._enters.get(new_modal, 0) + 1
                self._modal_since[object_id] = second
                self._modal[object_id] = new_modal
            else:
                self._observe_modal_readout(
                    object_id, new_modal, second, epoch_flows, epoch_dwells
                )
            self._dist[object_id] = new_dist
            self._mass[object_id] = new_mass

        for region in sorted(touched):
            self._topk.update(region, self._occupancy[region])

        self.epochs += 1
        self.updates += epoch_updates
        if self.first_second is None:
            self.first_second = second
        self.last_second = second
        self._epoch_delta = {
            "occupancy": {
                region: round(self._occupancy[region], 9)
                for region in self.region_map.regions
            },
            "flows": dict(sorted(epoch_flows.items())),
            "dwells": [[region, seconds] for region, seconds in epoch_dwells],
            "updates": epoch_updates,
        }
        if obs.enabled():
            obs.add("analytics.epochs")
            obs.add("analytics.updates", epoch_updates)
            if epoch_flows:
                obs.add(
                    "analytics.flow_events", sum(epoch_flows.values())
                )
            obs.gauge_set("analytics.objects_tracked", len(self._dist))
            for region in sorted(touched):
                obs.gauge_set(
                    "analytics.room_occupancy",
                    round(self._occupancy[region], 9),
                    labels={"room": region},
                )
        return dict(self._epoch_delta)

    def _observe_modal_readout(
        self,
        object_id: str,
        readout: str,
        second: int,
        epoch_flows: Dict[FlowKey, int],
        epoch_dwells: List[Tuple[str, float]],
    ) -> None:
        """Debounced modal-transition logic for one tracked object.

        ``readout`` is this epoch's modal region. A readout matching the
        committed region clears any pending candidate; a differing
        readout must repeat for ``flow_hysteresis`` consecutive epochs
        before the transition commits. On commit, the dwell and the
        ``modal_since`` baseline are backdated to the second the
        candidate was first read out — the transition *happened* then,
        the debounce only delayed believing it.
        """
        committed = self._modal[object_id]
        if readout == committed:
            self._pending.pop(object_id, None)
            return
        pending = self._pending.get(object_id)
        if pending is not None and pending[0] == readout:
            first_seen, count = pending[1], pending[2] + 1
        else:
            first_seen, count = second, 1
        if count < self.flow_hysteresis:
            self._pending[object_id] = (readout, first_seen, count)
            return
        self._pending.pop(object_id, None)
        dwelled = float(first_seen - self._modal_since[object_id])
        self._record_dwell(object_id, committed, dwelled)
        epoch_dwells.append((committed, dwelled))
        key = flow_key(committed, readout)
        self._flows[key] = self._flows.get(key, 0) + 1
        epoch_flows[key] = epoch_flows.get(key, 0) + 1
        self._leaves[committed] = self._leaves.get(committed, 0) + 1
        self._enters[readout] = self._enters.get(readout, 0) + 1
        self._modal_since[object_id] = first_seen
        self._modal[object_id] = readout
        self.flow_events += 1

    def _retire_object(
        self,
        object_id: str,
        second: int,
        epoch_dwells: List[Tuple[str, float]],
        touched: Set[str],
    ) -> None:
        """An object left the table: unwind its mass, close its dwell."""
        old_dist = self._dist.pop(object_id)
        self._apply_density_delta(old_dist, {})
        old_mass = self._mass.pop(object_id)
        for region, old_m in old_mass.items():
            self._occupancy[region] -= old_m
            self._occ_m2[region] -= old_m * (1.0 - old_m)
            touched.add(region)
        modal = self._modal.pop(object_id)
        self._pending.pop(object_id, None)
        dwelled = float(second - self._modal_since.pop(object_id))
        self._record_dwell(object_id, modal, dwelled)
        epoch_dwells.append((modal, dwelled))
        self._leaves[modal] = self._leaves.get(modal, 0) + 1

    def _apply_density_delta(
        self,
        old_dist: Optional[Mapping[int, float]],
        new_dist: Mapping[int, float],
    ) -> None:
        if old_dist:
            for ap_id, probability in old_dist.items():
                remaining = self._density.get(ap_id, 0.0) - probability
                if remaining == 0.0:
                    self._density.pop(ap_id, None)
                else:
                    self._density[ap_id] = remaining
        for ap_id, probability in new_dist.items():
            self._density[ap_id] = self._density.get(ap_id, 0.0) + probability

    def _record_dwell(self, object_id: str, region: str, seconds: float) -> None:
        if region not in self._dwell_region:
            self._dwell_region[region] = StreamingHistogram(self.dwell_edges)
        self._dwell_region[region].add(seconds)
        if object_id not in self._dwell_object:
            self._dwell_object[object_id] = StreamingHistogram(self.dwell_edges)
        self._dwell_object[object_id].add(seconds)

    # ------------------------------------------------------------------
    # the read path
    # ------------------------------------------------------------------
    def occupancy_of(self, region: str) -> Tuple[float, float]:
        """``(expected_count, variance)`` of one region right now."""
        return self._occupancy.get(region, 0.0), self._occ_m2.get(region, 0.0)

    def room_occupancy(self) -> Dict[str, Dict[str, float]]:
        """Expected count and variance for every region."""
        return {
            region: {
                "expected": self._occupancy[region],
                "variance": self._occ_m2[region],
            }
            for region in self.region_map.regions
        }

    def top_regions(self, k: int) -> List[Tuple[str, float]]:
        """The ``k`` busiest regions by expected count."""
        return self._topk.top(k)

    def flow_counts(self) -> Dict[FlowKey, int]:
        """Cumulative transition counts per directed region edge."""
        return dict(sorted(self._flows.items()))

    def flow_rates(self) -> Dict[FlowKey, float]:
        """Transitions per observed second, per directed region edge."""
        span = self.observed_seconds()
        if span <= 0:
            return {key: 0.0 for key in sorted(self._flows)}
        return {key: self._flows[key] / span for key in sorted(self._flows)}

    def enter_leave_counts(self) -> Dict[str, Dict[str, int]]:
        """Cumulative enters/leaves per region."""
        regions = sorted(set(self._enters) | set(self._leaves))
        return {
            region: {
                "enters": self._enters.get(region, 0),
                "leaves": self._leaves.get(region, 0),
            }
            for region in regions
        }

    def dwell_histogram(self, region: str) -> Optional[StreamingHistogram]:
        """Completed-dwell histogram of one region (None when empty)."""
        return self._dwell_region.get(region)

    def object_dwell_histogram(self, object_id: str) -> Optional[StreamingHistogram]:
        """Completed-dwell histogram of one object (None when empty)."""
        return self._dwell_object.get(object_id)

    def dwell_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-region dwell stats: completed stays, mean, bucket counts."""
        return {
            region: {
                "count": histogram.count,
                "mean_seconds": round(histogram.mean(), 9),
                "buckets": list(histogram.counts),
            }
            for region, histogram in sorted(self._dwell_region.items())
        }

    def heatmap(self, limit: Optional[int] = None) -> List[Tuple[int, float, float, float]]:
        """``(ap_id, x, y, expected_mass)`` rows, densest anchors first."""
        ranked = sorted(
            self._density.items(), key=lambda item: (-item[1], item[0])
        )
        if limit is not None:
            ranked = ranked[:limit]
        rows: List[Tuple[int, float, float, float]] = []
        for ap_id, mass in ranked:
            point = self.region_map.anchor_index.anchor(ap_id).point
            rows.append((ap_id, point.x, point.y, mass))
        return rows

    def tracked_objects(self) -> int:
        """Objects currently contributing mass to the aggregates."""
        return len(self._dist)

    def observed_seconds(self) -> int:
        """Width of the observed time span (0 before two epochs)."""
        if self.first_second is None or self.last_second is None:
            return 0
        return self.last_second - self.first_second

    def epoch_delta(self) -> Dict[str, object]:
        """The latest epoch's analytics record (for the event log)."""
        return dict(self._epoch_delta)

    def summary(self) -> Dict[str, object]:
        """The ``/analytics`` endpoint document."""
        top = [
            {"region": region, "expected": round(score, 9)}
            for region, score in self.top_regions(5)
        ]
        occupancy = {
            region: {
                "expected": round(self._occupancy[region], 9),
                "variance": round(max(self._occ_m2[region], 0.0), 9),
            }
            for region in self.region_map.regions
        }
        return {
            "epochs": self.epochs,
            "updates": self.updates,
            "first_second": self.first_second,
            "last_second": self.last_second,
            "objects": self.tracked_objects(),
            "occupancy": occupancy,
            "top_regions": top,
            "flows": {
                "events": self.flow_events,
                "edges": self.flow_counts(),
                "rates_per_second": {
                    key: round(value, 9)
                    for key, value in self.flow_rates().items()
                },
            },
            "enter_leave": self.enter_leave_counts(),
            "dwell": self.dwell_summary(),
            "heatmap_top": [
                {
                    "ap_id": ap_id,
                    "x": round(x, 3),
                    "y": round(y, 3),
                    "mass": round(mass, 9),
                }
                for ap_id, x, y, mass in self.heatmap(limit=10)
            ],
        }

    # ------------------------------------------------------------------
    # density-query surface (what repro.queries.density shims onto)
    # ------------------------------------------------------------------
    def room_densities(self, top_n: int = 3) -> "List[ZoneDensity]":
        """Per-room expected occupancy as :class:`ZoneDensity` rows.

        Same result shape as :func:`repro.queries.density.room_densities`
        but served from the maintained room-mass aggregates — no anchor
        rescans, no per-room range queries.
        """
        from repro.queries.density import ZoneDensity

        rows: "List[ZoneDensity]" = []
        for region in self.region_map.room_ids():
            members = sorted(
                (
                    (object_id, mass[region])
                    for object_id, mass in self._mass.items()
                    if region in mass
                ),
                key=lambda item: (-item[1], item[0]),
            )
            rows.append(
                ZoneDensity(
                    zone_id=region,
                    expected_count=self._occupancy[region],
                    top_objects=tuple(members[:top_n]),
                )
            )
        rows.sort(key=lambda z: (-z.expected_count, z.zone_id))
        return rows

    # ------------------------------------------------------------------
    # the recompute-equivalence path (testing / self-verification)
    # ------------------------------------------------------------------
    def recompute_from(
        self, table: AnchorObjectTable
    ) -> Tuple[Dict[str, float], Dict[str, float], Dict[int, float]]:
        """Full refold of ``(occupancy, variance, density)`` from a table.

        The naive O(table) definition the incremental path must agree
        with (within :data:`RECOMPUTE_TOLERANCE`).
        """
        occupancy = {region: 0.0 for region in self.region_map.regions}
        m2 = {region: 0.0 for region in self.region_map.regions}
        density: Dict[int, float] = {}
        for object_id in sorted(table.objects()):
            distribution = table.distribution_of(object_id)
            for ap_id, probability in distribution.items():
                density[ap_id] = density.get(ap_id, 0.0) + probability
            for region, mass in self.region_map.fold(distribution).items():
                occupancy[region] += mass
                m2[region] += mass * (1.0 - mass)
        return occupancy, m2, density

    def self_check(
        self, table: AnchorObjectTable, tolerance: float = RECOMPUTE_TOLERANCE
    ) -> None:
        """Assert the incremental aggregates match a full recompute."""
        occupancy, m2, density = self.recompute_from(table)
        for region in self.region_map.regions:
            gap = abs(occupancy[region] - self._occupancy[region])
            assert gap <= tolerance, (
                f"occupancy[{region}] drifted {gap} from recompute"
            )
            gap = abs(m2[region] - self._occ_m2[region])
            assert gap <= tolerance, (
                f"variance[{region}] drifted {gap} from recompute"
            )
        for ap_id in set(density) | set(self._density):
            gap = abs(density.get(ap_id, 0.0) - self._density.get(ap_id, 0.0))
            assert gap <= tolerance, (
                f"density[{ap_id}] drifted {gap} from recompute"
            )

    # ------------------------------------------------------------------
    # checkpointing (rides in the service's v2 envelope)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Everything a warm restart needs, JSON-safe; resumes bit-exact."""
        return {
            "state_version": ANALYTICS_STATE_VERSION,
            "dwell_edges": list(self.dwell_edges),
            "flow_hysteresis": self.flow_hysteresis,
            "epochs": self.epochs,
            "updates": self.updates,
            "flow_events": self.flow_events,
            "first_second": self.first_second,
            "last_second": self.last_second,
            "objects": {
                object_id: {
                    "dist": {
                        str(ap_id): probability
                        for ap_id, probability in sorted(
                            self._dist[object_id].items()
                        )
                    },
                    "modal": self._modal[object_id],
                    "modal_since": self._modal_since[object_id],
                    "pending": (
                        list(self._pending[object_id])
                        if object_id in self._pending
                        else None
                    ),
                }
                for object_id in sorted(self._dist)
            },
            "occupancy": dict(sorted(self._occupancy.items())),
            "occ_m2": dict(sorted(self._occ_m2.items())),
            "density": {
                str(ap_id): mass
                for ap_id, mass in sorted(self._density.items())
            },
            "flows": dict(sorted(self._flows.items())),
            "enters": dict(sorted(self._enters.items())),
            "leaves": dict(sorted(self._leaves.items())),
            "dwell_region": {
                region: histogram.state_dict()
                for region, histogram in sorted(self._dwell_region.items())
            },
            "dwell_object": {
                object_id: histogram.state_dict()
                for object_id, histogram in sorted(self._dwell_object.items())
            },
            "epoch_delta": dict(self._epoch_delta),
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Restore from :meth:`state_dict` output (same world geometry)."""
        version = as_int(state.get("state_version", 0))
        if version != ANALYTICS_STATE_VERSION:
            raise ValueError(
                f"analytics state version {version} is not supported "
                f"(expected {ANALYTICS_STATE_VERSION})"
            )
        self.dwell_edges = tuple(as_float(e) for e in as_list(state["dwell_edges"]))
        self.flow_hysteresis = as_int(state["flow_hysteresis"])
        self.epochs = as_int(state["epochs"])
        self.updates = as_int(state["updates"])
        self.flow_events = as_int(state["flow_events"])
        first = state["first_second"]
        last = state["last_second"]
        self.first_second = None if first is None else as_int(first)
        self.last_second = None if last is None else as_int(last)
        self._dist.clear()
        self._mass.clear()
        self._modal.clear()
        self._modal_since.clear()
        self._pending.clear()
        objects = as_map(state["objects"])
        for object_id in sorted(objects):
            record = as_map(objects[object_id])
            dist_state = as_map(record["dist"])
            distribution = {
                int(ap_id): float(dist_state[ap_id]) for ap_id in dist_state
            }
            self._dist[str(object_id)] = distribution
            self._mass[str(object_id)] = self.region_map.fold(distribution)
            self._modal[str(object_id)] = str(record["modal"])
            self._modal_since[str(object_id)] = int(record["modal_since"])
            pending = record.get("pending")
            if pending is not None:
                candidate, first_seen, count = as_list(pending)
                self._pending[str(object_id)] = (
                    str(candidate),
                    as_int(first_seen),
                    as_int(count),
                )
        occupancy = as_map(state["occupancy"])
        occ_m2 = as_map(state["occ_m2"])
        self._occupancy = {
            region: float(occupancy.get(region, 0.0))
            for region in self.region_map.regions
        }
        self._occ_m2 = {
            region: float(occ_m2.get(region, 0.0))
            for region in self.region_map.regions
        }
        density = as_map(state["density"])
        self._density = {
            int(ap_id): float(mass) for ap_id, mass in density.items()
        }
        flows = as_map(state["flows"])
        enters = as_map(state["enters"])
        leaves = as_map(state["leaves"])
        self._flows = {str(key): int(flows[key]) for key in sorted(flows)}
        self._enters = {str(key): int(enters[key]) for key in sorted(enters)}
        self._leaves = {str(key): int(leaves[key]) for key in sorted(leaves)}
        dwell_region = as_map(state["dwell_region"])
        dwell_object = as_map(state["dwell_object"])
        self._dwell_region = {
            str(region): StreamingHistogram.from_state(dwell_region[region])
            for region in sorted(dwell_region)
        }
        self._dwell_object = {
            str(object_id): StreamingHistogram.from_state(dwell_object[object_id])
            for object_id in sorted(dwell_object)
        }
        self._topk = LazyTopK()
        for region in self.region_map.regions:
            self._topk.update(region, self._occupancy[region])
        delta = as_map(state.get("epoch_delta", {}))
        self._epoch_delta = dict(delta)
