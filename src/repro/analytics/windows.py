"""Historical window queries over recorded analytics epochs.

A ``repro serve --events ... --analytics`` run stores the engine's
per-epoch delta (occupancy snapshot, flow events, completed dwells) as
the ``analytics`` section of every epoch record. These helpers replay
those sections from a loaded event log — including rotated generations
via :func:`repro.obs.events.read_all_events` — to answer the historical
questions the live engine cannot: *what was room R's occupancy between
t0 and t1*, *how many transitions crossed each edge in that window*,
*what did the dwell distribution look like*.

Window semantics: a record belongs to ``[t0, t1]`` when its epoch
``second`` satisfies ``t0 <= second <= t1`` (inclusive on both ends;
``None`` leaves that end open). Occupancy is a per-epoch *level*, so
window occupancy aggregates samples (mean/min/max/last). Flows and
dwells are per-epoch *deltas*, so window rollups sum them — replaying a
window is just adding up its records, which is what makes reads across
rotated generations safe: no record depends on any other.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analytics._coerce import as_int
from repro.analytics.streaming import DEFAULT_DWELL_EDGES, StreamingHistogram


def analytics_epochs(
    records: Sequence[Mapping[str, object]],
) -> List[Tuple[int, Mapping[str, object]]]:
    """``(second, analytics_section)`` for every record that has one."""
    epochs: List[Tuple[int, Mapping[str, object]]] = []
    for record in records:
        section = record.get("analytics")
        if isinstance(section, Mapping) and "second" in record:
            epochs.append((as_int(record["second"]), section))
    return epochs


def _in_window(second: int, t0: Optional[int], t1: Optional[int]) -> bool:
    if t0 is not None and second < t0:
        return False
    if t1 is not None and second > t1:
        return False
    return True


def occupancy_window(
    records: Sequence[Mapping[str, object]],
    region: str,
    t0: Optional[int] = None,
    t1: Optional[int] = None,
) -> Dict[str, object]:
    """Occupancy-level stats for one region over ``[t0, t1]``.

    Returns ``samples`` (epochs seen), ``mean``/``min``/``max``/``last``
    expected counts; the numeric fields are ``None`` when the window is
    empty.
    """
    values: List[float] = []
    for second, section in analytics_epochs(records):
        if not _in_window(second, t0, t1):
            continue
        occupancy = section.get("occupancy")
        if isinstance(occupancy, Mapping) and region in occupancy:
            values.append(float(occupancy[region]))
    if not values:
        return {
            "region": region,
            "samples": 0,
            "mean": None,
            "min": None,
            "max": None,
            "last": None,
        }
    return {
        "region": region,
        "samples": len(values),
        "mean": round(sum(values) / len(values), 9),
        "min": round(min(values), 9),
        "max": round(max(values), 9),
        "last": round(values[-1], 9),
    }


def flow_window(
    records: Sequence[Mapping[str, object]],
    t0: Optional[int] = None,
    t1: Optional[int] = None,
) -> Dict[str, int]:
    """Summed transition counts per directed edge over ``[t0, t1]``."""
    totals: Dict[str, int] = {}
    for second, section in analytics_epochs(records):
        if not _in_window(second, t0, t1):
            continue
        flows = section.get("flows")
        if not isinstance(flows, Mapping):
            continue
        for edge in flows:
            totals[str(edge)] = totals.get(str(edge), 0) + int(flows[edge])
    return dict(sorted(totals.items()))


def dwell_window(
    records: Sequence[Mapping[str, object]],
    t0: Optional[int] = None,
    t1: Optional[int] = None,
    edges: Sequence[float] = DEFAULT_DWELL_EDGES,
) -> Dict[str, StreamingHistogram]:
    """Per-region histograms of dwells *completed* inside ``[t0, t1]``."""
    histograms: Dict[str, StreamingHistogram] = {}
    for second, section in analytics_epochs(records):
        if not _in_window(second, t0, t1):
            continue
        dwells = section.get("dwells")
        if not isinstance(dwells, Sequence):
            continue
        for entry in dwells:
            if not isinstance(entry, Sequence) or len(entry) != 2:
                continue
            region = str(entry[0])
            if region not in histograms:
                histograms[region] = StreamingHistogram(edges)
            histograms[region].add(float(entry[1]))
    return {region: histograms[region] for region in sorted(histograms)}


def window_report(
    records: Sequence[Mapping[str, object]],
    t0: Optional[int] = None,
    t1: Optional[int] = None,
    region: Optional[str] = None,
) -> Dict[str, object]:
    """The full window-query document the CLI renders.

    With ``region`` set, occupancy covers just that region; otherwise
    every region seen in the window is reported.
    """
    epochs = [
        (second, section)
        for second, section in analytics_epochs(records)
        if _in_window(second, t0, t1)
    ]
    seconds = [second for second, _ in epochs]
    regions: List[str] = []
    if region is not None:
        regions = [region]
    else:
        seen: Dict[str, None] = {}
        for _, section in epochs:
            occupancy = section.get("occupancy")
            if isinstance(occupancy, Mapping):
                for name in occupancy:
                    seen[str(name)] = None
        regions = sorted(seen)
    dwells = dwell_window(records, t0, t1)
    return {
        "window": {"t0": t0, "t1": t1},
        "epochs": len(epochs),
        "first_second": min(seconds) if seconds else None,
        "last_second": max(seconds) if seconds else None,
        "occupancy": {
            name: occupancy_window(records, name, t0, t1) for name in regions
        },
        "flows": flow_window(records, t0, t1),
        "dwell": {
            name: {
                "count": histogram.count,
                "mean_seconds": round(histogram.mean(), 9),
                "buckets": list(histogram.counts),
            }
            for name, histogram in dwells.items()
        },
    }
