"""Analytics accuracy against simulator ground truth.

The simulator knows where every object *really* is, so the same
aggregate definitions the engine maintains over the belief state can be
computed over the truth: :class:`TruthTracker` follows true positions
through the same region model (first containing room, else the hallway
bucket) and accumulates true flows and true dwell histograms;
:func:`accuracy_summary` then scores the engine against it —

* **occupancy MAE** — mean absolute error between expected and true
  per-region counts at the latest epoch;
* **flow-count error** — summed absolute per-edge gap between estimated
  and true cumulative transition counts;
* **dwell-distribution distance** — total-variation distance between
  estimated and true dwell histograms, averaged over regions either
  side observed.

This is the per-scenario evaluation methodology of the experiments
pipeline applied to aggregates instead of query answers; EXPERIMENTS.md
tabulates the results per scenario.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.analytics.engine import AnalyticsEngine, flow_key
from repro.analytics.regions import HALLWAYS
from repro.analytics.streaming import DEFAULT_DWELL_EDGES, StreamingHistogram
from repro.floorplan.plan import FloorPlan
from repro.geometry import Point


class TruthTracker:
    """True occupancy/flow/dwell aggregates from simulator positions.

    Call :meth:`observe` once per epoch with the simulator's true
    positions (``Simulation.true_positions()``); the tracker applies the
    same modal-transition and dwell-completion rules the engine applies
    to belief mass, but to certainties.
    """

    def __init__(
        self,
        plan: FloorPlan,
        dwell_edges: Sequence[float] = DEFAULT_DWELL_EDGES,
    ) -> None:
        self.plan = plan
        self.dwell_edges = tuple(float(e) for e in dwell_edges)
        self.counts: Dict[str, float] = {
            room.room_id: 0.0 for room in plan.rooms
        }
        self.counts[HALLWAYS] = 0.0
        self.flows: Dict[str, int] = {}
        self.dwell_region: Dict[str, StreamingHistogram] = {}
        self._region: Dict[str, str] = {}
        self._since: Dict[str, int] = {}
        self.epochs = 0
        self.flow_events = 0

    def _region_of(self, position: Point) -> str:
        for room in self.plan.rooms:
            if room.contains(position):
                return room.room_id
        return HALLWAYS

    def observe(self, second: int, positions: Mapping[str, Point]) -> None:
        """Fold one epoch of true positions into the true aggregates."""
        # Deferred: analytics sits below sim in the layer map (ARCH);
        # only this truth-scoring path touches the simulator.
        from repro.sim.ground_truth import true_room_counts

        self.counts = true_room_counts(self.plan, positions)
        for object_id in sorted(set(self._region) - set(positions)):
            old_region = self._region.pop(object_id)
            self._close_dwell(old_region, second - self._since.pop(object_id))
        for object_id in sorted(positions):
            new_region = self._region_of(positions[object_id])
            old_region = self._region.get(object_id)
            if old_region is None:
                self._since[object_id] = second
            elif old_region != new_region:
                self._close_dwell(old_region, second - self._since[object_id])
                key = flow_key(old_region, new_region)
                self.flows[key] = self.flows.get(key, 0) + 1
                self._since[object_id] = second
                self.flow_events += 1
            self._region[object_id] = new_region
        self.epochs += 1

    def _close_dwell(self, region: str, seconds: int) -> None:
        if region not in self.dwell_region:
            self.dwell_region[region] = StreamingHistogram(self.dwell_edges)
        self.dwell_region[region].add(float(seconds))


def accuracy_summary(
    engine: AnalyticsEngine, truth: TruthTracker
) -> Dict[str, object]:
    """Score the engine's aggregates against tracked ground truth."""
    regions = engine.region_map.regions
    occupancy_errors = [
        abs(engine.occupancy_of(region)[0] - truth.counts.get(region, 0.0))
        for region in regions
    ]
    occupancy_mae = (
        sum(occupancy_errors) / len(occupancy_errors)
        if occupancy_errors
        else 0.0
    )
    estimated_flows = engine.flow_counts()
    edges = sorted(set(estimated_flows) | set(truth.flows))
    flow_error = sum(
        abs(estimated_flows.get(edge, 0) - truth.flows.get(edge, 0))
        for edge in edges
    )
    distances: Dict[str, float] = {}
    empty = StreamingHistogram(engine.dwell_edges)
    for region in sorted(
        set(truth.dwell_region)
        | {r for r in regions if engine.dwell_histogram(r) is not None}
    ):
        estimated = engine.dwell_histogram(region) or empty
        actual = truth.dwell_region.get(region, empty)
        distances[region] = round(estimated.distance(actual), 9)
    dwell_distance: Optional[float] = (
        round(sum(distances.values()) / len(distances), 9)
        if distances
        else None
    )
    return {
        "occupancy_mae": round(occupancy_mae, 9),
        "flow_count_error": flow_error,
        "flow_events_estimated": engine.flow_events,
        "flow_events_true": truth.flow_events,
        "dwell_distance_mean": dwell_distance,
        "dwell_distance": distances,
        "epochs": engine.epochs,
    }
