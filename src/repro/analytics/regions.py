"""Region model: folding anchor-point posteriors into room mass.

Every anchor point of the walking graph belongs to exactly one *region*:
the room that contains it, or the shared hallway bucket
(:data:`HALLWAYS`). Folding an object's posterior anchor distribution
through this map yields its **room-membership mass** — the probability
that the object is in each region — which is the quantity every
aggregate in :mod:`repro.analytics` is built from. The fold is a single
pass over the object's (sparse) anchor distribution; no particles, no
geometry tests, no per-room rescans.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.floorplan.plan import FloorPlan
from repro.graph.anchors import AnchorIndex

#: The region key that pools every hallway anchor (rooms are the unit of
#: occupancy analytics; hallways are transit space).
HALLWAYS = "__hallways__"


class RegionMap:
    """Precomputed ``ap_id -> region`` lookup for one anchor index.

    Built once (one pass over the anchors); every later fold is a sparse
    dictionary walk. The region list is stable: rooms in floor-plan
    order, then the hallway bucket.
    """

    def __init__(self, plan: FloorPlan, anchor_index: AnchorIndex) -> None:
        self.plan = plan
        self.anchor_index = anchor_index
        self._region_of: Dict[int, str] = {}
        for ap in anchor_index:
            self._region_of[ap.ap_id] = (
                ap.room_id if ap.room_id is not None else HALLWAYS
            )
        self.regions: Tuple[str, ...] = tuple(
            [room.room_id for room in plan.rooms] + [HALLWAYS]
        )
        self._known = frozenset(self.regions)

    def region_of(self, ap_id: int) -> str:
        """The region containing one anchor point."""
        return self._region_of[ap_id]

    def fold(self, distribution: Mapping[int, float]) -> Dict[str, float]:
        """Fold an anchor posterior into per-region membership mass.

        Returns only regions with positive mass, keys sorted, so two
        identical posteriors always fold to an identical dict.
        """
        mass: Dict[str, float] = {}
        for ap_id, probability in distribution.items():
            region = self._region_of[ap_id]
            mass[region] = mass.get(region, 0.0) + probability
        return {region: mass[region] for region in sorted(mass)}

    @staticmethod
    def modal_region(mass: Mapping[str, float]) -> Optional[str]:
        """The region holding the most mass (ties break by region id)."""
        best: Optional[str] = None
        best_mass = 0.0
        for region in sorted(mass):
            value = mass[region]
            if value > best_mass:
                best, best_mass = region, value
        return best

    def room_ids(self) -> List[str]:
        """Room regions only (the hallway bucket excluded)."""
        return [region for region in self.regions if region != HALLWAYS]
