"""Streaming aggregate structures: fixed-bucket histograms, lazy top-k.

Both structures are O(1) per update and never rescan history — the
property the whole analytics layer is built on. Both serialize to plain
JSON-safe dicts so checkpoints resume them bit-exactly.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.analytics._coerce import as_float, as_int, as_list, as_map

#: Default dwell-time bucket upper bounds, in seconds. The last implicit
#: bucket is open-ended (``>= edges[-1]``).
DEFAULT_DWELL_EDGES: Tuple[float, ...] = (5.0, 10.0, 20.0, 40.0, 80.0, 160.0)


class StreamingHistogram:
    """Fixed-bucket histogram with exact count/total (no sample storage).

    ``edges`` are ascending bucket upper bounds; a sample lands in the
    first bucket whose edge is strictly greater than it, or in the final
    open-ended bucket. Buckets are fixed at construction, so merging and
    distance are well-defined across instances with equal edges.
    """

    def __init__(self, edges: Sequence[float] = DEFAULT_DWELL_EDGES) -> None:
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("histogram edges must be strictly ascending")
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0

    def add(self, value: float) -> None:
        """Record one sample."""
        index = len(self.edges)
        for i, edge in enumerate(self.edges):
            if value < edge:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += float(value)

    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram (same edges) into this one."""
        if other.edges != self.edges:
            raise ValueError("cannot merge histograms with different edges")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total

    def distance(self, other: "StreamingHistogram") -> float:
        """Total-variation distance between normalized bucket masses.

        0.0 for identical shapes, 1.0 for disjoint ones. Two empty
        histograms are identical; an empty vs a non-empty one are
        maximally distant.
        """
        if other.edges != self.edges:
            raise ValueError("cannot compare histograms with different edges")
        if self.count == 0 and other.count == 0:
            return 0.0
        if self.count == 0 or other.count == 0:
            return 1.0
        gap = 0.0
        for mine, theirs in zip(self.counts, other.counts):
            gap += abs(mine / self.count - theirs / other.count)
        return gap / 2.0

    # -- checkpointing --------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "StreamingHistogram":
        histogram = cls(edges=[as_float(e) for e in as_list(state["edges"])])
        histogram.counts = [as_int(c) for c in as_list(state["counts"])]
        histogram.count = as_int(state["count"])
        histogram.total = as_float(state["total"])
        return histogram


class LazyTopK:
    """Top-k keys by score, maintained from deltas via a monotone heap.

    ``update`` pushes a new heap entry and bumps the key's version; stale
    entries (older versions) are discarded lazily when :meth:`top` pops
    them. Updates are O(log n); reads pop at most the stale backlog once.
    Scores tie-break by key so the ranking is deterministic.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, str, int]] = []
        self._version: Dict[str, int] = {}
        self._score: Dict[str, float] = {}

    def update(self, key: str, score: float) -> None:
        """Record a key's new score (supersedes its prior entries)."""
        version = self._version.get(key, 0) + 1
        self._version[key] = version
        self._score[key] = score
        heapq.heappush(self._heap, (-score, key, version))

    def top(self, k: int) -> List[Tuple[str, float]]:
        """The ``k`` highest-scoring keys, compacting stale entries."""
        if k <= 0:
            return []
        result: List[Tuple[str, float]] = []
        kept: List[Tuple[float, str, int]] = []
        while self._heap and len(result) < k:
            negated, key, version = heapq.heappop(self._heap)
            if self._version.get(key) != version:
                continue  # superseded by a later update
            result.append((key, -negated))
            kept.append((negated, key, version))
        # Live entries popped for the answer go back on the heap.
        for entry in kept:
            heapq.heappush(self._heap, entry)
        return result

    def score_of(self, key: str) -> float:
        """The last recorded score for a key (0.0 when never updated)."""
        return self._score.get(key, 0.0)

    def __len__(self) -> int:
        return len(self._version)

    # -- checkpointing --------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        # Only the live score per key matters; the stale heap backlog is
        # an in-memory artifact and is rebuilt compacted on restore.
        return {"scores": dict(sorted(self._score.items()))}

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "LazyTopK":
        topk = cls()
        scores = as_map(state["scores"])
        for key in sorted(scores):
            topk.update(str(key), as_float(scores[key]))
        return topk
