"""Cache management module (paper Section 4.5)."""

from repro.cache.particle_cache import CachedParticleState, CacheStats, ParticleCacheManager

__all__ = ["CachedParticleState", "CacheStats", "ParticleCacheManager"]
