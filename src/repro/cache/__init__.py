"""Cache management module (paper Section 4.5)."""

from repro.cache.particle_cache import (
    CachedFilterState,
    CachedParticleState,
    CacheStats,
    ParticleCacheManager,
)

__all__ = [
    "CachedFilterState",
    "CachedParticleState",
    "CacheStats",
    "ParticleCacheManager",
]
