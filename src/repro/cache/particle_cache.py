"""Cache management module (paper Section 4.5).

Stores each object's filter state after a filter run so that a later
query over the same object resumes filtering from the cached timestamp
instead of replaying from scratch. The cache is backend-agnostic: it
holds any :class:`repro.filters.base.FilterState` (particle sets, Kalman
mixtures, ...) and tags its serialized form with the owning backend's
name and state version so checkpoints refuse incompatible restores.

Invalidation policy (exactly as the paper argues): a cached state is only
valid while the object has not been detected by a *new* device since it
was stored — once a new device run begins, the retained reading window
shifts and the old state would mix inconsistent information. The
collector exposes a per-object ``device_generation`` counter; the cache
compares generations on lookup.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

import repro.obs as obs
from repro.core.particles import ParticleSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.filters.base import FilterState


@dataclass
class CachedFilterState:
    """One cache entry: filter state of one object at one second."""

    object_id: str
    state: "FilterState"
    state_second: int
    device_generation: int


#: Backwards-compatible name from the particle-only cache era.
CachedParticleState = CachedFilterState


@dataclass
class CacheStats:
    """Hit/miss counters (used by the cache ablation benchmark)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ParticleCacheManager:
    """Per-object filter state cache with generation-based invalidation.

    Despite the historical name, the manager caches *any* backend's
    filter state; ``backend`` / ``state_version`` record whose states it
    holds so serialized caches are self-describing. The default
    ``decoder`` keeps plain ``ParticleCacheManager()`` (and pre-backend
    checkpoints) decoding particle sets.

    Thread-safe: the sharded executor (:mod:`repro.service.shards`) shares
    one cache across its worker threads, so lookups, stores, and the
    statistics counters are guarded by a lock. Entries are keyed per
    object, so concurrent shards never contend on the same entry.
    """

    def __init__(
        self,
        backend: str = "particle",
        state_version: int = 1,
        decoder: "Optional[Callable[[Dict[str, object]], FilterState]]" = None,
    ) -> None:
        self.backend = backend
        self.state_version = state_version
        self._decoder: "Callable[[Dict[str, object]], FilterState]" = (
            decoder if decoder is not None else ParticleSet.from_state
        )
        self._entries: Dict[str, CachedFilterState] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def lookup(
        self, object_id: str, device_generation: int
    ) -> "Optional[Tuple[FilterState, int]]":
        """Fetch a resumable state, or None on miss/stale entry.

        Returns ``(state_copy, state_second)``. Stale entries (device
        generation changed) are evicted on sight.
        """
        with self._lock:
            entry = self._entries.get(object_id)
            if entry is None:
                self.stats.misses += 1
                obs.add("cache.misses")
                return None
            if entry.device_generation != device_generation:
                del self._entries[object_id]
                self.stats.invalidations += 1
                self.stats.misses += 1
                obs.add("cache.invalidations")
                obs.add("cache.misses")
                return None
            self.stats.hits += 1
            obs.add("cache.hits")
            return entry.state.copy(), entry.state_second

    def store(
        self,
        object_id: str,
        state: "FilterState",
        state_second: int,
        device_generation: int,
    ) -> None:
        """Insert or replace an object's cached state (copies the state)."""
        with self._lock:
            self._entries[object_id] = CachedFilterState(
                object_id=object_id,
                state=state.copy(),
                state_second=state_second,
                device_generation=device_generation,
            )

    def evict(self, object_id: str) -> None:
        """Drop an object's entry (no-op when absent)."""
        with self._lock:
            self._entries.pop(object_id, None)

    def clear(self) -> None:
        """Drop all entries; statistics are preserved."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # checkpoint support (repro.service.checkpoint)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """All entries as a JSON-safe dict (statistics are not included).

        Filter states round-trip bit-for-bit through their ``to_state``
        methods, which is what makes a restored service resume *exactly*
        where it left off: a resumed filter run replays the same seconds
        from the same state. The document carries the owning backend's
        name and state version so restores can refuse mismatches.
        """
        with self._lock:
            return {
                "backend": self.backend,
                "state_version": self.state_version,
                "entries": {
                    object_id: {
                        "state_second": entry.state_second,
                        "device_generation": entry.device_generation,
                        "state": entry.state.to_state(),
                    }
                    for object_id, entry in self._entries.items()
                },
            }

    def restore_state(self, state: dict) -> None:
        """Replace all entries from :meth:`state_dict` output.

        Raises ``FilterStateError`` when the document was produced by a
        different backend or an incompatible state version.
        """
        from repro.filters.base import FilterStateError

        backend = state.get("backend", "particle")
        version = int(state.get("state_version", 1))
        if backend != self.backend:
            raise FilterStateError(
                f"cached filter states belong to backend {backend!r}; "
                f"this cache decodes {self.backend!r} states"
            )
        if version != self.state_version:
            raise FilterStateError(
                f"cached {self.backend!r} states have state version "
                f"{version}; this cache speaks version {self.state_version}"
            )
        with self._lock:
            self._entries = {
                object_id: CachedFilterState(
                    object_id=object_id,
                    state=self._decoder(entry["state"]),
                    state_second=int(entry["state_second"]),
                    device_generation=int(entry["device_generation"]),
                )
                for object_id, entry in state["entries"].items()
            }

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)
