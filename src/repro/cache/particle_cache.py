"""Cache management module (paper Section 4.5).

Stores each object's particle state after a filter run so that a later
query over the same object resumes filtering from the cached timestamp
instead of replaying from scratch.

Invalidation policy (exactly as the paper argues): a cached state is only
valid while the object has not been detected by a *new* device since it
was stored — once a new device run begins, the retained reading window
shifts and the old particles would mix inconsistent information. The
collector exposes a per-object ``device_generation`` counter; the cache
compares generations on lookup.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import repro.obs as obs
from repro.core.particles import ParticleSet


@dataclass
class CachedParticleState:
    """One cache entry: particle state of one object at one second."""

    object_id: str
    particles: ParticleSet
    state_second: int
    device_generation: int


@dataclass
class CacheStats:
    """Hit/miss counters (used by the cache ablation benchmark)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ParticleCacheManager:
    """Per-object particle state cache with generation-based invalidation.

    Thread-safe: the sharded executor (:mod:`repro.service.shards`) shares
    one cache across its worker threads, so lookups, stores, and the
    statistics counters are guarded by a lock. Entries are keyed per
    object, so concurrent shards never contend on the same entry.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, CachedParticleState] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def lookup(
        self, object_id: str, device_generation: int
    ) -> Optional[Tuple[ParticleSet, int]]:
        """Fetch a resumable state, or None on miss/stale entry.

        Returns ``(particles_copy, state_second)``. Stale entries (device
        generation changed) are evicted on sight.
        """
        with self._lock:
            entry = self._entries.get(object_id)
            if entry is None:
                self.stats.misses += 1
                obs.add("cache.misses")
                return None
            if entry.device_generation != device_generation:
                del self._entries[object_id]
                self.stats.invalidations += 1
                self.stats.misses += 1
                obs.add("cache.invalidations")
                obs.add("cache.misses")
                return None
            self.stats.hits += 1
            obs.add("cache.hits")
            return entry.particles.copy(), entry.state_second

    def store(
        self,
        object_id: str,
        particles: ParticleSet,
        state_second: int,
        device_generation: int,
    ) -> None:
        """Insert or replace an object's cached state (copies the particles)."""
        with self._lock:
            self._entries[object_id] = CachedParticleState(
                object_id=object_id,
                particles=particles.copy(),
                state_second=state_second,
                device_generation=device_generation,
            )

    def evict(self, object_id: str) -> None:
        """Drop an object's entry (no-op when absent)."""
        with self._lock:
            self._entries.pop(object_id, None)

    def clear(self) -> None:
        """Drop all entries; statistics are preserved."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # checkpoint support (repro.service.checkpoint)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """All entries as a JSON-safe dict (statistics are not included).

        Particle arrays round-trip bit-for-bit through
        :meth:`~repro.core.particles.ParticleSet.to_state`, which is what
        makes a restored service resume *exactly* where it left off: a
        resumed filter run replays the same seconds from the same state.
        """
        with self._lock:
            return {
                object_id: {
                    "state_second": entry.state_second,
                    "device_generation": entry.device_generation,
                    "particles": entry.particles.to_state(),
                }
                for object_id, entry in self._entries.items()
            }

    def restore_state(self, state: dict) -> None:
        """Replace all entries from :meth:`state_dict` output."""
        with self._lock:
            self._entries = {
                object_id: CachedParticleState(
                    object_id=object_id,
                    particles=ParticleSet.from_state(entry["particles"]),
                    state_second=int(entry["state_second"]),
                    device_generation=int(entry["device_generation"]),
                )
                for object_id, entry in state.items()
            }

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)
