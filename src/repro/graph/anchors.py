"""Anchor point indexing model (paper Section 4.2).

Anchor points discretize the continuous walking-graph edges: a predefined
set of points on ``E`` with a uniform spacing (1 m by default). After
particle filtering, every particle is snapped to its nearest anchor point,
so inferred object locations live on this discrete set.

``AnchorIndex`` also provides the spatial lookups the query algorithms
need: nearest anchor to a point, anchors inside a rectangle (range
queries), anchors per room, and ordered anchors per edge (kNN expansion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.geometry import Circle, Point, Rect
from repro.graph.location import GraphLocation
from repro.graph.walking_graph import WalkingGraph


@dataclass(frozen=True)
class AnchorPoint:
    """A discrete location on the walking graph.

    ``node_id`` is set for anchors that coincide with graph nodes;
    ``room_id``/``hallway_id`` record which floor plan entity contains the
    anchor (used by range-query evaluation, Algorithm 3).
    """

    ap_id: int
    point: Point
    location: GraphLocation
    node_id: Optional[str] = None
    room_id: Optional[str] = None
    hallway_id: Optional[str] = None

    @property
    def in_room(self) -> bool:
        """True when the anchor lies inside a room."""
        return self.room_id is not None


class AnchorIndex:
    """All anchor points of a graph, with spatial lookup structures."""

    def __init__(self, graph: WalkingGraph, anchors: List[AnchorPoint], spacing: float):
        self.graph = graph
        self.spacing = spacing
        self._anchors: List[AnchorPoint] = anchors
        self._by_node: Dict[str, int] = {}
        self._by_edge: Dict[int, List[Tuple[float, int]]] = {
            e.edge_id: [] for e in graph.edges
        }
        self._by_room: Dict[str, List[int]] = {}
        self._grid: Dict[Tuple[int, int], List[int]] = {}
        self._cell = max(spacing, 1e-6)

        for ap in anchors:
            if ap.node_id is not None:
                self._by_node[ap.node_id] = ap.ap_id
            if ap.room_id is not None:
                self._by_room.setdefault(ap.room_id, []).append(ap.ap_id)
            self._grid.setdefault(self._cell_of(ap.point), []).append(ap.ap_id)

        # Per-edge ordered anchor lists include the endpoint (node) anchors,
        # so edge traversals see every anchor on the edge.
        for ap in anchors:
            if ap.node_id is None:
                self._by_edge[ap.location.edge_id].append((ap.location.offset, ap.ap_id))
        for edge in graph.edges:
            for node_id in (edge.node_a, edge.node_b):
                ap_id = self._by_node[node_id]
                self._by_edge[edge.edge_id].append((edge.offset_of(node_id), ap_id))
            self._by_edge[edge.edge_id].sort()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._anchors)

    def __iter__(self) -> Iterator[AnchorPoint]:
        return iter(self._anchors)

    @property
    def anchors(self) -> List[AnchorPoint]:
        """All anchor points."""
        return list(self._anchors)

    def anchor(self, ap_id: int) -> AnchorPoint:
        """Look up an anchor by id."""
        return self._anchors[ap_id]

    def node_anchor(self, node_id: str) -> AnchorPoint:
        """The anchor coinciding with a graph node."""
        return self._anchors[self._by_node[node_id]]

    def on_edge(self, edge_id: int) -> List[Tuple[float, int]]:
        """``(offset, ap_id)`` pairs on an edge, ascending by offset."""
        return list(self._by_edge[edge_id])

    def in_room(self, room_id: str) -> List[AnchorPoint]:
        """Anchors inside a room (door-edge anchors past the door + center)."""
        return [self._anchors[i] for i in self._by_room.get(room_id, [])]

    # ------------------------------------------------------------------
    # spatial queries
    # ------------------------------------------------------------------
    def nearest(self, p: Point) -> AnchorPoint:
        """The anchor point closest to ``p`` (Euclidean)."""
        best_id = -1
        best_sq = float("inf")
        cx, cy = self._cell_of(p)
        ring = 0
        # Expand square rings until a hit is found, then one extra ring to
        # guarantee the true nearest is not in a neighbouring cell.
        extra = 0
        while True:
            found_this_ring = False
            for cell in self._ring_cells(cx, cy, ring):
                for ap_id in self._grid.get(cell, ()):  # noqa: B905
                    sq = self._anchors[ap_id].point.squared_distance_to(p)
                    if sq < best_sq:
                        best_sq = sq
                        best_id = ap_id
                        found_this_ring = True
            if best_id >= 0:
                if found_this_ring:
                    extra = 0
                else:
                    extra += 1
                if extra >= 2:
                    break
            ring += 1
            if ring > 10_000:  # pragma: no cover - defensive
                raise RuntimeError("anchor grid search did not terminate")
        return self._anchors[best_id]

    def in_rect(self, rect: Rect) -> List[AnchorPoint]:
        """All anchors inside an axis-aligned rectangle."""
        lo = self._cell_of(Point(rect.min_x, rect.min_y))
        hi = self._cell_of(Point(rect.max_x, rect.max_y))
        result: List[AnchorPoint] = []
        for ix in range(lo[0], hi[0] + 1):
            for iy in range(lo[1], hi[1] + 1):
                for ap_id in self._grid.get((ix, iy), ()):
                    ap = self._anchors[ap_id]
                    if rect.contains(ap.point):
                        result.append(ap)
        return result

    def in_circle(self, circle: Circle) -> List[AnchorPoint]:
        """All anchors inside a circle."""
        return [
            ap for ap in self.in_rect(circle.bounding_rect())
            if circle.contains(ap.point)
        ]

    def neighbors(self) -> Dict[int, List[Tuple[int, float]]]:
        """Adjacency between consecutive anchors along edges.

        Each anchor links to its immediate neighbours on the same edge
        (node anchors therefore bridge edges), with the offset gap as the
        link length. Built lazily and cached; this is the search structure
        for the kNN expansion of paper Algorithm 4.
        """
        if getattr(self, "_neighbors", None) is None:
            adjacency: Dict[int, List[Tuple[int, float]]] = {
                ap.ap_id: [] for ap in self._anchors
            }
            for edge_id, ordered in self._by_edge.items():
                for (off_a, ap_a), (off_b, ap_b) in zip(ordered, ordered[1:]):
                    gap = off_b - off_a
                    if ap_a == ap_b:
                        continue
                    adjacency[ap_a].append((ap_b, gap))
                    adjacency[ap_b].append((ap_a, gap))
                del edge_id
            self._neighbors = adjacency
        return self._neighbors

    # ------------------------------------------------------------------
    def _cell_of(self, p: Point) -> Tuple[int, int]:
        return (int(math.floor(p.x / self._cell)), int(math.floor(p.y / self._cell)))

    @staticmethod
    def _ring_cells(cx: int, cy: int, ring: int):
        if ring == 0:
            yield (cx, cy)
            return
        for dx in range(-ring, ring + 1):
            yield (cx + dx, cy - ring)
            yield (cx + dx, cy + ring)
        for dy in range(-ring + 1, ring):
            yield (cx - ring, cy + dy)
            yield (cx + ring, cy + dy)


def build_anchor_index(graph: WalkingGraph, spacing: float = 1.0) -> AnchorIndex:
    """Generate anchor points every ``spacing`` meters on all edges."""
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    plan = graph.floorplan
    anchors: List[AnchorPoint] = []

    def classify(point: Point) -> Tuple[Optional[str], Optional[str]]:
        room = plan.room_at(point)
        if room is not None:
            return room.room_id, None
        hallway = plan.hallway_at(point)
        if hallway is not None:
            return None, hallway.hallway_id
        return None, None

    # One anchor per node.
    for node in graph.nodes:
        room_id, hallway_id = classify(node.point)
        if node.is_room:
            room_id, hallway_id = node.room_id, None
        anchors.append(
            AnchorPoint(
                ap_id=len(anchors),
                point=node.point,
                location=graph.node_location(node.node_id),
                node_id=node.node_id,
                room_id=room_id,
                hallway_id=hallway_id,
            )
        )

    # Interior anchors along every edge.
    for edge in graph.edges:
        n_interior = int(math.floor(edge.length / spacing))
        for i in range(1, n_interior + 1):
            offset = i * spacing
            if offset >= edge.length - spacing / 2.0:
                break
            point = edge.point_at(offset)
            room_id, hallway_id = classify(point)
            anchors.append(
                AnchorPoint(
                    ap_id=len(anchors),
                    point=point,
                    location=GraphLocation(edge.edge_id, offset),
                    room_id=room_id,
                    hallway_id=hallway_id,
                )
            )

    return AnchorIndex(graph, anchors, spacing)
