"""Graph locations: positions constrained to walking-graph edges."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GraphLocation:
    """A position on the walking graph: ``offset`` meters along an edge.

    The offset is measured from the edge's ``node_a``. Conversions to 2-D
    points and distances between locations are provided by
    :class:`repro.graph.WalkingGraph`, which owns the edge table.
    """

    edge_id: int
    offset: float

    def __post_init__(self) -> None:
        if self.offset < -1e-9:
            raise ValueError(f"offset must be non-negative, got {self.offset}")

    def moved_to(self, offset: float) -> "GraphLocation":
        """Same edge, new offset."""
        return GraphLocation(self.edge_id, offset)
