"""Node and edge records of the indoor walking graph."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from repro.geometry import Point, Polyline


class NodeKind(Enum):
    """What a graph node represents in the floor plan."""

    HALLWAY = "hallway"
    ROOM = "room"


class EdgeKind(Enum):
    """What a graph edge represents in the floor plan."""

    HALLWAY = "hallway"
    DOOR = "door"


@dataclass(frozen=True)
class Node:
    """A walking-graph node.

    Hallway nodes sit on a hallway centerline (endpoints, intersections
    with other hallways, and door attachment points); room nodes sit at
    room centers, reachable only through their door spur.
    """

    node_id: str
    point: Point
    kind: NodeKind
    room_id: Optional[str] = None

    @property
    def is_room(self) -> bool:
        """True for room nodes."""
        return self.kind is NodeKind.ROOM


@dataclass(frozen=True)
class Edge:
    """A walking-graph edge with arc-length parameterization.

    ``offset`` coordinates run from 0 at ``node_a`` to ``length`` at
    ``node_b`` along ``path`` (a polyline: hallway edges are straight,
    door spurs bend at the door).
    """

    edge_id: int
    node_a: str
    node_b: str
    path: Polyline
    kind: EdgeKind
    hallway_id: Optional[str] = None
    room_id: Optional[str] = None

    @property
    def length(self) -> float:
        """Arc length of the edge."""
        return self.path.length

    @property
    def endpoints(self) -> Tuple[str, str]:
        """``(node_a, node_b)``."""
        return (self.node_a, self.node_b)

    def point_at(self, offset: float) -> Point:
        """The 2-D point at arc length ``offset`` from ``node_a``."""
        return self.path.point_at(offset)

    def project(self, p: Point) -> Tuple[float, float]:
        """Project ``p`` onto the edge; returns ``(offset, distance)``."""
        return self.path.project(p)

    def other(self, node_id: str) -> str:
        """The endpoint opposite to ``node_id``."""
        if node_id == self.node_a:
            return self.node_b
        if node_id == self.node_b:
            return self.node_a
        raise ValueError(f"node {node_id!r} is not an endpoint of edge {self.edge_id}")

    def offset_of(self, node_id: str) -> float:
        """The offset coordinate of endpoint ``node_id`` (0 or length)."""
        if node_id == self.node_a:
            return 0.0
        if node_id == self.node_b:
            return self.length
        raise ValueError(f"node {node_id!r} is not an endpoint of edge {self.edge_id}")
