"""Indoor walking graph model (paper Section 4.2).

The walking graph ``G<N, E>`` abstracts the regular walking patterns of
people in an indoor environment: hallway centerlines become chains of
edges, and each room hangs off its hallway as a short "door spur" ending
at a room node. Objects, particles, anchor points, and query points are
all constrained to live on ``E``, and the distance metric for kNN queries
is the shortest network distance on ``G``.
"""

from repro.graph.model import Edge, EdgeKind, Node, NodeKind
from repro.graph.location import GraphLocation
from repro.graph.walking_graph import WalkingGraph, build_walking_graph
from repro.graph.anchors import AnchorPoint, AnchorIndex, build_anchor_index
from repro.graph.routing import Route, plan_route

__all__ = [
    "Edge",
    "EdgeKind",
    "Node",
    "NodeKind",
    "GraphLocation",
    "WalkingGraph",
    "build_walking_graph",
    "AnchorPoint",
    "AnchorIndex",
    "build_anchor_index",
    "Route",
    "plan_route",
]
