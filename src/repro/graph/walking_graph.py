"""Construction of and queries over the indoor walking graph.

``build_walking_graph`` turns a :class:`~repro.floorplan.FloorPlan` into a
:class:`WalkingGraph`:

* every hallway centerline becomes a chain of HALLWAY edges, broken at
  hallway endpoints, centerline intersections with other hallways, and
  door attachment points;
* every room becomes a ROOM node at the room center, connected to its
  hallway by a two-leg DOOR edge (centerline point -> door -> center).

The graph also owns the *shortest network distance* metric used by the
paper's kNN queries: node-to-node distances are precomputed with Dijkstra
(via networkx) and arbitrary location-to-location distances are composed
from edge offsets plus node distances.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.geometry import Point, Polyline, Segment
from repro.floorplan.plan import FloorPlan
from repro.graph.location import GraphLocation
from repro.graph.model import Edge, EdgeKind, Node, NodeKind

_COORD_QUANTUM = 1e-6


class WalkingGraph:
    """The indoor walking graph ``G<N, E>`` over a floor plan."""

    def __init__(self, nodes: Iterable[Node], edges: Iterable[Edge], floorplan: FloorPlan):
        self._nodes: Dict[str, Node] = {n.node_id: n for n in nodes}
        self._edges: Dict[int, Edge] = {e.edge_id: e for e in edges}
        self.floorplan = floorplan

        self._adjacency: Dict[str, List[int]] = {nid: [] for nid in self._nodes}
        for edge in self._edges.values():
            self._adjacency[edge.node_a].append(edge.edge_id)
            self._adjacency[edge.node_b].append(edge.edge_id)

        self._room_nodes: Dict[str, str] = {
            node.room_id: node.node_id
            for node in self._nodes.values()
            if node.kind is NodeKind.ROOM
        }
        self._door_edges: Dict[str, int] = {
            edge.room_id: edge.edge_id
            for edge in self._edges.values()
            if edge.kind is EdgeKind.DOOR
        }

        self._nx = nx.Graph()
        for node_id in self._nodes:
            self._nx.add_node(node_id)
        for edge in self._edges.values():
            # Keep the shortest edge when two nodes are doubly connected.
            existing = self._nx.get_edge_data(edge.node_a, edge.node_b)
            if existing is None or edge.length < existing["weight"]:
                self._nx.add_edge(
                    edge.node_a, edge.node_b,
                    weight=edge.length, edge_id=edge.edge_id,
                )

        self._validate()
        self._node_dist: Dict[str, Dict[str, float]] = dict(
            nx.all_pairs_dijkstra_path_length(self._nx, weight="weight")
        )

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        """All nodes."""
        return list(self._nodes.values())

    @property
    def edges(self) -> List[Edge]:
        """All edges."""
        return list(self._edges.values())

    @property
    def total_edge_length(self) -> float:
        """Sum of all edge lengths."""
        return sum(e.length for e in self._edges.values())

    def node(self, node_id: str) -> Node:
        """Look up a node by id."""
        return self._nodes[node_id]

    def edge(self, edge_id: int) -> Edge:
        """Look up an edge by id."""
        return self._edges[edge_id]

    def has_node(self, node_id: str) -> bool:
        """True if ``node_id`` exists."""
        return node_id in self._nodes

    def degree(self, node_id: str) -> int:
        """Number of incident edges."""
        return len(self._adjacency[node_id])

    def incident_edges(self, node_id: str) -> List[Edge]:
        """Edges touching ``node_id``."""
        return [self._edges[eid] for eid in self._adjacency[node_id]]

    def room_node(self, room_id: str) -> str:
        """The node id of a room's center node."""
        return self._room_nodes[room_id]

    def room_ids(self) -> List[str]:
        """Ids of all rooms that have a node in the graph."""
        return list(self._room_nodes.keys())

    def door_edge(self, room_id: str) -> Edge:
        """The DOOR edge connecting ``room_id`` to its hallway."""
        return self._edges[self._door_edges[room_id]]

    def hallway_edges(self) -> List[Edge]:
        """All HALLWAY edges."""
        return [e for e in self._edges.values() if e.kind is EdgeKind.HALLWAY]

    # ------------------------------------------------------------------
    # geometry <-> graph conversions
    # ------------------------------------------------------------------
    def point_of(self, loc: GraphLocation) -> Point:
        """The 2-D point of a graph location."""
        return self._edges[loc.edge_id].point_at(loc.offset)

    def node_location(self, node_id: str) -> GraphLocation:
        """A canonical :class:`GraphLocation` for a node."""
        edge = self._edges[self._adjacency[node_id][0]]
        return GraphLocation(edge.edge_id, edge.offset_of(node_id))

    def locate(self, p: Point) -> Tuple[GraphLocation, float]:
        """Project an arbitrary 2-D point onto the nearest edge.

        Returns ``(location, distance)``. This implements the paper's
        "the query point is approximated to the nearest edge of the indoor
        walking graph" (Section 4.6).
        """
        best: Optional[GraphLocation] = None
        best_dist = float("inf")
        for edge in self._edges.values():
            offset, dist = edge.project(p)
            if dist < best_dist:
                best_dist = dist
                best = GraphLocation(edge.edge_id, offset)
        assert best is not None, "graph has no edges"
        return best, best_dist

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def node_distance(self, node_a: str, node_b: str) -> float:
        """Shortest network distance between two nodes."""
        try:
            return self._node_dist[node_a][node_b]
        except KeyError:
            return float("inf")

    def distance(self, a: GraphLocation, b: GraphLocation) -> float:
        """Shortest network distance between two graph locations.

        This is the paper's *minimum indoor walking distance*: the shortest
        path along the walking graph.
        """
        edge_a = self._edges[a.edge_id]
        edge_b = self._edges[b.edge_id]
        candidates: List[float] = []
        if a.edge_id == b.edge_id:
            candidates.append(abs(a.offset - b.offset))
        ends_a = ((edge_a.node_a, a.offset), (edge_a.node_b, edge_a.length - a.offset))
        ends_b = ((edge_b.node_a, b.offset), (edge_b.node_b, edge_b.length - b.offset))
        for node_a, off_a in ends_a:
            for node_b, off_b in ends_b:
                candidates.append(off_a + self.node_distance(node_a, node_b) + off_b)
        return min(candidates)

    def distance_to_node(self, loc: GraphLocation, node_id: str) -> float:
        """Shortest network distance from a location to a node."""
        edge = self._edges[loc.edge_id]
        return min(
            loc.offset + self.node_distance(edge.node_a, node_id),
            edge.length - loc.offset + self.node_distance(edge.node_b, node_id),
        )

    def shortest_node_path(self, node_a: str, node_b: str) -> List[str]:
        """Node sequence of a shortest path (Dijkstra on edge lengths)."""
        return nx.shortest_path(self._nx, node_a, node_b, weight="weight")

    def connecting_edge(self, node_a: str, node_b: str) -> Edge:
        """The (shortest) edge directly joining two adjacent nodes."""
        data = self._nx.get_edge_data(node_a, node_b)
        if data is None:
            raise ValueError(f"nodes {node_a!r} and {node_b!r} are not adjacent")
        return self._edges[data["edge_id"]]

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self._edges:
            raise ValueError("walking graph has no edges")
        if not nx.is_connected(self._nx):
            components = list(nx.connected_components(self._nx))
            raise ValueError(
                f"walking graph must be connected; found {len(components)} components"
            )
        for edge in self._edges.values():
            if edge.length <= 0:
                raise ValueError(f"edge {edge.edge_id} has non-positive length")
            start_ok = edge.path.start.is_close(
                self._nodes[edge.node_a].point, tol=1e-6
            )
            end_ok = edge.path.end.is_close(self._nodes[edge.node_b].point, tol=1e-6)
            if not (start_ok and end_ok):
                raise ValueError(
                    f"edge {edge.edge_id} path does not join its endpoint nodes"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WalkingGraph(nodes={len(self._nodes)}, edges={len(self._edges)})"


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def build_walking_graph(plan: FloorPlan) -> WalkingGraph:
    """Build the walking graph of a floor plan."""
    registry = _NodeRegistry()

    # 1. Hallway stations: endpoints, centerline intersections, doors.
    stations: Dict[str, List[float]] = {}
    for hallway in plan.hallways:
        offsets = [0.0, hallway.length]
        for other in plan.hallways:
            if other.hallway_id == hallway.hallway_id:
                continue
            crossing = _centerline_intersection(
                hallway.centerline, other.centerline
            )
            if crossing is not None:
                offset, dist = hallway.project(crossing)
                if dist < 1e-6:
                    offsets.append(offset)
        for door in plan.doors:
            if door.hallway_id == hallway.hallway_id:
                offset, _ = hallway.project(door.hallway_point)
                offsets.append(offset)
        stations[hallway.hallway_id] = _dedupe_sorted(offsets)

    # 2. Hallway edges between consecutive stations.
    edges: List[Edge] = []
    edge_counter = 0
    for hallway in plan.hallways:
        offs = stations[hallway.hallway_id]
        for lo, hi in zip(offs, offs[1:]):
            a = registry.hallway_node(hallway.point_at(lo))
            b = registry.hallway_node(hallway.point_at(hi))
            if a == b:
                continue
            edges.append(
                Edge(
                    edge_id=edge_counter,
                    node_a=a,
                    node_b=b,
                    path=Polyline.from_points(
                        [hallway.point_at(lo), hallway.point_at(hi)]
                    ),
                    kind=EdgeKind.HALLWAY,
                    hallway_id=hallway.hallway_id,
                )
            )
            edge_counter += 1

    # 3. Door spurs into rooms.
    for room in plan.rooms:
        door = room.door
        attach = registry.hallway_node(door.hallway_point)
        room_node = registry.room_node(room.room_id, room.center)
        path = Polyline.from_points([door.hallway_point, door.position, room.center])
        edges.append(
            Edge(
                edge_id=edge_counter,
                node_a=attach,
                node_b=room_node,
                path=path,
                kind=EdgeKind.DOOR,
                room_id=room.room_id,
            )
        )
        edge_counter += 1

    return WalkingGraph(registry.nodes, edges, plan)


class _NodeRegistry:
    """Deduplicates nodes by quantized coordinates during construction."""

    def __init__(self) -> None:
        self._by_point: Dict[Tuple[int, int], str] = {}
        self._nodes: List[Node] = []
        self._counter = 0

    @property
    def nodes(self) -> List[Node]:
        return self._nodes

    def hallway_node(self, point: Point) -> str:
        key = self._key(point)
        if key in self._by_point:
            return self._by_point[key]
        node_id = f"n{self._counter}"
        self._counter += 1
        self._nodes.append(Node(node_id, point, NodeKind.HALLWAY))
        self._by_point[key] = node_id
        return node_id

    def room_node(self, room_id: str, point: Point) -> str:
        node_id = f"room:{room_id}"
        self._nodes.append(Node(node_id, point, NodeKind.ROOM, room_id=room_id))
        # Room centers are never shared, but register the point anyway so a
        # malformed plan fails loudly in graph validation instead of silently
        # merging nodes.
        self._by_point.setdefault(self._key(point), node_id)
        return node_id

    @staticmethod
    def _key(point: Point) -> Tuple[int, int]:
        return (
            int(round(point.x / _COORD_QUANTUM)),
            int(round(point.y / _COORD_QUANTUM)),
        )


def _centerline_intersection(s1: Segment, s2: Segment) -> Optional[Point]:
    """Intersection point of two axis-aligned centerlines, if any.

    Handles perpendicular crossings and endpoint touches. Collinear
    overlapping centerlines are rejected (plans should merge those into a
    single hallway).
    """
    if s1.is_horizontal and s2.is_vertical:
        h, v = s1, s2
    elif s1.is_vertical and s2.is_horizontal:
        h, v = s2, s1
    else:
        # Parallel: only endpoint touches are meaningful.
        for p in (s2.a, s2.b):
            if s1.distance_to_point(p) < 1e-9:
                return p
        return None
    x = v.a.x
    y = h.a.y
    h_lo, h_hi = sorted((h.a.x, h.b.x))
    v_lo, v_hi = sorted((v.a.y, v.b.y))
    eps = 1e-9
    if h_lo - eps <= x <= h_hi + eps and v_lo - eps <= y <= v_hi + eps:
        return Point(x, y)
    return None


def _dedupe_sorted(offsets: List[float], tol: float = 1e-6) -> List[float]:
    """Sort offsets and merge values closer than ``tol``."""
    result: List[float] = []
    for value in sorted(offsets):
        if not result or value - result[-1] > tol:
            result.append(value)
    return result
