"""Shortest-path routing on the walking graph.

The true trace generator (paper Section 5.1) makes each object "randomly
select a room as its destination and walk along the shortest path on the
indoor walking graph". :func:`plan_route` produces such a path as a list
of edge legs that a mover can consume meter by meter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.graph.location import GraphLocation
from repro.graph.walking_graph import WalkingGraph


@dataclass(frozen=True)
class Route:
    """A path along the graph as ``(edge_id, from_offset, to_offset)`` legs.

    Offsets are edge coordinates; a leg traverses its edge from
    ``from_offset`` to ``to_offset`` (either direction).
    """

    legs: Tuple[Tuple[int, float, float], ...]

    @property
    def total_length(self) -> float:
        """Sum of leg lengths."""
        return sum(abs(hi - lo) for _, lo, hi in self.legs)

    @property
    def is_empty(self) -> bool:
        """True when the route covers zero distance."""
        return self.total_length <= 1e-12

    def location_at(self, arc: float) -> GraphLocation:
        """The graph location after walking ``arc`` meters along the route.

        ``arc`` is clamped into ``[0, total_length]``.
        """
        if not self.legs:
            raise ValueError("cannot interpolate an empty route")
        remaining = max(arc, 0.0)
        for edge_id, lo, hi in self.legs:
            leg_len = abs(hi - lo)
            # Zero-length legs (self-loop endpoints) must resolve to their
            # own offset, not be skipped; exact zero is that sentinel.
            if remaining <= leg_len or leg_len == 0.0:  # repro-lint: disable=FP
                direction = 1.0 if hi >= lo else -1.0
                return GraphLocation(edge_id, lo + direction * min(remaining, leg_len))
            remaining -= leg_len
        edge_id, lo, hi = self.legs[-1]
        return GraphLocation(edge_id, hi)

    @property
    def end(self) -> GraphLocation:
        """The final location of the route."""
        if not self.legs:
            raise ValueError("empty route has no end")
        edge_id, _, hi = self.legs[-1]
        return GraphLocation(edge_id, hi)


def plan_route(graph: WalkingGraph, start: GraphLocation, dest_node: str) -> Route:
    """Shortest route from a graph location to a node.

    Compares entering the path via either endpoint of the start edge and
    picks the cheaper total; ties break toward ``node_a``.
    """
    edge = graph.edge(start.edge_id)
    via_a = start.offset + graph.node_distance(edge.node_a, dest_node)
    via_b = (edge.length - start.offset) + graph.node_distance(edge.node_b, dest_node)

    legs: List[Tuple[int, float, float]] = []
    if via_a <= via_b:
        entry_node = edge.node_a
        if start.offset > 1e-12:
            legs.append((edge.edge_id, start.offset, 0.0))
    else:
        entry_node = edge.node_b
        if edge.length - start.offset > 1e-12:
            legs.append((edge.edge_id, start.offset, edge.length))

    node_path = graph.shortest_node_path(entry_node, dest_node)
    for node_a, node_b in zip(node_path, node_path[1:]):
        hop = graph.connecting_edge(node_a, node_b)
        legs.append(
            (hop.edge_id, hop.offset_of(node_a), hop.offset_of(node_b))
        )

    if not legs:
        # Already standing on the destination node.
        legs.append((edge.edge_id, start.offset, start.offset))
    return Route(tuple(legs))
