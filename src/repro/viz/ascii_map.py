"""ASCII canvas for floor plans and probability distributions."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.floorplan.plan import FloorPlan
from repro.geometry import Point, Rect
from repro.graph.anchors import AnchorIndex
from repro.rfid.reader import RFIDReader

#: Probability shading ramp, light to heavy.
_HEAT = " .:-=+*#%@"


class AsciiCanvas:
    """A character grid mapped onto a floor plan's bounding box.

    Layers are painted in call order; later paints overwrite earlier
    characters at the same cell. ``str(canvas)`` (or :meth:`render`)
    yields the drawing with the y axis pointing up, matching plan
    coordinates.
    """

    def __init__(self, plan: FloorPlan, columns: int = 96):
        if columns < 16:
            raise ValueError(f"columns must be >= 16, got {columns}")
        self.plan = plan
        bounds = plan.bounds
        self.columns = columns
        self._sx = bounds.width / (columns - 1)
        # Terminal cells are ~2x taller than wide; halve the row density.
        self.rows = max(int(round(bounds.height / (2.0 * self._sx))) + 1, 4)
        self._sy = bounds.height / (self.rows - 1)
        self._grid = [[" "] * columns for _ in range(self.rows)]

    # ------------------------------------------------------------------
    # coordinate mapping
    # ------------------------------------------------------------------
    def cell_of(self, point: Point) -> Optional[tuple]:
        """Grid cell of a plan point, or None when outside the bounds."""
        bounds = self.plan.bounds
        if not bounds.expanded(1e-9).contains(point):
            return None
        col = int(round((point.x - bounds.min_x) / self._sx))
        row = int(round((point.y - bounds.min_y) / self._sy))
        return min(row, self.rows - 1), min(col, self.columns - 1)

    def cell_center(self, row: int, col: int) -> Point:
        """Plan coordinates of a grid cell's center."""
        bounds = self.plan.bounds
        return Point(bounds.min_x + col * self._sx, bounds.min_y + row * self._sy)

    # ------------------------------------------------------------------
    # layers
    # ------------------------------------------------------------------
    def paint_floorplan(self) -> "AsciiCanvas":
        """Base layer: hallways as ``:``, rooms as ``.``, walls blank."""
        for row in range(self.rows):
            for col in range(self.columns):
                point = self.cell_center(row, col)
                if self.plan.hallway_at(point) is not None:
                    self._grid[row][col] = ":"
                elif self.plan.room_at(point) is not None:
                    self._grid[row][col] = "."
        return self

    def paint_readers(self, readers: Iterable[RFIDReader]) -> "AsciiCanvas":
        """Mark reader positions with ``R``."""
        for reader in readers:
            self.put(reader.position, "R")
        return self

    def paint_points(
        self, positions: Mapping[str, Point], symbol: str = "o"
    ) -> "AsciiCanvas":
        """Mark object positions (e.g. the true trace) with ``symbol``."""
        for position in positions.values():
            self.put(position, symbol)
        return self

    def paint_rect(self, rect: Rect, symbol: str = "+") -> "AsciiCanvas":
        """Outline a rectangle (e.g. a query window)."""
        steps = max(self.columns, self.rows)
        for i in range(steps + 1):
            t = i / steps
            for edge_point in (
                Point(rect.min_x + t * rect.width, rect.min_y),
                Point(rect.min_x + t * rect.width, rect.max_y),
                Point(rect.min_x, rect.min_y + t * rect.height),
                Point(rect.max_x, rect.min_y + t * rect.height),
            ):
                self.put(edge_point, symbol)
        return self

    def paint_distribution(
        self, distribution: Mapping[int, float], anchor_index: AnchorIndex
    ) -> "AsciiCanvas":
        """Shade anchor probabilities with the heat ramp.

        Cell intensity accumulates when several anchors fall into one
        cell, then the whole layer is normalized to the ramp.
        """
        heat: Dict[tuple, float] = {}
        for ap_id, mass in distribution.items():
            cell = self.cell_of(anchor_index.anchor(ap_id).point)
            if cell is not None:
                heat[cell] = heat.get(cell, 0.0) + mass
        if not heat:
            return self
        peak = max(heat.values())
        for (row, col), mass in heat.items():
            level = int(round(mass / peak * (len(_HEAT) - 1)))
            if level > 0:
                self._grid[row][col] = _HEAT[level]
        return self

    def put(self, point: Point, symbol: str) -> "AsciiCanvas":
        """Place one character at a plan coordinate (ignored off-canvas)."""
        if len(symbol) != 1:
            raise ValueError(f"symbol must be a single character, got {symbol!r}")
        cell = self.cell_of(point)
        if cell is not None:
            row, col = cell
            self._grid[row][col] = symbol
        return self

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The drawing, top row = max y."""
        return "\n".join("".join(row).rstrip() for row in reversed(self._grid))

    def __str__(self) -> str:  # pragma: no cover - delegates
        return self.render()


def render_floorplan(
    plan: FloorPlan,
    readers: Sequence[RFIDReader] = (),
    positions: Optional[Mapping[str, Point]] = None,
    columns: int = 96,
) -> str:
    """One-call rendering: plan + readers + optional object positions."""
    canvas = AsciiCanvas(plan, columns=columns).paint_floorplan()
    canvas.paint_readers(readers)
    if positions:
        canvas.paint_points(positions)
    return canvas.render()


def render_distribution(
    plan: FloorPlan,
    anchor_index: AnchorIndex,
    distribution: Mapping[int, float],
    true_position: Optional[Point] = None,
    columns: int = 96,
) -> str:
    """Render one object's anchor distribution as a heat map.

    The optional true position is marked ``X`` on top of the heat layer.
    """
    canvas = AsciiCanvas(plan, columns=columns).paint_floorplan()
    canvas.paint_distribution(distribution, anchor_index)
    if true_position is not None:
        canvas.put(true_position, "X")
    return canvas.render()
