"""Text-mode visualization of floor plans, deployments, and distributions.

Dependency-free ASCII rendering for debugging and for the examples:
rooms, hallways, readers, true object positions, query windows, and
anchor-point probability heat maps all composable onto one grid.
"""

from repro.viz.ascii_map import AsciiCanvas, render_distribution, render_floorplan

__all__ = ["AsciiCanvas", "render_floorplan", "render_distribution"]
