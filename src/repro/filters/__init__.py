"""Pluggable Bayesian filter backends behind one interface.

Every location estimator in the system — the paper's SIR particle
filter, the symbolic uniform-over-reachable baseline, and the
graph-constrained Kalman filter — implements the
:class:`~repro.filters.base.BayesFilter` /
:class:`~repro.filters.base.FilterBackend` contract and registers itself
with the :data:`~repro.filters.registry.FACTORY`. Engines, executors,
and the CLI resolve backends by name (``--filter {particle, kalman,
symbolic}``) and otherwise never special-case an estimator.

Importing this package imports all built-in backend modules, which
populates the registry as a side effect.
"""

from repro.filters.base import (
    BayesFilter,
    FilterBackend,
    FilterRun,
    FilterState,
    FilterStateError,
    ResumeState,
)
from repro.filters.registry import (
    FACTORY,
    BackendSpec,
    FilterFactory,
    available_backends,
    create_backend,
    register_backend,
)

# Import the built-in backends for their registration side effect.
from repro.filters.kalman import GraphKalmanFilter, KalmanBackend, KalmanState
from repro.filters.particle import ParticleBackend, ParticleBayesFilter
from repro.filters.symbolic import (
    SymbolicBackend,
    SymbolicBayesFilter,
    SymbolicState,
)

DEFAULT_BACKEND = ParticleBackend.name
"""The paper's estimator: what every entry point uses unless told otherwise."""

__all__ = [
    "BayesFilter",
    "FilterBackend",
    "FilterRun",
    "FilterState",
    "FilterStateError",
    "ResumeState",
    "FACTORY",
    "BackendSpec",
    "FilterFactory",
    "available_backends",
    "create_backend",
    "register_backend",
    "GraphKalmanFilter",
    "KalmanBackend",
    "KalmanState",
    "ParticleBackend",
    "ParticleBayesFilter",
    "SymbolicBackend",
    "SymbolicBayesFilter",
    "SymbolicState",
    "DEFAULT_BACKEND",
]
