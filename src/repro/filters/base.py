"""The Bayesian filter contract every location-inference backend obeys.

The follow-up paper (*RFID-Based Indoor Spatial Query Evaluation with
Bayesian Filtering Techniques*, arXiv:2204.00747) swaps the particle
filter for alternative Bayesian estimators and compares accuracy against
cost. Such a comparison is only credible when every estimator runs
behind one model/processing interface — this module is that interface.

A **backend** (:class:`FilterBackend`) owns the immutable per-deployment
model: the walking graph, the reader layout, and whatever it precompiled
from them. A **filter** (:class:`BayesFilter`) is one object's mutable
belief, created by its backend and driven through the classic recursive
Bayesian cycle:

* ``predict(dt)`` — propagate the belief through the motion model;
* ``update(second, readings, negative_info)`` — condition on that
  second's detections (or on silence, when negative information is on);
* ``posterior()`` — the belief as per-anchor probability mass, the
  ``{ap_id: probability}`` form all query evaluation code consumes;
* ``state()`` / ``to_state()`` — checkpointing: ``state()`` exposes the
  live mutable belief (for the in-memory cache), ``to_state()`` a
  JSON-safe document that round-trips bit-exactly.

Randomness is injected: the caller passes a generator derived from the
``(seed, second, object_id)`` child stream
(:func:`repro.rng.filter_run_rng`), never a shared evolving stream —
this is what makes every backend's results independent of sharding and
restarts. Deterministic backends simply ignore the generator.

:meth:`FilterBackend.replay` is the shared run loop (paper Algorithm 2's
shell): seed from the reading history's first device, then replay every
retained second through predict/update. Backends may override
:meth:`FilterBackend.run` when they have a cheaper equivalent path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Dict, Iterable, Mapping, Optional, Protocol, Sequence, Tuple, Union

import numpy as np

import repro.obs as obs
from repro.collector.collector import ReadingHistory
from repro.config import SimulationConfig
from repro.core.compiled import CompiledAnchors, CompiledGraph
from repro.graph.anchors import AnchorIndex
from repro.graph.walking_graph import WalkingGraph
from repro.rfid.reader import RFIDReader
from repro.rng import RngLike, make_rng


class FilterStateError(ValueError):
    """A serialized filter state is unreadable or from the wrong backend."""


class FilterState(Protocol):
    """What a backend's mutable belief must support to be cached/checkpointed."""

    def copy(self) -> "FilterState":
        """An independent deep copy of the belief."""
        ...  # pragma: no cover - protocol

    def to_state(self) -> Dict[str, object]:
        """A JSON-safe document that round-trips bit-exactly."""
        ...  # pragma: no cover - protocol


#: A cached resume point: the belief and the second it represents.
ResumeState = Tuple[FilterState, int]


class BayesFilter(ABC):
    """One object's belief, driven through predict/update cycles."""

    @abstractmethod
    def predict(self, dt: float) -> None:
        """Propagate the belief ``dt`` seconds through the motion model."""

    @abstractmethod
    def update(
        self, second: int, readings: Sequence[str], negative_info: bool
    ) -> None:
        """Condition on one second's detections.

        ``readings`` holds the ids of the readers that detected the
        object during ``second`` (empty on silent seconds). When
        ``negative_info`` is true, a silent second is itself evidence
        and the belief is conditioned on the absence of detections.
        """

    @abstractmethod
    def posterior(self) -> Dict[int, float]:
        """The belief as ``{anchor_id: probability}``; mass sums to 1."""

    @abstractmethod
    def state(self) -> FilterState:
        """The live mutable belief (callers must copy before mutating)."""

    def to_state(self) -> Dict[str, object]:
        """JSON-safe snapshot of the belief (bit-exact round trip)."""
        return self.state().to_state()


@dataclass
class FilterRun:
    """Output of one backend run: the final belief and the second it covers."""

    filter: BayesFilter
    end_second: int

    def posterior(self) -> Dict[int, float]:
        """The run's final per-anchor distribution."""
        return self.filter.posterior()

    def state(self) -> FilterState:
        """The run's final belief, for the cache (live, not copied)."""
        return self.filter.state()


class FilterBackend(ABC):
    """Per-deployment model shared by all of one backend's filters.

    Subclasses declare:

    * ``name`` — the registry key (``--filter`` value);
    * ``state_version`` — bumped whenever ``to_state`` layout changes, so
      checkpoints refuse incompatible restores instead of mis-decoding;
    * ``cacheable`` — whether resuming from a cached belief is cheaper
      than recomputing (stateless backends opt out).
    """

    name: ClassVar[str]
    state_version: ClassVar[int] = 1
    cacheable: ClassVar[bool] = True

    def __init__(
        self,
        graph: WalkingGraph,
        anchor_index: AnchorIndex,
        readers: Union[Mapping[str, RFIDReader], Iterable[RFIDReader]],
        config: SimulationConfig,
        resampler: object = None,
    ) -> None:
        self.graph = graph
        self.anchor_index = anchor_index
        self.config = config
        if isinstance(readers, Mapping):
            self.readers: Dict[str, RFIDReader] = dict(readers)
        else:
            self.readers = {r.reader_id: r for r in readers}
        self.resampler = resampler
        self.compiled_graph = CompiledGraph(graph)
        self.compiled_anchors = CompiledAnchors(anchor_index)

    # ------------------------------------------------------------------
    # per-object filter construction
    # ------------------------------------------------------------------
    @abstractmethod
    def new_filter(
        self, history: ReadingHistory, rng: np.random.Generator
    ) -> BayesFilter:
        """A fresh belief seeded from the history's first detecting device."""

    @abstractmethod
    def filter_from_state(
        self, state: FilterState, rng: np.random.Generator
    ) -> BayesFilter:
        """Rebuild a belief from a cached live state (copies the state)."""

    @abstractmethod
    def state_from_dict(self, payload: Dict[str, object]) -> FilterState:
        """Decode a :meth:`BayesFilter.to_state` document (checkpoints)."""

    # ------------------------------------------------------------------
    # the shared run loop
    # ------------------------------------------------------------------
    def run(
        self,
        history: ReadingHistory,
        current_second: int,
        rng: RngLike = None,
        resume: Optional[ResumeState] = None,
    ) -> FilterRun:
        """Run (or resume) the filter for one object up to ``current_second``."""
        return self.replay(history, current_second, rng=rng, resume=resume)

    def replay(
        self,
        history: ReadingHistory,
        current_second: int,
        rng: RngLike = None,
        resume: Optional[ResumeState] = None,
    ) -> FilterRun:
        """The generic replay driver (paper Algorithm 2's outer loop).

        Seeds from the history's first device (or resumes from a cached
        belief), then replays every second up to
        ``min(t_d + silence_cap, current_second)`` through
        predict/update. Mirrors
        :meth:`repro.core.filter.ParticleFilter.run` step for step, so a
        backend whose primitives match the legacy filter's draws the
        identical RNG sequence.
        """
        if history.is_empty:
            raise ValueError(
                f"object {history.object_id!r} has no readings; it cannot be filtered"
            )
        generator = make_rng(rng)
        td = history.last_second
        t_end = int(min(td + self.config.silence_cap_seconds, current_second))

        with obs.span("filter.run", object=history.object_id, backend=self.name):
            if resume is not None and resume[1] <= t_end:
                filt = self.filter_from_state(resume[0], generator)
                t_state = resume[1]
                obs.add("filter.resumed_runs")
            else:
                filt = self.new_filter(history, generator)
                t_state = history.first_second
            obs.add("filter.runs")
            obs.add("filter.backend_runs", labels={"backend": self.name})
            obs.add("filter.seconds_replayed", max(t_end - t_state, 0))

            negative = self.config.use_negative_information
            for second in range(t_state + 1, t_end + 1):
                filt.predict(1.0)
                reader_id = history.reading_at(second)
                filt.update(
                    second,
                    () if reader_id is None else (reader_id,),
                    negative,
                )
        return FilterRun(filter=filt, end_second=t_end)

    def check_state_version(self, version: int) -> None:
        """Raise :class:`FilterStateError` unless ``version`` matches."""
        if version != self.state_version:
            raise FilterStateError(
                f"filter backend {self.name!r} speaks state version "
                f"{self.state_version}, got a version-{version} state; "
                f"re-create the checkpoint with the current code"
            )
