"""A graph-constrained Kalman filter backend.

The belief is a Gaussian mixture over graph positions: each hypothesis
is a Gaussian in ``(offset, velocity)`` on one edge (or a dwelling atom
pinned at a room node), with a weight. Prediction propagates each
Gaussian through the constant-velocity model

.. math::

    F = \\begin{pmatrix}1 & dt\\\\ 0 & 1\\end{pmatrix}, \\qquad
    Q = \\sigma_a^2 \\begin{pmatrix}dt^3/3 & dt^2/2\\\\
                                    dt^2/2 & dt\\end{pmatrix}

(the white-noise-acceleration process, ``sigma_a =
config.kalman_accel_std``). When a hypothesis mean crosses an edge
endpoint it splits across the outgoing edges, weighted exactly like the
particle motion model's junction choice (door bias, no U-turns except at
dead ends); crossing into a room node turns it into a dwelling atom,
which each second splits into "stay" and "leave" by
``room_exit_probability`` — the same semantics the particle filter
samples, computed in closed form.

Updates condition on detections with the paper's sensing likelihood
``w_hit * m + w_miss * (1 - m)`` where ``m`` is the Gaussian probability
mass inside the reader's coverage interval(s) on the hypothesis' edge
(an :func:`math.erf` integral), followed by a standard Kalman position
update against the interval center. Silent seconds, when negative
information is enabled, reweight by ``negative_likelihood * m + (1 -
m)`` against the union of all readers' coverage.

The mixture is kept small by moment-matched merging of same-edge
same-direction hypotheses closer than ``kalman_merge_distance``, pruning
of negligible weights, and a deterministic top-``kalman_max_hypotheses``
cap. The filter draws no random numbers at all — the injected generator
is ignored — so its results are trivially independent of sharding,
execution order, and restarts.
"""

from __future__ import annotations

import math
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
    cast,
)

import numpy as np

import repro.obs as obs
from repro.collector.collector import ReadingHistory
from repro.config import SimulationConfig
from repro.filters.base import (
    BayesFilter,
    FilterBackend,
    FilterState,
    FilterStateError,
)
from repro.filters.registry import register_backend
from repro.graph.anchors import AnchorIndex
from repro.graph.walking_graph import WalkingGraph
from repro.rfid.reader import RFIDReader

#: Scan resolution (meters) when tracing reader coverage along edges —
#: matches the particle motion model's initialization scan.
_COVERAGE_SCAN_STEP = 0.25

#: Maximum junction hops a split may take in one prediction step. A 1 s
#: step at ~1 m/s cannot legitimately cross more than a few short edges.
_MAX_SPLIT_DEPTH = 4

#: Variance floor (m^2) so interval masses and anchor pdfs stay finite.
_VAR_FLOOR = 1e-4

#: Position variance assigned to dwelling atoms and room exits.
_DWELL_VAR = 1e-2

#: Relative weight below which a hypothesis is pruned.
_PRUNE_RATIO = 1e-9

#: Total-likelihood threshold that triggers a depletion reseed.
_DEPLETION_EPS = 1e-12

#: One coverage stretch on an edge: ``(lo, hi)`` offsets.
Interval = Tuple[float, float]

#: A mixture component as a plain tuple (see ``_ROW_FIELDS`` order):
#: ``(edge, offset, velocity, var_offset, cov_ov, var_velocity, weight,
#: dwelling)``.
Row = Tuple[int, float, float, float, float, float, float, bool]


class KalmanState:
    """The mixture belief as parallel arrays (cache/checkpoint form)."""

    __slots__ = (
        "edge",
        "offset",
        "velocity",
        "var_offset",
        "cov_ov",
        "var_velocity",
        "weight",
        "dwelling",
    )

    def __init__(
        self,
        edge: np.ndarray,
        offset: np.ndarray,
        velocity: np.ndarray,
        var_offset: np.ndarray,
        cov_ov: np.ndarray,
        var_velocity: np.ndarray,
        weight: np.ndarray,
        dwelling: np.ndarray,
    ) -> None:
        self.edge = edge
        self.offset = offset
        self.velocity = velocity
        self.var_offset = var_offset
        self.cov_ov = cov_ov
        self.var_velocity = var_velocity
        self.weight = weight
        self.dwelling = dwelling

    def __len__(self) -> int:
        return len(self.edge)

    @classmethod
    def from_rows(cls, rows: Sequence[Row]) -> "KalmanState":
        """Pack mixture rows into arrays."""
        return cls(
            edge=np.array([r[0] for r in rows], dtype=np.int64),
            offset=np.array([r[1] for r in rows], dtype=np.float64),
            velocity=np.array([r[2] for r in rows], dtype=np.float64),
            var_offset=np.array([r[3] for r in rows], dtype=np.float64),
            cov_ov=np.array([r[4] for r in rows], dtype=np.float64),
            var_velocity=np.array([r[5] for r in rows], dtype=np.float64),
            weight=np.array([r[6] for r in rows], dtype=np.float64),
            dwelling=np.array([r[7] for r in rows], dtype=bool),
        )

    def rows(self) -> List[Row]:
        """Unpack into mixture rows."""
        return [
            (
                int(self.edge[i]),
                float(self.offset[i]),
                float(self.velocity[i]),
                float(self.var_offset[i]),
                float(self.cov_ov[i]),
                float(self.var_velocity[i]),
                float(self.weight[i]),
                bool(self.dwelling[i]),
            )
            for i in range(len(self))
        ]

    def copy(self) -> "KalmanState":
        """An independent deep copy."""
        return KalmanState(
            edge=self.edge.copy(),
            offset=self.offset.copy(),
            velocity=self.velocity.copy(),
            var_offset=self.var_offset.copy(),
            cov_ov=self.cov_ov.copy(),
            var_velocity=self.var_velocity.copy(),
            weight=self.weight.copy(),
            dwelling=self.dwelling.copy(),
        )

    def to_state(self) -> Dict[str, object]:
        """JSON-safe snapshot; ``tolist`` round-trips float64 bit-exactly."""
        return {
            "edge": self.edge.tolist(),
            "offset": self.offset.tolist(),
            "velocity": self.velocity.tolist(),
            "var_offset": self.var_offset.tolist(),
            "cov_ov": self.cov_ov.tolist(),
            "var_velocity": self.var_velocity.tolist(),
            "weight": self.weight.tolist(),
            "dwelling": self.dwelling.tolist(),
        }

    @classmethod
    def from_state(cls, payload: Mapping[str, object]) -> "KalmanState":
        """Rebuild a belief from a :meth:`to_state` document."""
        try:
            return cls(
                edge=np.array(payload["edge"], dtype=np.int64),
                offset=np.array(payload["offset"], dtype=np.float64),
                velocity=np.array(payload["velocity"], dtype=np.float64),
                var_offset=np.array(payload["var_offset"], dtype=np.float64),
                cov_ov=np.array(payload["cov_ov"], dtype=np.float64),
                var_velocity=np.array(payload["var_velocity"], dtype=np.float64),
                weight=np.array(payload["weight"], dtype=np.float64),
                dwelling=np.array(payload["dwelling"], dtype=bool),
            )
        except KeyError as exc:
            raise FilterStateError(
                f"kalman state document is missing field {exc.args[0]!r}"
            ) from exc


def _interval_mass(mean: float, var: float, lo: float, hi: float) -> float:
    """Gaussian probability mass of ``[lo, hi]`` under ``N(mean, var)``."""
    sigma = math.sqrt(max(var, _VAR_FLOOR))
    scale = 1.0 / (sigma * math.sqrt(2.0))
    return 0.5 * (math.erf((hi - mean) * scale) - math.erf((lo - mean) * scale))


class GraphKalmanFilter(BayesFilter):
    """One object's Gaussian-mixture belief on the walking graph."""

    def __init__(self, backend: "KalmanBackend", state: KalmanState) -> None:
        self._backend = backend
        self._state = state

    # ------------------------------------------------------------------
    # contract
    # ------------------------------------------------------------------
    def predict(self, dt: float) -> None:
        backend = self._backend
        config = backend.config
        sig2 = config.kalman_accel_std ** 2
        q11 = sig2 * dt ** 3 / 3.0
        q12 = sig2 * dt ** 2 / 2.0
        q22 = sig2 * dt
        p_exit = config.room_exit_probability

        out: List[Row] = []
        for edge, off, vel, var_o, cov, var_v, w, dwelling in self._state.rows():
            if dwelling:
                if p_exit < 1.0:
                    out.append((edge, off, 0.0, _DWELL_VAR, 0.0, _VAR_FLOOR,
                                w * (1.0 - p_exit), True))
                if p_exit > 0.0:
                    out.append(backend.exit_row(edge, w * p_exit))
                continue
            new_off = off + vel * dt
            new_var_o = var_o + 2.0 * cov * dt + var_v * dt ** 2 + q11
            new_cov = cov + var_v * dt + q12
            new_var_v = var_v + q22
            self._place(out, edge, new_off, vel, new_var_o, new_cov,
                        new_var_v, w, depth=0)
        self._state = KalmanState.from_rows(self._consolidate(out))

    def update(
        self, second: int, readings: Sequence[str], negative_info: bool
    ) -> None:
        del second  # the likelihood conditions on the reading alone
        if readings:
            self._observe(readings[0])
        elif negative_info:
            self._observe_silence()

    def posterior(self) -> Dict[int, float]:
        backend = self._backend
        mass: Dict[int, float] = {}
        for edge, off, _vel, var_o, _cov, _var_v, w, dwelling in self._state.rows():
            if w <= 0.0:
                continue
            if dwelling:
                ap_id = backend.room_anchor(edge, off)
                mass[ap_id] = mass.get(ap_id, 0.0) + w
                continue
            anchors = backend.anchor_index.on_edge(edge)
            var = max(var_o, _VAR_FLOOR)
            pdf = [math.exp(-((a_off - off) ** 2) / (2.0 * var))
                   for a_off, _ap in anchors]
            total = sum(pdf)
            if total <= 0.0:
                ap_id = backend.nearest_anchor(edge, off)
                mass[ap_id] = mass.get(ap_id, 0.0) + w
                continue
            for (a_off, ap_id), p in zip(anchors, pdf):
                del a_off
                if p > 0.0:
                    mass[ap_id] = mass.get(ap_id, 0.0) + w * p / total
        total_mass = sum(mass.values())
        if total_mass <= 0.0:  # pragma: no cover - weights always sum to 1
            return {}
        return {ap_id: m / total_mass for ap_id, m in mass.items()}

    def state(self) -> FilterState:
        return self._state

    # ------------------------------------------------------------------
    # prediction internals
    # ------------------------------------------------------------------
    def _place(
        self,
        out: List[Row],
        edge: int,
        offset: float,
        velocity: float,
        var_o: float,
        cov: float,
        var_v: float,
        weight: float,
        depth: int,
    ) -> None:
        """Deposit a propagated Gaussian, splitting across junctions.

        Mirrors the particle motion model's ``_walk``: the mean walks
        across node transitions, the mixture branches where a particle
        would make a random turn.
        """
        backend = self._backend
        compiled = backend.compiled_graph
        length = float(compiled.edge_length[edge])
        if 0.0 <= offset <= length:
            out.append((edge, offset, velocity, var_o, cov, var_v, weight, False))
            return
        if depth >= _MAX_SPLIT_DEPTH:
            out.append((edge, min(max(offset, 0.0), length), velocity,
                        var_o, cov, var_v, weight, False))
            return
        if offset > length:
            node = int(compiled.edge_node_b[edge])
            overshoot = offset - length
        else:
            node = int(compiled.edge_node_a[edge])
            overshoot = -offset
        if compiled.node_is_room[node]:
            pinned = length if node == int(compiled.edge_node_b[edge]) else 0.0
            out.append((edge, pinned, 0.0, _DWELL_VAR, 0.0, _VAR_FLOOR,
                        weight, True))
            return
        speed = abs(velocity)
        for next_edge, fraction in backend.transition_weights(node, edge):
            next_length = float(compiled.edge_length[next_edge])
            if int(compiled.edge_node_a[next_edge]) == node:
                self._place(out, next_edge, overshoot, speed,
                            var_o, cov, var_v, weight * fraction, depth + 1)
            else:
                self._place(out, next_edge, next_length - overshoot, -speed,
                            var_o, cov, var_v, weight * fraction, depth + 1)

    def _consolidate(self, rows: List[Row]) -> List[Row]:
        """Merge close same-direction hypotheses, prune, cap, normalize."""
        merge_d = self._backend.config.kalman_merge_distance
        merged: List[Row] = []
        for row in rows:
            edge, off, vel, var_o, cov, var_v, w, dwelling = row
            if w <= 0.0:
                continue
            target = -1
            for i, other in enumerate(merged):
                if other[0] != edge or other[7] != dwelling:
                    continue
                if dwelling:
                    if other[1] == off:
                        target = i
                        break
                    continue
                same_heading = (other[2] >= 0.0) == (vel >= 0.0)
                if same_heading and abs(other[1] - off) <= merge_d:
                    target = i
                    break
            if target < 0:
                merged.append(row)
                continue
            merged[target] = self._moment_match(merged[target], row)
        total = sum(r[6] for r in merged)
        if total <= 0.0:  # pragma: no cover - inputs always carry weight
            return merged
        kept = [r for r in merged if r[6] / total >= _PRUNE_RATIO]
        kept.sort(key=lambda r: (-r[6], r[0], r[1], r[2]))
        kept = kept[: self._backend.config.kalman_max_hypotheses]
        total = sum(r[6] for r in kept)
        out = [
            (r[0], r[1], r[2], r[3], r[4], r[5], r[6] / total, r[7])
            for r in kept
        ]
        if obs.enabled():
            # Mixture health proxies for the epoch event log: how many
            # hypotheses each consolidation discards, and the entropy of
            # the surviving mixture (0 = collapsed to one hypothesis).
            obs.add(
                "filter.kalman.pruned_hypotheses", len(merged) - len(out)
            )
            entropy = -sum(
                r[6] * math.log(r[6]) for r in out if r[6] > 0.0
            )
            obs.observe("filter.kalman.entropy", entropy)
            obs.observe("filter.kalman.hypotheses", float(len(out)))
        return out

    @staticmethod
    def _moment_match(a: Row, b: Row) -> Row:
        """Collapse two same-edge Gaussians into one (preserving moments)."""
        w = a[6] + b[6]
        if a[7]:  # dwelling atoms: identical position, just pool weight
            return (a[0], a[1], 0.0, _DWELL_VAR, 0.0, _VAR_FLOOR, w, True)
        fa = a[6] / w
        fb = b[6] / w
        mo = fa * a[1] + fb * b[1]
        mv = fa * a[2] + fb * b[2]
        da_o, da_v = a[1] - mo, a[2] - mv
        db_o, db_v = b[1] - mo, b[2] - mv
        var_o = fa * (a[3] + da_o * da_o) + fb * (b[3] + db_o * db_o)
        cov = fa * (a[4] + da_o * da_v) + fb * (b[4] + db_o * db_v)
        var_v = fa * (a[5] + da_v * da_v) + fb * (b[5] + db_v * db_v)
        return (a[0], mo, mv, var_o, cov, var_v, w, False)

    # ------------------------------------------------------------------
    # update internals
    # ------------------------------------------------------------------
    def _observe(self, reader_id: str) -> None:
        """Reweight by the sensing likelihood, then Kalman-update position."""
        backend = self._backend
        config = backend.config
        rows = self._state.rows()
        masses = [backend.coverage_mass(r, reader_id) for r in rows]
        liks = [
            config.weight_hit * m + config.weight_miss * (1.0 - m)
            for m in masses
        ]
        total = sum(r[6] * lik for r, lik in zip(rows, liks))
        if total < _DEPLETION_EPS:
            # Depletion: no hypothesis is consistent with the detection.
            # Reseed from the observed reader's coverage — the object is
            # certainly there (paper Section 3.2, Case 1).
            obs.add("filter.depletion_reseeds")
            self._state = KalmanState.from_rows(
                backend.initial_rows(reader_id)
            )
            return
        r_var = (backend.readers[reader_id].activation_range / 2.0) ** 2
        out: List[Row] = []
        for (edge, off, vel, var_o, cov, var_v, w, dwelling), mass, lik in zip(
            rows, masses, liks
        ):
            w = w * lik / total
            if not dwelling and mass > 0.0:
                z = backend.measurement_offset(reader_id, edge, off)
                if z is not None:
                    s = var_o + r_var
                    k_o = var_o / s
                    k_v = cov / s
                    innov = z - off
                    length = float(backend.compiled_graph.edge_length[edge])
                    off = min(max(off + k_o * innov, 0.0), length)
                    vel = vel + k_v * innov
                    var_v = var_v - k_v * cov
                    cov = (1.0 - k_o) * cov
                    var_o = (1.0 - k_o) * var_o
            out.append((edge, off, vel, var_o, cov, var_v, w, dwelling))
        self._state = KalmanState.from_rows(self._consolidate(out))

    def _observe_silence(self) -> None:
        """Negative information: condition on *not* being detected."""
        backend = self._backend
        neg = backend.config.negative_likelihood
        rows = self._state.rows()
        liks = [
            neg * m + (1.0 - m)
            for m in (backend.silence_mass(r) for r in rows)
        ]
        total = sum(r[6] * lik for r, lik in zip(rows, liks))
        if total < _DEPLETION_EPS:  # pragma: no cover - lik is bounded below
            return
        out = [
            (r[0], r[1], r[2], r[3], r[4], r[5], r[6] * lik / total, r[7])
            for r, lik in zip(rows, liks)
        ]
        self._state = KalmanState.from_rows(self._consolidate(out))


@register_backend
class KalmanBackend(FilterBackend):
    """Registry wrapper precomputing reader coverage on the graph."""

    name = "kalman"
    state_version = 1
    cacheable = True

    def __init__(
        self,
        graph: WalkingGraph,
        anchor_index: AnchorIndex,
        readers: Union[Mapping[str, RFIDReader], Iterable[RFIDReader]],
        config: SimulationConfig,
        resampler: object = None,
    ) -> None:
        super().__init__(graph, anchor_index, readers, config, resampler=resampler)
        # Coverage intervals per reader per edge (and their union for
        # negative information), traced at the same resolution as the
        # particle filter's initialization scan.
        self._coverage: Dict[str, Dict[int, List[Interval]]] = {}
        self._covered_nodes: Dict[str, FrozenSet[int]] = {}
        for reader_id, reader in sorted(self.readers.items()):
            self._coverage[reader_id] = self._trace_coverage(reader)
            self._covered_nodes[reader_id] = self._trace_nodes(reader)
        self._silence_coverage: Dict[int, List[Interval]] = {}
        for per_edge in self._coverage.values():
            for edge_id, intervals in per_edge.items():
                self._silence_coverage.setdefault(edge_id, []).extend(intervals)
        for edge_id in self._silence_coverage:
            self._silence_coverage[edge_id] = self._merge_intervals(
                self._silence_coverage[edge_id]
            )
        self._silence_nodes: FrozenSet[int] = frozenset().union(
            *self._covered_nodes.values()
        )

    # ------------------------------------------------------------------
    # FilterBackend contract
    # ------------------------------------------------------------------
    def new_filter(
        self, history: ReadingHistory, rng: np.random.Generator
    ) -> BayesFilter:
        del rng  # the Kalman backend is deterministic
        return GraphKalmanFilter(
            self, KalmanState.from_rows(self.initial_rows(history.initial_reader_id))
        )

    def filter_from_state(
        self, state: FilterState, rng: np.random.Generator
    ) -> BayesFilter:
        del rng
        return GraphKalmanFilter(self, cast(KalmanState, state).copy())

    def state_from_dict(self, payload: Dict[str, object]) -> FilterState:
        return KalmanState.from_state(payload)

    # ------------------------------------------------------------------
    # coverage precomputation
    # ------------------------------------------------------------------
    def _trace_coverage(self, reader: RFIDReader) -> Dict[int, List[Interval]]:
        """Coverage intervals of one reader on every edge."""
        circle = reader.detection_circle
        per_edge: Dict[int, List[Interval]] = {}
        for edge in self.graph.edges:
            steps = max(int(edge.length / _COVERAGE_SCAN_STEP), 1)
            inside_from: Optional[float] = None
            last_inside = 0.0
            intervals: List[Interval] = []
            for i in range(steps + 1):
                offset = min(i * _COVERAGE_SCAN_STEP, edge.length)
                if circle.contains(edge.point_at(offset)):
                    if inside_from is None:
                        inside_from = offset
                    last_inside = offset
                elif inside_from is not None:
                    intervals.append(self._pad(inside_from, last_inside, edge.length))
                    inside_from = None
            if inside_from is not None:
                intervals.append(self._pad(inside_from, last_inside, edge.length))
            if intervals:
                per_edge[edge.edge_id] = self._merge_intervals(intervals)
        return per_edge

    def _trace_nodes(self, reader: RFIDReader) -> FrozenSet[int]:
        """Indices of graph nodes inside one reader's range."""
        compiled = self.compiled_graph
        circle = reader.detection_circle
        nodes = {n.node_id: n for n in self.graph.nodes}
        return frozenset(
            i
            for i, node_id in enumerate(compiled.node_ids)
            if circle.contains(nodes[node_id].point)
        )

    @staticmethod
    def _pad(lo: float, hi: float, length: float) -> Interval:
        """Widen a scanned interval by half a scan step on each side."""
        half = _COVERAGE_SCAN_STEP / 2.0
        return (max(lo - half, 0.0), min(hi + half, length))

    @staticmethod
    def _merge_intervals(intervals: List[Interval]) -> List[Interval]:
        """Union of possibly-overlapping intervals, sorted."""
        merged: List[Interval] = []
        for lo, hi in sorted(intervals):
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return merged

    # ------------------------------------------------------------------
    # helpers used by the filter
    # ------------------------------------------------------------------
    def initial_rows(self, reader_id: str) -> List[Row]:
        """Seed hypotheses uniform over a reader's coverage (± direction)."""
        config = self.config
        rows: List[Row] = []
        per_edge = self._coverage.get(reader_id, {})
        var_v = max(config.speed_std ** 2, _VAR_FLOOR)
        for edge_id in sorted(per_edge):
            for lo, hi in per_edge[edge_id]:
                span = max(hi - lo, _COVERAGE_SCAN_STEP)
                center = (lo + hi) / 2.0
                var_o = max(span ** 2 / 12.0, _VAR_FLOOR)
                for sign in (1.0, -1.0):
                    rows.append((edge_id, center, sign * config.speed_mean,
                                 var_o, 0.0, var_v, span / 2.0, False))
        if not rows:
            # The circle misses the graph (malformed deployment): collapse
            # onto the closest graph location, like the particle filter.
            reader = self.readers[reader_id]
            loc, _ = self.graph.locate(reader.position)
            var_o = max((reader.activation_range / 2.0) ** 2, _VAR_FLOOR)
            for sign in (1.0, -1.0):
                rows.append((loc.edge_id, loc.offset, sign * config.speed_mean,
                             var_o, 0.0, var_v, 0.5, False))
        total = sum(r[6] for r in rows)
        rows = [
            (r[0], r[1], r[2], r[3], r[4], r[5], r[6] / total, r[7])
            for r in rows
        ]
        rows.sort(key=lambda r: (-r[6], r[0], r[1], r[2]))
        return rows[: config.kalman_max_hypotheses * 2]

    def transition_weights(
        self, node: int, arrival_edge: int
    ) -> List[Tuple[int, float]]:
        """Outgoing edges and their probabilities at a junction.

        The closed-form counterpart of the particle motion model's
        ``_choose_next_edge``: the arrival edge is excluded unless the
        node is a dead end, and door spurs collectively receive
        ``door_entry_probability`` when hallways are also available.
        """
        compiled = self.compiled_graph
        candidates = compiled.adjacency[node]
        if len(candidates) > 1:
            candidates = candidates[candidates != arrival_edge]
        if len(candidates) == 1:
            return [(int(candidates[0]), 1.0)]
        door_mask = compiled.edge_is_door[candidates]
        doors = [int(e) for e in candidates[door_mask]]
        hallways = [int(e) for e in candidates[~door_mask]]
        if doors and hallways:
            p_door = self.config.door_entry_probability
            return (
                [(e, p_door / len(doors)) for e in doors]
                + [(e, (1.0 - p_door) / len(hallways)) for e in hallways]
            )
        pool = doors or hallways
        return [(e, 1.0 / len(pool)) for e in pool]

    def exit_row(self, edge: int, weight: float) -> Row:
        """A hypothesis leaving its room through the door edge."""
        compiled = self.compiled_graph
        length = float(compiled.edge_length[edge])
        if compiled.node_is_room[int(compiled.edge_node_b[edge])]:
            offset, velocity = length, -self.config.speed_mean
        else:
            offset, velocity = 0.0, self.config.speed_mean
        var_v = max(self.config.speed_std ** 2, _VAR_FLOOR)
        return (edge, offset, velocity, _DWELL_VAR, 0.0, var_v, weight, False)

    def coverage_mass(self, row: Row, reader_id: str) -> float:
        """Probability that a hypothesis lies inside a reader's range."""
        edge, off, _vel, var_o, _cov, _var_v, _w, dwelling = row
        if dwelling:
            node = self._pinned_node(edge, off)
            return 1.0 if node in self._covered_nodes.get(reader_id, frozenset()) else 0.0
        intervals = self._coverage.get(reader_id, {}).get(edge)
        if not intervals:
            return 0.0
        mass = sum(_interval_mass(off, var_o, lo, hi) for lo, hi in intervals)
        return min(max(mass, 0.0), 1.0)

    def silence_mass(self, row: Row) -> float:
        """Probability that a hypothesis lies inside *any* reader's range."""
        edge, off, _vel, var_o, _cov, _var_v, _w, dwelling = row
        if dwelling:
            return 1.0 if self._pinned_node(edge, off) in self._silence_nodes else 0.0
        intervals = self._silence_coverage.get(edge)
        if not intervals:
            return 0.0
        mass = sum(_interval_mass(off, var_o, lo, hi) for lo, hi in intervals)
        return min(max(mass, 0.0), 1.0)

    def measurement_offset(
        self, reader_id: str, edge: int, mean_offset: float
    ) -> Optional[float]:
        """The measurement ``z``: center of the nearest coverage interval."""
        intervals = self._coverage.get(reader_id, {}).get(edge)
        if not intervals:
            return None
        centers = [(lo + hi) / 2.0 for lo, hi in intervals]
        return min(centers, key=lambda c: abs(c - mean_offset))

    def room_anchor(self, edge: int, pinned_offset: float) -> int:
        """Anchor id of the room node a dwelling hypothesis sits at."""
        node = self._pinned_node(edge, pinned_offset)
        node_id = self.compiled_graph.node_ids[node]
        return self.anchor_index.node_anchor(node_id).ap_id

    def nearest_anchor(self, edge: int, offset: float) -> int:
        """Anchor id nearest to an ``(edge, offset)`` position (fallback)."""
        compiled = self.compiled_graph
        x, y = compiled.points(
            np.array([edge], dtype=np.int64), np.array([offset], dtype=np.float64)
        )
        return int(self.compiled_anchors.nearest(x, y)[0])

    def _pinned_node(self, edge: int, pinned_offset: float) -> int:
        """The node index a dwelling hypothesis is pinned at."""
        compiled = self.compiled_graph
        length = float(compiled.edge_length[edge])
        if pinned_offset >= length / 2.0:
            return int(compiled.edge_node_b[edge])
        return int(compiled.edge_node_a[edge])
