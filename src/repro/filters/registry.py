"""The filter backend registry (``FilterFactory``).

Backends self-register at import time via the :func:`register_backend`
class decorator; everything that needs an estimator — the query engine,
the sharded executor, the CLI's ``--filter`` flag — resolves it by name
through one shared factory, so adding a backend is one new module plus
one decorator.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Mapping, Tuple, Type, TypeVar, Union

from repro.config import SimulationConfig
from repro.filters.base import FilterBackend
from repro.graph.anchors import AnchorIndex
from repro.graph.walking_graph import WalkingGraph
from repro.rfid.reader import RFIDReader

B = TypeVar("B", bound=Type[FilterBackend])

#: What callers may pass wherever a backend is accepted: a registry name
#: or an already-constructed backend instance (passed through untouched).
BackendSpec = Union[str, FilterBackend]


class FilterFactory:
    """Name-to-class registry of :class:`FilterBackend` implementations."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._backends: Dict[str, Type[FilterBackend]] = {}

    def register(self, backend_cls: B) -> B:
        """Class decorator: add ``backend_cls`` under its ``name``."""
        name = backend_cls.name
        with self._lock:
            existing = self._backends.get(name)
            if existing is not None and existing is not backend_cls:
                raise ValueError(
                    f"filter backend name {name!r} is already registered "
                    f"by {existing.__qualname__}"
                )
            self._backends[name] = backend_cls
        return backend_cls

    def names(self) -> Tuple[str, ...]:
        """Registered backend names, sorted."""
        with self._lock:
            return tuple(sorted(self._backends))

    def backend_class(self, name: str) -> Type[FilterBackend]:
        """The backend class registered under ``name``."""
        with self._lock:
            backend_cls = self._backends.get(name)
        if backend_cls is None:
            raise ValueError(
                f"unknown filter backend {name!r}; "
                f"registered backends: {', '.join(self.names()) or '(none)'}"
            )
        return backend_cls

    def state_version_of(self, name: str) -> int:
        """The current state version of the backend named ``name``."""
        return self.backend_class(name).state_version

    def create(
        self,
        spec: BackendSpec,
        graph: WalkingGraph,
        anchor_index: AnchorIndex,
        readers: Union[Mapping[str, RFIDReader], Iterable[RFIDReader]],
        config: SimulationConfig,
        resampler: object = None,
    ) -> FilterBackend:
        """Build (or pass through) a backend for one deployment."""
        if isinstance(spec, FilterBackend):
            return spec
        backend_cls = self.backend_class(spec)
        return backend_cls(
            graph, anchor_index, readers, config, resampler=resampler
        )


#: The process-wide factory every component resolves backends through.
FACTORY = FilterFactory()

register_backend = FACTORY.register


def create_backend(
    spec: BackendSpec,
    graph: WalkingGraph,
    anchor_index: AnchorIndex,
    readers: Union[Mapping[str, RFIDReader], Iterable[RFIDReader]],
    config: SimulationConfig,
    resampler: object = None,
) -> FilterBackend:
    """Module-level convenience for :meth:`FilterFactory.create`."""
    return FACTORY.create(
        spec, graph, anchor_index, readers, config, resampler=resampler
    )


def available_backends() -> Tuple[str, ...]:
    """Names of all registered backends (CLI choices, docs, tests)."""
    return FACTORY.names()
