"""The symbolic (uniform-over-reachable) model as a filter backend.

Wraps :class:`repro.symbolic.inference.SymbolicLocationModel` — the
Yang-et-al. baseline the paper compares against — behind the
:class:`~repro.filters.base.BayesFilter` contract, so the CLI's
``--filter symbolic`` runs the baseline through the exact same engine,
executor, and query-evaluation code paths as the particle and Kalman
backends.

The model is closed-form in ``(history, now)``: there is nothing to
propagate between seconds, so ``predict`` is a no-op, ``update`` merely
advances the evaluation second, and the backend opts out of state
caching (``cacheable = False`` — recomputing is cheaper than resuming).
Unlike the replay driver, the legacy symbolic engine evaluates at the
*actual* query second with no silence cap — the maximum-speed
reachability constraint plays that role — so :meth:`SymbolicBackend.run`
overrides the generic loop and evaluates directly at ``current_second``.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
    cast,
)

import numpy as np

import repro.obs as obs
from repro.collector.collector import DeviceRun, ReadingHistory
from repro.config import SimulationConfig
from repro.filters.base import (
    BayesFilter,
    FilterBackend,
    FilterRun,
    FilterState,
    FilterStateError,
    ResumeState,
)
from repro.filters.registry import register_backend
from repro.graph.anchors import AnchorIndex
from repro.graph.walking_graph import WalkingGraph
from repro.rfid.reader import RFIDReader
from repro.rng import RngLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.symbolic.inference import SymbolicLocationModel


class SymbolicState:
    """A symbolic belief is just the inputs: the history and the second."""

    __slots__ = ("object_id", "runs", "now")

    def __init__(
        self, object_id: str, runs: Sequence[Mapping[str, object]], now: int
    ) -> None:
        self.object_id = object_id
        self.runs: List[Dict[str, object]] = [dict(r) for r in runs]
        self.now = now

    @classmethod
    def from_history(cls, history: ReadingHistory, now: int) -> "SymbolicState":
        """Capture a reading history at evaluation second ``now``."""
        return cls(
            history.object_id,
            [
                {"reader_id": run.reader_id, "seconds": list(run.seconds)}
                for run in history.runs
            ],
            now,
        )

    def history(self) -> ReadingHistory:
        """The captured history as the collector's type."""
        return ReadingHistory(
            object_id=self.object_id,
            runs=tuple(
                DeviceRun(
                    reader_id=cast(str, run["reader_id"]),
                    seconds=list(cast(List[int], run["seconds"])),
                )
                for run in self.runs
            ),
        )

    def copy(self) -> "SymbolicState":
        """An independent deep copy."""
        return SymbolicState(self.object_id, self.runs, self.now)

    def to_state(self) -> Dict[str, object]:
        """JSON-safe snapshot (plain ints and strings round-trip exactly)."""
        return {
            "object_id": self.object_id,
            "runs": [dict(r) for r in self.runs],
            "now": self.now,
        }

    @classmethod
    def from_state(cls, payload: Mapping[str, object]) -> "SymbolicState":
        """Rebuild a belief from a :meth:`to_state` document."""
        try:
            return cls(
                cast(str, payload["object_id"]),
                cast(List[Mapping[str, object]], payload["runs"]),
                cast(int, payload["now"]),
            )
        except KeyError as exc:
            raise FilterStateError(
                f"symbolic state document is missing field {exc.args[0]!r}"
            ) from exc


class SymbolicBayesFilter(BayesFilter):
    """Contract adapter: evaluate the symbolic model at the tracked second."""

    def __init__(self, backend: "SymbolicBackend", state: SymbolicState) -> None:
        self._backend = backend
        self._state = state

    def predict(self, dt: float) -> None:
        # Closed-form model: time only enters through the evaluation
        # second, advanced here so the generic replay driver still lands
        # on the correct ``now``.
        self._state.now += int(dt)

    def update(
        self, second: int, readings: Sequence[str], negative_info: bool
    ) -> None:
        del negative_info  # reachability already encodes absence
        self._state.now = second
        # The retained runs grow only through the collector; a detection
        # during replay is already part of the captured history.
        del readings

    def posterior(self) -> Dict[int, float]:
        distribution = self._backend.model.infer(
            self._state.history(), self._state.now
        )
        return dict(distribution) if distribution else {}

    def state(self) -> FilterState:
        return self._state


@register_backend
class SymbolicBackend(FilterBackend):
    """Registry wrapper around the symbolic location model."""

    name = "symbolic"
    state_version = 1
    #: Stateless in the Bayesian sense: the posterior is a closed-form
    #: function of (history, now), so caching beliefs buys nothing.
    cacheable = False

    def __init__(
        self,
        graph: WalkingGraph,
        anchor_index: AnchorIndex,
        readers: Union[Mapping[str, RFIDReader], Iterable[RFIDReader]],
        config: SimulationConfig,
        resampler: object = None,
    ) -> None:
        super().__init__(graph, anchor_index, readers, config, resampler=resampler)
        # Imported here, not at module level: repro.symbolic pulls in the
        # legacy symbolic query engine, which imports repro.queries —
        # which itself imports repro.filters.
        from repro.symbolic.inference import SymbolicLocationModel

        self.model: "SymbolicLocationModel" = SymbolicLocationModel(
            self.graph, self.anchor_index, self.readers.values(), self.config
        )

    # ------------------------------------------------------------------
    def new_filter(
        self, history: ReadingHistory, rng: np.random.Generator
    ) -> BayesFilter:
        del rng  # the symbolic model is deterministic
        return SymbolicBayesFilter(
            self, SymbolicState.from_history(history, history.first_second)
        )

    def filter_from_state(
        self, state: FilterState, rng: np.random.Generator
    ) -> BayesFilter:
        del rng
        return SymbolicBayesFilter(self, cast(SymbolicState, state).copy())

    def state_from_dict(self, payload: Dict[str, object]) -> FilterState:
        return SymbolicState.from_state(payload)

    # ------------------------------------------------------------------
    def run(
        self,
        history: ReadingHistory,
        current_second: int,
        rng: RngLike = None,
        resume: Optional[ResumeState] = None,
    ) -> FilterRun:
        """Evaluate directly at ``current_second`` (no silence cap).

        The symbolic model bounds the feasible region by maximum-speed
        reachability instead of capping replay length, so the legacy
        engine's semantics — evaluate at the true query second — are
        preserved here rather than routed through the capped replay loop.
        """
        del rng, resume  # deterministic and closed-form
        if history.is_empty:
            raise ValueError(
                f"object {history.object_id!r} has no readings; it cannot be filtered"
            )
        with obs.span("filter.run", object=history.object_id, backend=self.name):
            obs.add("filter.runs")
            obs.add("filter.backend_runs", labels={"backend": self.name})
            filt = SymbolicBayesFilter(
                self, SymbolicState.from_history(history, int(current_second))
            )
        return FilterRun(filter=filt, end_second=int(current_second))
