"""The SIR particle filter as a pluggable backend.

This wraps the proven :class:`repro.core.filter.ParticleFilter` without
changing its behavior: :meth:`ParticleBackend.run` delegates to the
legacy ``ParticleFilter.run`` loop, so every result — and every RNG draw
— is bit-identical to the pre-``repro.filters`` code. The
:class:`ParticleBayesFilter` contract implementation drives the same
public primitives (``predict`` / ``observe`` / ``observe_silence``) in
the same order, which the contract test suite asserts is equivalent.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union, cast

import numpy as np

import repro.obs as obs
from repro.collector.collector import ReadingHistory
from repro.config import SimulationConfig
from repro.core.discretize import particles_to_anchor_distribution
from repro.core.filter import ParticleFilter
from repro.core.particles import ParticleSet
from repro.core.resampling import systematic_resample
from repro.filters.base import (
    BayesFilter,
    FilterBackend,
    FilterRun,
    FilterState,
    FilterStateError,
    ResumeState,
)
from repro.filters.registry import register_backend
from repro.graph.anchors import AnchorIndex
from repro.graph.walking_graph import WalkingGraph
from repro.rfid.reader import RFIDReader
from repro.rng import RngLike, make_rng


class ParticleBayesFilter(BayesFilter):
    """One object's particle cloud, driven through the contract."""

    def __init__(
        self,
        backend: "ParticleBackend",
        particles: ParticleSet,
        rng: np.random.Generator,
    ) -> None:
        self._backend = backend
        self.particles = particles
        self._rng = rng

    def predict(self, dt: float) -> None:
        self._backend.filter.predict(self.particles, self._rng, dt=dt)

    def update(
        self, second: int, readings: Sequence[str], negative_info: bool
    ) -> None:
        del second  # the particle filter conditions on the reading alone
        if readings:
            self._backend.filter.observe(self.particles, readings[0], self._rng)
        elif negative_info:
            self._backend.filter.observe_silence(self.particles, self._rng)

    def posterior(self) -> Dict[int, float]:
        return particles_to_anchor_distribution(
            self.particles,
            self._backend.compiled_graph,
            self._backend.compiled_anchors,
        )

    def state(self) -> FilterState:
        return self.particles


@register_backend
class ParticleBackend(FilterBackend):
    """Registry wrapper around the paper's SIR particle filter."""

    name = "particle"
    state_version = 1
    cacheable = True

    def __init__(
        self,
        graph: WalkingGraph,
        anchor_index: AnchorIndex,
        readers: Union[Mapping[str, RFIDReader], Iterable[RFIDReader]],
        config: SimulationConfig,
        resampler: object = None,
    ) -> None:
        super().__init__(graph, anchor_index, readers, config, resampler=resampler)
        self.filter = ParticleFilter(
            self.compiled_graph,
            self.readers,
            config,
            resampler=resampler if resampler is not None else systematic_resample,
        )

    # ------------------------------------------------------------------
    def new_filter(
        self, history: ReadingHistory, rng: np.random.Generator
    ) -> BayesFilter:
        particles = self.filter.initialize(history, rng)
        return ParticleBayesFilter(self, particles, rng)

    def filter_from_state(
        self, state: FilterState, rng: np.random.Generator
    ) -> BayesFilter:
        return ParticleBayesFilter(self, cast(ParticleSet, state).copy(), rng)

    def state_from_dict(self, payload: Dict[str, object]) -> FilterState:
        try:
            return ParticleSet.from_state(payload)
        except KeyError as exc:
            raise FilterStateError(
                f"particle state document is missing field {exc.args[0]!r}"
            ) from exc

    # ------------------------------------------------------------------
    def run(
        self,
        history: ReadingHistory,
        current_second: int,
        rng: RngLike = None,
        resume: Optional[ResumeState] = None,
    ) -> FilterRun:
        """Delegate to the legacy ``ParticleFilter.run`` loop.

        Kept as the production path (instead of the generic
        :meth:`~repro.filters.base.FilterBackend.replay`) so the particle
        backend is *literally* the pre-refactor code: bit-for-bit
        reproduction of all recorded experiment results is structural,
        not incidental. ``tests/test_filters_contract.py`` asserts the
        contract-driven replay produces the identical particle set.
        """
        generator = make_rng(rng)
        obs.add("filter.backend_runs", labels={"backend": self.name})
        result = self.filter.run(
            history,
            current_second,
            rng=generator,
            resume=cast("Optional[tuple]", resume),
        )
        return FilterRun(
            filter=ParticleBayesFilter(self, result.particles, generator),
            end_second=result.end_second,
        )
