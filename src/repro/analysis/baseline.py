"""Baseline: grandfathered findings that don't fail the build.

Adopting a linter on a living codebase needs an amnesty mechanism:
``repro lint --write-baseline`` snapshots today's findings into a JSON
file, and subsequent runs subtract them — only *new* violations fail.
The goal state is an empty baseline (this repo's is), but the mechanism
keeps the linter adoptable after a big merge.

Matching is by :meth:`Finding.fingerprint` — ``(path, rule, message)``,
line numbers excluded — with multiplicity: a baseline with one ``DET``
entry for a file forgives one such finding, not every future one.
Paths are normalized to posix relative form so a baseline written on
one machine matches on another.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass
from pathlib import Path, PurePath
from typing import List, Tuple

from repro.analysis.findings import Finding

BASELINE_FORMAT = "repro-lint-baseline"
BASELINE_VERSION = 1

#: Default baseline location, resolved against the current directory.
DEFAULT_BASELINE = ".repro-lint-baseline.json"

Fingerprint = Tuple[str, str, str]


def _normalize_path(path: str) -> str:
    # Treat backslashes as separators regardless of host platform, so a
    # baseline written on Windows matches on POSIX and vice versa.
    posix = PurePath(path.replace("\\", "/")).as_posix()
    # Strip machine-specific prefixes: keep from the last ``src/`` or
    # package root onward when present.
    marker = "/src/"
    index = posix.rfind(marker)
    if index >= 0:
        return posix[index + len(marker):]
    return posix.lstrip("/")


def _normalized_fingerprint(finding: Finding) -> Fingerprint:
    path, rule, message = finding.fingerprint()
    return (_normalize_path(path), rule, message)


@dataclass
class BaselineDiff:
    """Result of subtracting a baseline from a finding list."""

    new: List[Finding]
    matched: int  #: findings forgiven by the baseline
    stale: int  #: baseline entries that matched nothing (fixed for real)


class Baseline:
    """An on-disk set of forgiven finding fingerprints (with counts)."""

    def __init__(self, counts: "Counter[Fingerprint]") -> None:
        self.counts = counts

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(Counter())

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        return cls(Counter(_normalized_fingerprint(f) for f in findings))

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        if (
            not isinstance(document, dict)
            or document.get("format") != BASELINE_FORMAT
        ):
            raise ValueError(f"{path}: not a {BASELINE_FORMAT} file")
        version = document.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(f"{path}: unsupported baseline version {version!r}")
        counts: "Counter[Fingerprint]" = Counter()
        for entry in document.get("findings", []):
            fingerprint = (
                str(entry["path"]),
                str(entry["rule"]),
                str(entry["message"]),
            )
            counts[fingerprint] += int(entry.get("count", 1))
        return cls(counts)

    def save(self, path: str) -> None:
        entries = [
            {"path": p, "rule": r, "message": m, "count": count}
            for (p, r, m), count in sorted(self.counts.items())
        ]
        document = {
            "format": BASELINE_FORMAT,
            "version": BASELINE_VERSION,
            "findings": entries,
        }
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        os.replace(tmp_path, path)

    def subtract(self, findings: List[Finding]) -> BaselineDiff:
        """Split findings into forgiven and new; count stale entries."""
        remaining = Counter(self.counts)
        new: List[Finding] = []
        matched = 0
        for finding in findings:
            fingerprint = _normalized_fingerprint(finding)
            if remaining.get(fingerprint, 0) > 0:
                remaining[fingerprint] -= 1
                matched += 1
            else:
                new.append(finding)
        stale = sum(count for count in remaining.values() if count > 0)
        return BaselineDiff(new=new, matched=matched, stale=stale)


def load_if_exists(path: str) -> Baseline:
    """The baseline at ``path``, or an empty one if the file is absent."""
    if Path(path).is_file():
        return Baseline.load(path)
    return Baseline.empty()
