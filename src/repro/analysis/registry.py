"""Rule registry: the contract a lint rule implements and how rules are found.

A rule is a class with a ``META`` :class:`RuleMeta` and a ``check``
method that walks one parsed module. Registration is by decorator::

    @register_rule
    class MyRule:
        META = RuleMeta(rule_id="XYZ", ...)

        def check(self, module: ModuleUnderCheck) -> List[Finding]: ...

Scoping lives in the metadata, not in the driver: each rule names the
package prefixes it guards (``applies_to``) and the sanctioned modules
inside that scope that are exempt (``exempt``) — e.g. the CLK rule
exempts the injectable-clock modules that *implement* the wall-clock
boundary. Paths are matched purely textually (posix separators), so the
driver can lint real files and tests can lint in-memory sources under
virtual paths.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Dict, List, Protocol, Sequence, Tuple, Type

from repro.analysis.findings import Finding, Severity


@dataclass(frozen=True)
class RuleMeta:
    """Identity, scope, and documentation of one rule."""

    rule_id: str
    title: str
    invariant: str
    severity: Severity = Severity.ERROR
    #: Package-directory prefixes this rule guards, e.g. ``"repro/core"``.
    #: Empty means: applies everywhere it is asked to run.
    applies_to: Tuple[str, ...] = ()
    #: Module suffixes inside the scope that are sanctioned, e.g.
    #: ``"repro/service/scheduler.py"`` for the CLK rule.
    exempt: Tuple[str, ...] = field(default=())

    def in_scope(self, path: str) -> bool:
        """Whether ``path`` (any os flavor, real or virtual) is governed."""
        norm = "/" + PurePath(path).as_posix().lstrip("/")
        for suffix in self.exempt:
            if norm.endswith("/" + suffix.lstrip("/")):
                return False
        if not self.applies_to:
            return True
        return any(f"/{prefix.strip('/')}/" in norm for prefix in self.applies_to)


@dataclass
class ModuleUnderCheck:
    """One parsed module handed to every in-scope rule."""

    path: str
    tree: ast.Module
    source: str
    lines: List[str]

    def segment(self, node: ast.AST) -> str:
        """The exact source text of a node ('' if unavailable)."""
        return ast.get_source_segment(self.source, node) or ""


class Rule(Protocol):
    """Structural type every registered rule satisfies."""

    META: RuleMeta

    def check(self, module: ModuleUnderCheck) -> List[Finding]: ...


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry (id must be new)."""
    rule_id = cls.META.rule_id
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _REGISTRY[rule_id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, sorted by id (import-order independent)."""
    import repro.analysis.rules  # noqa: F401  (registers the built-in set)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Type[Rule]:
    import repro.analysis.rules  # noqa: F401

    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def rule_ids() -> List[str]:
    import repro.analysis.rules  # noqa: F401

    return sorted(_REGISTRY)


def select_rules(only: Sequence[str] = ()) -> List[Type[Rule]]:
    """The rule classes to run (all, or the ``only`` subset by id)."""
    if not only:
        return all_rules()
    return [get_rule(rule_id) for rule_id in only]
