"""Rule registry: the contract a lint rule implements and how rules are found.

A rule is a class with a ``META`` :class:`RuleMeta` and a ``check``
method that walks one parsed module. Registration is by decorator::

    @register_rule
    class MyRule:
        META = RuleMeta(rule_id="XYZ", ...)

        def check(self, module: ModuleUnderCheck) -> List[Finding]: ...

Scoping lives in the metadata, not in the driver: each rule names the
package prefixes it guards (``applies_to``) and the sanctioned modules
inside that scope that are exempt (``exempt``) — e.g. the CLK rule
exempts the injectable-clock modules that *implement* the wall-clock
boundary. Paths are matched purely textually (posix separators), so the
driver can lint real files and tests can lint in-memory sources under
virtual paths.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import TYPE_CHECKING, Dict, List, Protocol, Sequence, Tuple, Type

from repro.analysis.findings import Finding, Severity


@dataclass(frozen=True)
class RuleMeta:
    """Identity, scope, and documentation of one rule."""

    rule_id: str
    title: str
    invariant: str
    severity: Severity = Severity.ERROR
    #: Package-directory prefixes this rule guards, e.g. ``"repro/core"``.
    #: Empty means: applies everywhere it is asked to run.
    applies_to: Tuple[str, ...] = ()
    #: Module suffixes inside the scope that are sanctioned, e.g.
    #: ``"repro/service/scheduler.py"`` for the CLK rule.
    exempt: Tuple[str, ...] = field(default=())

    def in_scope(self, path: str) -> bool:
        """Whether ``path`` (any os flavor, real or virtual) is governed."""
        norm = "/" + PurePath(path).as_posix().lstrip("/")
        for suffix in self.exempt:
            if norm.endswith("/" + suffix.lstrip("/")):
                return False
        if not self.applies_to:
            return True
        return any(f"/{prefix.strip('/')}/" in norm for prefix in self.applies_to)


@dataclass
class ModuleUnderCheck:
    """One parsed module handed to every in-scope rule."""

    path: str
    tree: ast.Module
    source: str
    lines: List[str]

    def segment(self, node: ast.AST) -> str:
        """The exact source text of a node ('' if unavailable)."""
        return ast.get_source_segment(self.source, node) or ""


class Rule(Protocol):
    """Structural type every registered per-file rule satisfies."""

    META: RuleMeta

    def check(self, module: ModuleUnderCheck) -> List[Finding]: ...


class ProjectRule(Protocol):
    """Structural type of a whole-program rule (``repro lint --project``).

    A project rule sees every parsed module at once — the import graph,
    the call graph, the state-schema surface — instead of one module.
    Scoping by ``META.applies_to`` governs where its *findings* may
    land, not which files it reads: a project rule always reads the
    whole project.
    """

    META: RuleMeta

    def check_project(self, project: "ProjectUnderCheck") -> List[Finding]: ...


if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.project import ProjectUnderCheck  # noqa: F401


_REGISTRY: Dict[str, Type[Rule]] = {}
_PROJECT_REGISTRY: Dict[str, Type[ProjectRule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry (id must be new)."""
    rule_id = cls.META.rule_id
    if rule_id in _REGISTRY or rule_id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _REGISTRY[rule_id] = cls
    return cls


def register_project_rule(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator: add a whole-program rule (id must be new)."""
    rule_id = cls.META.rule_id
    if rule_id in _REGISTRY or rule_id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _PROJECT_REGISTRY[rule_id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Every registered per-file rule class, sorted by id."""
    import repro.analysis.rules  # noqa: F401  (registers the built-in set)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def all_project_rules() -> List[Type[ProjectRule]]:
    """Every registered whole-program rule class, sorted by id."""
    import repro.analysis.rules  # noqa: F401  (registers the built-in set)

    return [_PROJECT_REGISTRY[rule_id] for rule_id in sorted(_PROJECT_REGISTRY)]


def get_rule(rule_id: str) -> Type[Rule]:
    import repro.analysis.rules  # noqa: F401

    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(rule_ids())}"
        ) from None


def get_project_rule(rule_id: str) -> Type[ProjectRule]:
    import repro.analysis.rules  # noqa: F401

    try:
        return _PROJECT_REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown project rule {rule_id!r}; known: {', '.join(rule_ids())}"
        ) from None


def rule_ids() -> List[str]:
    """Every known rule id — per-file and whole-program — sorted."""
    import repro.analysis.rules  # noqa: F401

    return sorted(set(_REGISTRY) | set(_PROJECT_REGISTRY))


def select_rules(only: Sequence[str] = ()) -> List[Type[Rule]]:
    """The per-file rule classes to run (all, or the ``only`` subset).

    Ids naming project rules are silently skipped here — the project
    driver selects those via :func:`select_project_rules`, and per-file
    entry points must stay runnable with e.g. ``--rules DET,ARCH``.
    """
    import repro.analysis.rules  # noqa: F401

    if not only:
        return all_rules()
    selected: List[Type[Rule]] = []
    for rule_id in only:
        if rule_id in _PROJECT_REGISTRY:
            continue
        selected.append(get_rule(rule_id))
    return selected


def select_project_rules(only: Sequence[str] = ()) -> List[Type[ProjectRule]]:
    """The whole-program rule classes to run (all, or the ``only`` subset)."""
    import repro.analysis.rules  # noqa: F401

    if not only:
        return all_project_rules()
    selected: List[Type[ProjectRule]] = []
    for rule_id in only:
        if rule_id in _REGISTRY:
            continue
        selected.append(get_project_rule(rule_id))
    return selected
