"""Text and JSON reporters for lint results.

The text report is for humans at a terminal; the JSON report
(``format: repro-lint``, versioned like the trace and checkpoint
documents) is what CI consumes, so its schema is part of the package's
public contract and covered by tests.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.analysis.driver import LintResult
from repro.analysis.findings import Finding
from repro.analysis.registry import all_project_rules, all_rules

REPORT_FORMAT = "repro-lint"
REPORT_VERSION = 1


def render_text(
    result: LintResult,
    new_findings: Optional[List[Finding]] = None,
    baselined: int = 0,
) -> str:
    """Human-readable report: one row per finding plus a summary line."""
    findings = result.sorted_findings() if new_findings is None else new_findings
    lines = [finding.render() for finding in findings]
    summary = (
        f"{len(findings)} finding(s) "
        f"({sum(1 for f in findings if f.severity.value == 'error')} error(s)) "
        f"in {result.files_checked} file(s)"
    )
    extras: List[str] = []
    if result.suppressed:
        extras.append(f"{result.suppressed} pragma-suppressed")
    if baselined:
        extras.append(f"{baselined} baselined")
    if extras:
        summary += " · " + ", ".join(extras)
    lines.append(summary)
    return "\n".join(lines)


def to_document(
    result: LintResult,
    new_findings: Optional[List[Finding]] = None,
    baselined: int = 0,
    stale_baseline_entries: int = 0,
) -> Dict[str, object]:
    """The canonical JSON document for one lint run."""
    findings = result.sorted_findings() if new_findings is None else new_findings
    rules: List[Dict[str, str]] = [
        {
            "id": rule_cls.META.rule_id,
            "title": rule_cls.META.title,
            "invariant": rule_cls.META.invariant,
            "scope": scope,
        }
        for scope, catalog in (
            ("file", all_rules()),
            ("project", all_project_rules()),
        )
        for rule_cls in catalog
    ]
    return {
        "format": REPORT_FORMAT,
        "version": REPORT_VERSION,
        "rules": rules,
        "findings": [dict(f.to_dict()) for f in findings],
        "summary": {
            "files_checked": result.files_checked,
            "total": len(findings),
            "errors": sum(1 for f in findings if f.severity.value == "error"),
            "warnings": sum(1 for f in findings if f.severity.value == "warning"),
            "pragma_suppressed": result.suppressed,
            "baselined": baselined,
            "stale_baseline_entries": stale_baseline_entries,
        },
    }


def render_json(
    result: LintResult,
    new_findings: Optional[List[Finding]] = None,
    baselined: int = 0,
    stale_baseline_entries: int = 0,
) -> str:
    return json.dumps(
        to_document(
            result,
            new_findings=new_findings,
            baselined=baselined,
            stale_baseline_entries=stale_baseline_entries,
        ),
        indent=2,
    )
