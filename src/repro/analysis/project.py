"""The whole-program view the cross-file rules analyze.

Per-file rules see one parsed module at a time; the project rules
(ARCH / SEED / SCHEMA / LOCKORDER) need to see *relationships* —
imports between packages, calls between functions, state schemas spread
over many classes. :class:`ProjectUnderCheck` is that shared view,
built once per ``repro lint --project`` run:

* every module parsed once, with its :class:`~repro.analysis.rules.common.ImportMap`
  and :class:`~repro.analysis.pragmas.PragmaIndex` attached;
* a dotted-name index (``src/repro/core/filter.py`` ↔
  ``repro.core.filter``) that works on real trees and on the virtual
  fixture paths tests use;
* the module-level import graph, **excluding** ``if TYPE_CHECKING:``
  blocks and function-scoped imports — those are the sanctioned seams
  for upward references, because they create no import-time coupling;
* a function index plus a conservative call resolver (direct names,
  import aliases, one-hop package re-exports, ``self.method``) that the
  SEED dataflow and the LOCKORDER graph are built on.

Everything here is a *static approximation*: dynamic dispatch,
``getattr``, and reflection are invisible to it. The rules are written
so that imprecision makes them silent, not noisy.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path, PurePath
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.pragmas import PragmaIndex, parse_pragmas
from repro.analysis.registry import ModuleUnderCheck
from repro.analysis.rules.common import ImportMap, resolve_dotted

#: Re-export resolution depth (``repro.filters.create_backend`` →
#: ``repro.filters.registry.create_backend`` is one hop).
_MAX_ALIAS_HOPS = 4


def module_name_of(path: str) -> Tuple[str, str]:
    """``(dotted module name, top-level package)`` of one source path.

    The dotted name starts at the last ``repro`` path component, so both
    real files (``src/repro/core/filter.py``) and virtual fixture paths
    (``fixtures/projects/x/src/repro/core/filter.py``) resolve to
    ``repro.core.filter``. ``__init__.py`` maps to its package; the
    package root itself reports the pseudo-package ``<root>``. Files
    outside any ``repro`` tree fall back to their stem.
    """
    parts = list(PurePath(path.replace("\\", "/")).parts)
    try:
        start = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        stem = PurePath(path).stem
        return stem, stem
    tail = parts[start:]
    if tail[-1].endswith(".py"):
        tail[-1] = tail[-1][:-3]
    if tail[-1] == "__init__":
        tail.pop()
    name = ".".join(tail)
    package = tail[1] if len(tail) > 1 else "<root>"
    return name, package


@dataclass
class ProjectModule:
    """One parsed module inside the project view."""

    path: str
    name: str  #: dotted module name, e.g. ``repro.core.filter``
    package: str  #: top-level package under ``repro`` (``<root>`` for the facade)
    tree: ast.Module
    source: str
    lines: List[str]
    imports: ImportMap
    pragmas: PragmaIndex

    def as_module_under_check(self) -> ModuleUnderCheck:
        return ModuleUnderCheck(
            path=self.path, tree=self.tree, source=self.source, lines=self.lines
        )


@dataclass(frozen=True)
class ImportEdge:
    """One module-level import statement, as a graph edge."""

    module: "ProjectModule"
    target: str  #: imported dotted module path, e.g. ``repro.obs.registry``
    node: ast.stmt
    #: True for ``import x [as y]``, False for ``from x import y``.
    plain_import: bool


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition, indexed by qualified name."""

    qname: str  #: ``repro.core.filter.ParticleFilter.step``
    module_name: str
    cls: Optional[str]  #: enclosing class name, if a method


def _is_type_checking_test(test: ast.expr) -> bool:
    name = getattr(test, "id", None) or getattr(test, "attr", None)
    return name == "TYPE_CHECKING"


def _module_level_import_nodes(
    body: Sequence[ast.stmt],
) -> Iterator[ast.stmt]:
    """Module-level import statements, skipping TYPE_CHECKING blocks.

    Descends into plain ``if``/``try`` bodies (version guards, optional
    dependencies) but never into function or class bodies — imports
    there are deferred to call time, which is the sanctioned seam for
    upward references.
    """
    for stmt in body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            yield stmt
        elif isinstance(stmt, ast.If):
            if _is_type_checking_test(stmt.test):
                continue
            yield from _module_level_import_nodes(stmt.body)
            yield from _module_level_import_nodes(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            yield from _module_level_import_nodes(stmt.body)
            for handler in stmt.handlers:
                yield from _module_level_import_nodes(handler.body)
            yield from _module_level_import_nodes(stmt.finalbody)


class ProjectUnderCheck:
    """Every module of one lint run, with cross-module indexes."""

    def __init__(
        self,
        modules: Sequence[ProjectModule],
        schema_lock_path: Optional[str] = None,
    ) -> None:
        self.modules: Dict[str, ProjectModule] = {}
        self.by_path: Dict[str, ProjectModule] = {}
        for module in modules:
            self.modules[module.name] = module
            self.by_path[module.path] = module
        self.schema_lock_path = schema_lock_path
        self.functions: Dict[str, FunctionInfo] = {}
        self._function_nodes: Dict[str, ast.AST] = {}
        for module in modules:
            self._index_functions(module)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_files(
        cls,
        file_paths: Sequence[str],
        schema_lock_path: Optional[str] = None,
    ) -> Tuple["ProjectUnderCheck", List[Tuple[str, SyntaxError]]]:
        """Parse files into a project; returns ``(project, parse errors)``."""
        modules: List[ProjectModule] = []
        broken: List[Tuple[str, SyntaxError]] = []
        for path in file_paths:
            source = Path(path).read_text(encoding="utf-8")
            try:
                module = cls.parse_module(source, path)
            except SyntaxError as exc:
                broken.append((path, exc))
                continue
            modules.append(module)
        return cls(modules, schema_lock_path=schema_lock_path), broken

    @staticmethod
    def parse_module(source: str, path: str) -> ProjectModule:
        """Parse one source text into a :class:`ProjectModule`."""
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        name, package = module_name_of(path)
        return ProjectModule(
            path=path,
            name=name,
            package=package,
            tree=tree,
            source=source,
            lines=lines,
            imports=ImportMap(tree),
            pragmas=parse_pragmas(lines),
        )

    def _index_functions(self, module: ProjectModule) -> None:
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, stmt, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(module, member, cls=stmt.name)

    def _add_function(
        self,
        module: ProjectModule,
        node: ast.AST,
        cls: Optional[str],
    ) -> None:
        name = getattr(node, "name", "")
        qname = (
            f"{module.name}.{cls}.{name}" if cls else f"{module.name}.{name}"
        )
        self.functions[qname] = FunctionInfo(
            qname=qname, module_name=module.name, cls=cls
        )
        self._function_nodes[qname] = node

    # ------------------------------------------------------------------
    # the import graph
    # ------------------------------------------------------------------
    def module_level_imports(self, module: ProjectModule) -> List[ImportEdge]:
        """Import-time edges of one module (see module docstring)."""
        edges: List[ImportEdge] = []
        for node in _module_level_import_nodes(module.tree.body):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    edges.append(
                        ImportEdge(
                            module=module,
                            target=alias.name,
                            node=node,
                            plain_import=True,
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level != 0:
                    continue  # relative imports stay inside one package
                edges.append(
                    ImportEdge(
                        module=module,
                        target=node.module,
                        node=node,
                        plain_import=False,
                    )
                )
        return edges

    # ------------------------------------------------------------------
    # the call graph
    # ------------------------------------------------------------------
    def function_node(self, qname: str) -> Optional[ast.AST]:
        """The def node behind a qualified name (None if not indexed)."""
        return self._function_nodes.get(qname)

    def canonical_function(self, qname: str) -> Optional[str]:
        """Resolve a dotted target through package re-exports.

        ``repro.filters.create_backend`` resolves via the ``repro.filters``
        ``__init__`` alias map to ``repro.filters.registry.create_backend``.
        Returns an indexed function qname, or None.
        """
        current = qname
        for _ in range(_MAX_ALIAS_HOPS):
            if current in self.functions:
                return current
            module_part, _, attr = current.rpartition(".")
            if not module_part:
                return None
            package = self.modules.get(module_part)
            if package is None:
                return None
            alias = package.imports.aliases.get(attr)
            if alias is None or alias == current:
                return None
            current = alias
        return None

    def resolve_call(
        self,
        module: ProjectModule,
        call: ast.Call,
        enclosing_class: Optional[str] = None,
    ) -> Optional[str]:
        """The qualified name of a call's target, when statically known.

        Handles ``self.method()`` (within ``enclosing_class``), bare
        names defined in the same module, import aliases, and dotted
        paths into other project modules (including one-hop package
        re-exports). Returns None for anything dynamic.
        """
        func = call.func
        if (
            enclosing_class is not None
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
        ):
            return self.canonical_function(
                f"{module.name}.{enclosing_class}.{func.attr}"
            )
        dotted = resolve_dotted(func, module.imports)
        if dotted is None:
            return None
        if "." not in dotted:
            return self.canonical_function(f"{module.name}.{dotted}")
        return self.canonical_function(dotted)

    def iter_functions(
        self,
    ) -> Iterator[Tuple[ProjectModule, FunctionInfo, ast.AST]]:
        """Every indexed function with its module and def node."""
        for qname in sorted(self.functions):
            info = self.functions[qname]
            module = self.modules.get(info.module_name)
            node = self._function_nodes[qname]
            if module is not None:
                yield module, info, node
