"""The per-file lint driver.

Parses each module once, runs every in-scope rule over the shared parse,
strips pragma-suppressed findings, and aggregates a :class:`LintResult`.
Entry points:

* :func:`lint_source` — lint an in-memory source under a (possibly
  virtual) path; this is what rule tests use, since scoping is decided
  by the path string alone.
* :func:`lint_file` — read + lint one file.
* :func:`lint_paths` — walk files and directory trees (``*.py``,
  skipping ``__pycache__`` and hidden directories) and lint each.

A file that fails to parse produces a single ``SYNTAX`` error finding
rather than aborting the run — the linter must be able to report on a
broken tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence

import ast

from repro.analysis.findings import Finding, Severity, sort_key
from repro.analysis.pragmas import parse_pragmas
from repro.analysis.registry import ModuleUnderCheck, select_rules


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0  #: findings removed by pragmas
    files_checked: int = 0

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed += other.suppressed
        self.files_checked += other.files_checked

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings, key=sort_key)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)


def lint_source(
    source: str,
    path: str,
    only: Sequence[str] = (),
) -> LintResult:
    """Lint one source text as if it lived at ``path``."""
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                rule="SYNTAX",
                severity=Severity.ERROR,
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"could not parse: {exc.msg}",
            )
        )
        return result
    lines = source.splitlines()
    module = ModuleUnderCheck(path=path, tree=tree, source=source, lines=lines)
    pragmas = parse_pragmas(lines)
    for rule_cls in select_rules(only):
        if not rule_cls.META.in_scope(path):
            continue
        for finding in rule_cls().check(module):
            if pragmas.suppresses(finding):
                result.suppressed += 1
            else:
                result.findings.append(finding)
    return result


def lint_file(path: str, only: Sequence[str] = ()) -> LintResult:
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path=path, only=only)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files and directory trees into sorted ``*.py`` paths."""
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            for candidate in sorted(root.rglob("*.py")):
                parts = candidate.parts
                if "__pycache__" in parts:
                    continue
                if any(p.startswith(".") and p not in (".", "..") for p in parts):
                    continue
                yield str(candidate)
        else:
            yield str(root)


def lint_paths(paths: Iterable[str], only: Sequence[str] = ()) -> LintResult:
    """Lint every python file under ``paths`` (files or directories)."""
    result = LintResult()
    for file_path in iter_python_files(paths):
        result.extend(lint_file(file_path, only=only))
    return result
