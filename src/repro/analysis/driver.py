"""The lint drivers: per-file and whole-program.

Per-file mode parses each module once, runs every in-scope rule over the
shared parse, strips pragma-suppressed findings, and aggregates a
:class:`LintResult`. Entry points:

* :func:`lint_source` — lint an in-memory source under a (possibly
  virtual) path; this is what rule tests use, since scoping is decided
  by the path string alone.
* :func:`lint_file` — read + lint one file.
* :func:`lint_paths` — walk files and directory trees (``*.py``,
  skipping ``__pycache__`` and hidden directories) and lint each.

Whole-program mode (:func:`lint_project`, ``repro lint --project``)
additionally builds a :class:`~repro.analysis.project.ProjectUnderCheck`
over every file and runs the registered project rules (ARCH / SEED /
SCHEMA / LOCKORDER) on top of the per-file set. Pragmas suppress
project findings exactly like per-file ones — by the pragma index of
the module each finding lands in.

Full-rule-set runs also audit the pragmas themselves: a
``# repro-lint: disable=RULE`` that suppressed nothing this run is
reported as a ``PRAGMA`` warning (an unused exemption is a lie about
the code). Partial runs (``--rules DET``) skip the audit, since a
pragma for an unselected rule is trivially "unused" there.

A file that fails to parse produces a single ``SYNTAX`` error finding
rather than aborting the run — the linter must be able to report on a
broken tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

import ast

from repro.analysis.findings import Finding, Severity, sort_key
from repro.analysis.pragmas import PragmaIndex, parse_pragmas
from repro.analysis.project import ProjectModule, ProjectUnderCheck
from repro.analysis.registry import (
    ModuleUnderCheck,
    select_project_rules,
    select_rules,
)

#: Rule id of the stale-suppression audit (framework-level, not a rule
#: class: it reports on the pragma layer itself).
PRAGMA_RULE_ID = "PRAGMA"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0  #: findings removed by pragmas
    files_checked: int = 0

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed += other.suppressed
        self.files_checked += other.files_checked

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings, key=sort_key)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)


def _syntax_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule="SYNTAX",
        severity=Severity.ERROR,
        path=path,
        line=exc.lineno or 0,
        col=exc.offset or 0,
        message=f"could not parse: {exc.msg}",
    )


def unused_pragma_findings(path: str, pragmas: PragmaIndex) -> List[Finding]:
    """One ``PRAGMA`` warning per declared suppression that matched nothing.

    Only meaningful after every selected rule has run over the module
    (and, in project mode, after the project rules too).
    """
    findings: List[Finding] = []
    for kind, line, rule in pragmas.unused_declarations():
        directive = "disable-file" if kind == "file" else "disable"
        findings.append(
            Finding(
                rule=PRAGMA_RULE_ID,
                severity=Severity.WARNING,
                path=path,
                line=line,
                col=0,
                message=(
                    f"unused suppression pragma `{directive}={rule}`: "
                    "it suppressed no finding; delete it"
                ),
            )
        )
    return findings


def _check_module(
    module: ModuleUnderCheck,
    pragmas: PragmaIndex,
    result: LintResult,
    only: Sequence[str],
) -> None:
    """Run every in-scope per-file rule over one parsed module."""
    for rule_cls in select_rules(only):
        if not rule_cls.META.in_scope(module.path):
            continue
        for finding in rule_cls().check(module):
            if pragmas.suppresses(finding):
                result.suppressed += 1
            else:
                result.findings.append(finding)


def lint_source(
    source: str,
    path: str,
    only: Sequence[str] = (),
    report_unused_pragmas: bool = False,
) -> LintResult:
    """Lint one source text as if it lived at ``path``."""
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(_syntax_finding(path, exc))
        return result
    lines = source.splitlines()
    module = ModuleUnderCheck(path=path, tree=tree, source=source, lines=lines)
    pragmas = parse_pragmas(lines)
    _check_module(module, pragmas, result, only)
    if report_unused_pragmas and not only:
        result.findings.extend(unused_pragma_findings(path, pragmas))
    return result


def lint_file(
    path: str,
    only: Sequence[str] = (),
    report_unused_pragmas: bool = False,
) -> LintResult:
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(
        source,
        path=path,
        only=only,
        report_unused_pragmas=report_unused_pragmas,
    )


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files and directory trees into sorted ``*.py`` paths."""
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            for candidate in sorted(root.rglob("*.py")):
                parts = candidate.parts
                if "__pycache__" in parts:
                    continue
                if any(p.startswith(".") and p not in (".", "..") for p in parts):
                    continue
                yield str(candidate)
        else:
            yield str(root)


def lint_paths(paths: Iterable[str], only: Sequence[str] = ()) -> LintResult:
    """Lint every python file under ``paths`` (files or directories).

    Full-rule-set runs (no ``only`` filter) include the stale-pragma
    audit; filtered runs skip it.
    """
    result = LintResult()
    for file_path in iter_python_files(paths):
        result.extend(
            lint_file(file_path, only=only, report_unused_pragmas=True)
        )
    return result


def lint_project(
    paths: Iterable[str],
    only: Sequence[str] = (),
    schema_lock_path: Optional[str] = None,
) -> LintResult:
    """Whole-program lint: per-file rules + cross-file project rules.

    Builds one :class:`ProjectUnderCheck` over every python file under
    ``paths``, runs the per-file rules module by module, then the
    project rules over the shared view. Pragma suppression and the
    stale-pragma audit both span the combined rule set, so a pragma
    that only suppresses e.g. an ARCH finding counts as used.
    """
    result = LintResult()
    file_paths = list(iter_python_files(paths))
    project, broken = ProjectUnderCheck.from_files(
        file_paths, schema_lock_path=schema_lock_path
    )
    for path, exc in broken:
        result.findings.append(_syntax_finding(path, exc))
    result.files_checked = len(file_paths)

    modules: List[ProjectModule] = [
        project.by_path[path] for path in file_paths if path in project.by_path
    ]
    for module in modules:
        _check_module(
            module.as_module_under_check(), module.pragmas, result, only
        )
    for rule_cls in select_project_rules(only):
        for finding in rule_cls().check_project(project):
            module = project.by_path.get(finding.path)
            if module is not None and module.pragmas.suppresses(finding):
                result.suppressed += 1
            else:
                result.findings.append(finding)
    if not only:
        for module in modules:
            result.findings.extend(
                unused_pragma_findings(module.path, module.pragmas)
            )
    return result


def build_project(
    paths: Iterable[str],
    schema_lock_path: Optional[str] = None,
) -> ProjectUnderCheck:
    """The parsed whole-program view (unparseable files are skipped)."""
    project, _ = ProjectUnderCheck.from_files(
        list(iter_python_files(paths)), schema_lock_path=schema_lock_path
    )
    return project
