"""repro.analysis — a zero-dependency invariant linter for this repo.

The service's headline guarantee — bit-identical results across shard
counts and serial-vs-thread execution — rests on a handful of coding
invariants: seeded per-object RNG streams, injectable clocks,
lock-guarded shared state, atomic checkpoint writes. This package makes
those invariants mechanically checkable: a stdlib-``ast`` rule framework
(registry, per-file driver, pragma suppression, baseline amnesty, text +
JSON reporters) plus the built-in rule set DET / CLK / THR / FP / IO
(see :mod:`repro.analysis.rules`).

On top of the per-file rules sits a whole-program mode
(``repro lint --project``, :func:`lint_project`): one
:class:`~repro.analysis.project.ProjectUnderCheck` — module graph,
call resolver, function index — shared by the cross-file rules
ARCH / SEED / SCHEMA / LOCKORDER.

Run it as ``repro lint [--project] [--format json] [paths...]`` or
from code::

    from repro.analysis import lint_project

    result = lint_project(["src/repro"], schema_lock_path="schema.lock.json")
    assert not result.findings

The invariant catalog — what each rule enforces and why it protects the
determinism guarantee — is DESIGN.md §9; the architecture contracts the
project rules pin down are DESIGN.md §14.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    Baseline,
    BaselineDiff,
    load_if_exists,
)
from repro.analysis.driver import (
    PRAGMA_RULE_ID,
    LintResult,
    build_project,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_project,
    lint_source,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.pragmas import PragmaIndex, parse_pragmas
from repro.analysis.project import ProjectModule, ProjectUnderCheck
from repro.analysis.registry import (
    ModuleUnderCheck,
    RuleMeta,
    all_project_rules,
    all_rules,
    get_project_rule,
    get_rule,
    register_project_rule,
    register_rule,
    rule_ids,
    select_project_rules,
    select_rules,
)
from repro.analysis.report import render_json, render_text, to_document

__all__ = [
    "Baseline",
    "BaselineDiff",
    "DEFAULT_BASELINE",
    "Finding",
    "LintResult",
    "ModuleUnderCheck",
    "PRAGMA_RULE_ID",
    "PragmaIndex",
    "ProjectModule",
    "ProjectUnderCheck",
    "RuleMeta",
    "Severity",
    "all_project_rules",
    "all_rules",
    "build_project",
    "get_project_rule",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_if_exists",
    "parse_pragmas",
    "register_project_rule",
    "register_rule",
    "render_json",
    "render_text",
    "rule_ids",
    "select_project_rules",
    "select_rules",
    "to_document",
]
