"""repro.analysis — a zero-dependency invariant linter for this repo.

The service's headline guarantee — bit-identical results across shard
counts and serial-vs-thread execution — rests on a handful of coding
invariants: seeded per-object RNG streams, injectable clocks,
lock-guarded shared state, atomic checkpoint writes. This package makes
those invariants mechanically checkable: a stdlib-``ast`` rule framework
(registry, per-file driver, pragma suppression, baseline amnesty, text +
JSON reporters) plus the built-in rule set DET / CLK / THR / FP / IO
(see :mod:`repro.analysis.rules`).

Run it as ``repro lint [--format json] [paths...]`` or from code::

    from repro.analysis import lint_paths

    result = lint_paths(["src/repro"])
    assert not result.findings

The invariant catalog — what each rule enforces and why it protects the
determinism guarantee — is DESIGN.md §9.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    Baseline,
    BaselineDiff,
    load_if_exists,
)
from repro.analysis.driver import (
    LintResult,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.pragmas import PragmaIndex, parse_pragmas
from repro.analysis.registry import (
    ModuleUnderCheck,
    RuleMeta,
    all_rules,
    get_rule,
    register_rule,
    rule_ids,
    select_rules,
)
from repro.analysis.report import render_json, render_text, to_document

__all__ = [
    "Baseline",
    "BaselineDiff",
    "DEFAULT_BASELINE",
    "Finding",
    "LintResult",
    "ModuleUnderCheck",
    "PragmaIndex",
    "RuleMeta",
    "Severity",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_if_exists",
    "parse_pragmas",
    "register_rule",
    "render_json",
    "render_text",
    "rule_ids",
    "select_rules",
    "to_document",
]
