"""Built-in invariant rules. Importing this package registers them all.

| id  | invariant |
|-----|-----------|
| DET | randomness flows through seeded ``repro.rng`` factories |
| CLK | wall-clock reads go through injectable clocks |
| THR | shared module state in shard-worker packages is lock-guarded |
| FP  | no exact float equality in geometry/graph coordinate math |
| IO  | durable service state is written via temp + atomic rename |
"""

from repro.analysis.rules.atomic_io import AtomicWriteRule
from repro.analysis.rules.clock import ClockRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.floatcmp import FloatEqualityRule
from repro.analysis.rules.threads import ThreadSafetyRule

__all__ = [
    "AtomicWriteRule",
    "ClockRule",
    "DeterminismRule",
    "FloatEqualityRule",
    "ThreadSafetyRule",
]
