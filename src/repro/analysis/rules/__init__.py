"""Built-in invariant rules. Importing this package registers them all.

Per-file rules (one parsed module at a time):

| id  | invariant |
|-----|-----------|
| DET | randomness flows through seeded ``repro.rng`` factories |
| CLK | wall-clock reads go through injectable clocks |
| THR | shared module state in shard-worker packages is lock-guarded |
| FP  | no exact float equality in geometry/graph coordinate math |
| IO  | durable service state is written via temp + atomic rename |

Whole-program rules (``repro lint --project``):

| id        | invariant |
|-----------|-----------|
| ARCH      | module-level imports respect the package layer map |
| SEED      | RNGs reaching core/filters/service derive from ``repro.rng`` |
| SCHEMA    | serialized-state key sets match ``schema.lock.json`` |
| LOCKORDER | the project-wide lock-acquisition graph is acyclic |
"""

from repro.analysis.rules.architecture import ArchitectureRule
from repro.analysis.rules.atomic_io import AtomicWriteRule
from repro.analysis.rules.clock import ClockRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.floatcmp import FloatEqualityRule
from repro.analysis.rules.lock_order import LockOrderRule
from repro.analysis.rules.schema_lock import SchemaLockRule
from repro.analysis.rules.seed_provenance import SeedProvenanceRule
from repro.analysis.rules.threads import ThreadSafetyRule

__all__ = [
    "ArchitectureRule",
    "AtomicWriteRule",
    "ClockRule",
    "DeterminismRule",
    "FloatEqualityRule",
    "LockOrderRule",
    "SchemaLockRule",
    "SeedProvenanceRule",
    "ThreadSafetyRule",
]
