"""DET — all randomness flows through seeded, labeled generator factories.

The shard-determinism guarantee (PR 2) holds because every filter run
draws from a private ``child_rng(seed, "pf:{second}:{object_id}")``
stream. One call into process-global RNG state — ``random.random()``,
``np.random.seed()``, an unseeded ``Random()`` — reintroduces
cross-object coupling and makes results depend on shard count and
thread interleaving.

Flagged inside ``repro.core`` / ``repro.filters`` / ``repro.service`` /
``repro.sim`` / ``repro.obs``:

* any import of the stdlib ``random`` module (its module functions are
  one shared, implicitly seeded stream);
* ``random.Random()`` / ``Random()`` with no seed argument;
* any ``numpy.random.*`` module-function call (``seed``, ``random``,
  ``shuffle``, …) — global-state API;
* ``numpy.random.default_rng()`` with no (or ``None``) seed.

Sanctioned path: :mod:`repro.rng` (``make_rng`` / ``child_rng`` /
``child_seed``) and explicit ``numpy.random.Generator`` arguments.
"""

from __future__ import annotations

import ast
from typing import Callable, List

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import ModuleUnderCheck, RuleMeta, register_rule
from repro.analysis.rules.common import (
    ImportMap,
    is_none_constant,
    resolve_dotted,
)

#: numpy.random attributes that are *not* global-state API.
_NUMPY_RANDOM_OK = {
    "Generator",
    "default_rng",  # checked separately for a seed argument
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


@register_rule
class DeterminismRule:
    META = RuleMeta(
        rule_id="DET",
        title="seeded RNG streams only",
        invariant=(
            "no process-global random state in core/service/sim/obs; "
            "randomness flows through repro.rng seeded factories "
            "(child_rng et al.)"
        ),
        severity=Severity.ERROR,
        applies_to=(
            "repro/core",
            "repro/filters",
            "repro/service",
            "repro/sim",
            "repro/obs",
            "repro/analytics",
        ),
        exempt=(),
    )

    def check(self, module: ModuleUnderCheck) -> List[Finding]:
        imports = ImportMap(module.tree)
        findings: List[Finding] = []

        def flag(node: ast.AST, message: str) -> None:
            findings.append(
                Finding(
                    rule=self.META.rule_id,
                    severity=self.META.severity,
                    path=module.path,
                    line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0),
                    message=message,
                )
            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        flag(
                            node,
                            "import of stdlib `random` (shared global stream); "
                            "use repro.rng.make_rng/child_rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    flag(
                        node,
                        "import from stdlib `random`; "
                        "use repro.rng.make_rng/child_rng",
                    )
            elif isinstance(node, ast.Call):
                self._check_call(node, imports, flag)
        return findings

    def _check_call(
        self,
        node: ast.Call,
        imports: ImportMap,
        flag: "Callable[[ast.AST, str], None]",
    ) -> None:
        target = resolve_dotted(node.func, imports)
        if target is None:
            return
        if target in ("random.Random", "random.SystemRandom"):
            if not node.args and not node.keywords:
                flag(node, f"unseeded `{target}()`; pass an explicit seed "
                           "derived via repro.rng.child_seed")
            return
        if target.startswith("random."):
            flag(
                node,
                f"call into stdlib global RNG `{target}()`; "
                "use an injected numpy Generator (repro.rng)",
            )
            return
        if target.startswith("numpy.random."):
            attr = target[len("numpy.random."):]
            if attr == "default_rng":
                seed_args = list(node.args) + [
                    kw.value for kw in node.keywords if kw.arg in (None, "seed")
                ]
                if not seed_args or all(is_none_constant(a) for a in seed_args):
                    flag(
                        node,
                        "unseeded `numpy.random.default_rng()`; derive the seed "
                        "with repro.rng.child_seed(seed, label)",
                    )
            elif "." not in attr and attr not in _NUMPY_RANDOM_OK:
                flag(
                    node,
                    f"numpy global-state RNG call `numpy.random.{attr}()`; "
                    "use a per-object Generator from repro.rng.child_rng",
                )
