"""SEED — interprocedural RNG seed provenance into filter/executor code.

The per-file DET rule catches *locally visible* global-RNG use; what it
cannot see is a generator constructed two modules away and handed down a
call chain. The shard-determinism guarantee needs the stronger,
whole-program statement: **every RNG object reaching
``repro.core`` / ``repro.filters`` / ``repro.service`` derives from the
seeded ``repro.rng`` factories** (``make_rng`` / ``child_rng`` /
``filter_run_rng``).

The analysis assigns every project function a *return provenance* in a
three-point lattice — ``RAW`` (constructs or forwards a generator from
``numpy.random.default_rng`` / ``random.Random`` outside ``repro.rng``),
``SEEDED`` (returns a ``repro.rng``-derived stream), ``NONE`` (returns
no statically-visible generator) — computed to a fixpoint over the call
graph, with simple local-variable tracking inside each function body.
It then flags, anywhere in the project:

* any RAW generator *created* inside the filter/executor packages
  (directly, or by calling a RAW-provenance helper in another module —
  the flow per-file DET structurally cannot see);
* any RAW value *passed into* a filter/executor function through a
  generator-shaped parameter (a keyword or positional argument whose
  parameter name mentions ``rng`` / ``generator`` / ``seed``), from any
  module — e.g. ``TrackingService(..., rng=np.random.default_rng(0))``
  in a CLI handler.

``RAW`` requires a visible unsanctioned construction: parameters and
unresolvable calls are ``NONE`` (the caller's responsibility), so
imprecision silences the rule instead of spamming it. ``repro/rng.py``
itself — the module that implements the boundary — is exempt.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import RuleMeta, register_project_rule
from repro.analysis.rules.common import resolve_dotted

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.project import ProjectModule, ProjectUnderCheck

#: Packages whose code every reaching RNG must have seeded provenance.
FILTER_EXECUTOR_PACKAGES = ("core", "filters", "service")

#: The sanctioned seeded factories.
SANCTIONED = frozenset(
    {
        "repro.rng.make_rng",
        "repro.rng.child_rng",
        "repro.rng.child_seed",
        "repro.rng.filter_run_rng",
    }
)

#: Constructors that mint generators with no repro.rng provenance.
RAW_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "random.Random",
        "random.SystemRandom",
    }
)

#: The module implementing the provenance boundary (exempt).
RNG_MODULE = "repro.rng"

NONE, SEEDED, RAW = "none", "seeded", "raw"

_PARAM_MARKERS = ("rng", "generator", "seed")


def _param_is_generator_shaped(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in _PARAM_MARKERS)


def _join(a: str, b: str) -> str:
    if RAW in (a, b):
        return RAW
    if SEEDED in (a, b):
        return SEEDED
    return NONE


@register_project_rule
class SeedProvenanceRule:
    META = RuleMeta(
        rule_id="SEED",
        title="RNG provenance into filter/executor code",
        invariant=(
            "every RNG object reaching repro.core / repro.filters / "
            "repro.service derives from the seeded repro.rng factories "
            "(make_rng / child_rng / filter_run_rng), across call and "
            "module boundaries"
        ),
        severity=Severity.ERROR,
    )

    def check_project(self, project: ProjectUnderCheck) -> List[Finding]:
        provenance = self._fixpoint(project)
        findings: List[Finding] = []
        for module, info, node in project.iter_functions():
            if module.name == RNG_MODULE:
                continue
            body = getattr(node, "body", [])
            findings.extend(
                self._scan_body(
                    project, module, info.cls, body, provenance
                )
            )
        for name in sorted(project.modules):
            module = project.modules[name]
            if module.name == RNG_MODULE:
                continue
            top_level = [
                stmt
                for stmt in module.tree.body
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
            findings.extend(
                self._scan_body(project, module, None, top_level, provenance)
            )
        return findings

    # ------------------------------------------------------------------
    # provenance fixpoint
    # ------------------------------------------------------------------
    def _fixpoint(self, project: ProjectUnderCheck) -> Dict[str, str]:
        provenance: Dict[str, str] = {}
        for _ in range(8):  # deep helper chains converge in a few passes
            changed = False
            for module, info, node in project.iter_functions():
                computed = self._return_provenance(
                    project, module, info.cls, node, provenance
                )
                if provenance.get(info.qname, NONE) != computed:
                    provenance[info.qname] = computed
                    changed = True
            if not changed:
                break
        return provenance

    def _return_provenance(
        self,
        project: ProjectUnderCheck,
        module: ProjectModule,
        cls: Optional[str],
        node: ast.AST,
        provenance: Dict[str, str],
    ) -> str:
        env = self._local_env(project, module, cls, node, provenance)
        result = NONE
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                result = _join(
                    result,
                    self._classify(
                        project, module, cls, stmt.value, env, provenance
                    ),
                )
        return result

    def _local_env(
        self,
        project: ProjectUnderCheck,
        module: ProjectModule,
        cls: Optional[str],
        node: ast.AST,
        provenance: Dict[str, str],
    ) -> Dict[str, str]:
        """Provenance of simple local names (single-target assignments)."""
        env: Dict[str, str] = {}
        for stmt in ast.walk(node):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                env[stmt.targets[0].id] = self._classify(
                    project, module, cls, stmt.value, env, provenance
                )
        return env

    def _classify(
        self,
        project: ProjectUnderCheck,
        module: ProjectModule,
        cls: Optional[str],
        expr: ast.expr,
        env: Dict[str, str],
        provenance: Dict[str, str],
    ) -> str:
        if isinstance(expr, ast.Name):
            return env.get(expr.id, NONE)
        if isinstance(expr, ast.IfExp):
            return _join(
                self._classify(project, module, cls, expr.body, env, provenance),
                self._classify(project, module, cls, expr.orelse, env, provenance),
            )
        if not isinstance(expr, ast.Call):
            return NONE
        dotted = resolve_dotted(expr.func, module.imports)
        if dotted in SANCTIONED:
            return SEEDED
        if dotted in RAW_CONSTRUCTORS:
            return SEEDED if module.name == RNG_MODULE else RAW
        qname = project.resolve_call(module, expr, enclosing_class=cls)
        if qname is not None:
            return provenance.get(qname, NONE)
        return NONE

    # ------------------------------------------------------------------
    # the violation scan
    # ------------------------------------------------------------------
    def _scan_body(
        self,
        project: ProjectUnderCheck,
        module: ProjectModule,
        cls: Optional[str],
        body: List[ast.stmt],
        provenance: Dict[str, str],
    ) -> List[Finding]:
        findings: List[Finding] = []
        env: Dict[str, str] = {}
        in_scope = module.package in FILTER_EXECUTOR_PACKAGES
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # visited as functions of their own
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    env[node.targets[0].id] = self._classify(
                        project, module, cls, node.value, env, provenance
                    )
                if not isinstance(node, ast.Call):
                    continue
                label = self._raw_creation_label(
                    project, module, cls, node, env, provenance
                )
                if in_scope and label is not None:
                    findings.append(
                        self._finding(
                            module,
                            node,
                            f"RNG without repro.rng provenance created in "
                            f"filter/executor code via {label}; derive it "
                            "with repro.rng.child_rng/filter_run_rng",
                        )
                    )
                findings.extend(
                    self._check_arguments(
                        project, module, cls, node, env, provenance
                    )
                )
        return findings

    def _raw_creation_label(
        self,
        project: ProjectUnderCheck,
        module: ProjectModule,
        cls: Optional[str],
        call: ast.Call,
        env: Dict[str, str],
        provenance: Dict[str, str],
    ) -> Optional[str]:
        """A human label when this call mints a RAW generator, else None."""
        dotted = resolve_dotted(call.func, module.imports)
        if dotted in RAW_CONSTRUCTORS and module.name != RNG_MODULE:
            return f"`{dotted}()`"
        qname = project.resolve_call(module, call, enclosing_class=cls)
        if qname is not None and provenance.get(qname, NONE) == RAW:
            return f"`{qname}()` (RAW provenance)"
        return None

    def _check_arguments(
        self,
        project: ProjectUnderCheck,
        module: ProjectModule,
        cls: Optional[str],
        call: ast.Call,
        env: Dict[str, str],
        provenance: Dict[str, str],
    ) -> List[Finding]:
        """Flag RAW values flowing into scope-package calls as rng args."""
        callee = self._scope_callee(project, module, cls, call)
        if callee is None:
            return []
        qname, params = callee
        findings: List[Finding] = []
        for position, arg in enumerate(call.args):
            name = params[position] if position < len(params) else ""
            if not _param_is_generator_shaped(name):
                continue
            if self._classify(project, module, cls, arg, env, provenance) == RAW:
                findings.append(
                    self._finding(
                        module,
                        arg,
                        f"argument `{name}` of `{qname}` receives an RNG "
                        "with no repro.rng provenance",
                    )
                )
        for keyword in call.keywords:
            if keyword.arg is None or not _param_is_generator_shaped(keyword.arg):
                continue
            value = keyword.value
            if self._classify(project, module, cls, value, env, provenance) == RAW:
                findings.append(
                    self._finding(
                        module,
                        value,
                        f"argument `{keyword.arg}` of `{qname}` receives an "
                        "RNG with no repro.rng provenance",
                    )
                )
        return findings

    def _scope_callee(
        self,
        project: ProjectUnderCheck,
        module: ProjectModule,
        cls: Optional[str],
        call: ast.Call,
    ) -> Optional[Tuple[str, List[str]]]:
        """``(qname, positional param names)`` when the callee is in scope."""
        qname = project.resolve_call(module, call, enclosing_class=cls)
        if qname is None:
            return None
        info = project.functions.get(qname)
        if info is None:
            return None
        target_module = project.modules.get(info.module_name)
        if (
            target_module is None
            or target_module.package not in FILTER_EXECUTOR_PACKAGES
        ):
            return None
        node = project.function_node(qname)
        args = getattr(node, "args", None)
        params = [a.arg for a in args.args] if args is not None else []
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        return qname, params

    def _finding(
        self, module: ProjectModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.META.rule_id,
            severity=self.META.severity,
            path=module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
