"""LOCKORDER — the project-wide lock-acquisition graph is acyclic.

The per-file THR rule proves each mutation is *under a* lock; it says
nothing about two locks taken in opposite orders from different call
paths — the classic deadlock that only fires under a specific thread
interleaving and never in a unit test. With the cache, the collector,
the tracking service, and the analytics engine each holding their own
lock, a cycle is one careless cross-call away.

The rule builds one directed graph over the whole project:

* **Lock identity** — a ``with <lock>`` context expression containing
  ``lock`` / ``mutex`` (the THR convention), qualified to survive
  cross-module comparison: ``self._lock`` in a method becomes
  ``module.Class._lock``; a module-level name becomes ``module.NAME``.
* **Intraprocedural edges** — ``with a: ... with b:`` adds ``a -> b``
  with the inner ``with`` as witness.
* **Interprocedural edges** — for each call made while holding ``a``,
  every lock the callee's *acquires-closure* can take (computed to a
  fixpoint through the call resolver) adds ``a -> b`` with the call
  site as witness.

Any strongly-connected component of size > 1 — equivalently any
``a -> b -> a`` path — is a lock-order inversion. One ERROR is emitted
per cycle, anchored at the lexicographically first witness, naming the
locks and both acquisition sites so the report is actionable without
re-running the analysis. Imprecision (dynamic dispatch, lambdas,
``getattr``) drops edges, so the rule under-reports rather than crying
wolf.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import RuleMeta, register_project_rule
from repro.analysis.rules.common import dotted_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.project import ProjectModule, ProjectUnderCheck

#: A witness: (path, line) of the statement that creates the edge.
Site = Tuple[str, int]


def _looks_like_lock(text: Optional[str]) -> bool:
    if not text:
        return False
    lowered = text.lower()
    return "lock" in lowered or "mutex" in lowered


def _lock_identity(
    module: ProjectModule, cls: Optional[str], expr: ast.expr
) -> Optional[str]:
    """Project-wide identity of a ``with`` context lock, or None.

    ``self._lock`` / ``cls._lock`` in a method of ``C`` in module ``m``
    -> ``m.C._lock``; any other dotted text -> ``m.<dotted>``. Scoping
    by module keeps distinct same-named locks distinct; the cost is
    that one lock reached through two aliases splits into two nodes,
    which only ever *loses* cycles (under-report, never false cycle).
    """
    dotted = dotted_name(expr)
    if not _looks_like_lock(dotted):
        return None
    assert dotted is not None
    head, _, rest = dotted.partition(".")
    if head in ("self", "cls") and cls is not None:
        return f"{module.name}.{cls}.{rest}" if rest else None
    return f"{module.name}.{dotted}"


class _FunctionFacts:
    """What one function does with locks, before interprocedural closure."""

    def __init__(self) -> None:
        #: locks this function acquires directly: lock -> first site
        self.acquires: Dict[str, Site] = {}
        #: nesting edges inside this body: (outer, inner) -> witness site
        self.edges: Dict[Tuple[str, str], Site] = {}
        #: calls made while holding locks: (callee qname, held set, site)
        self.calls: List[Tuple[str, Tuple[str, ...], Site]] = []


def _collect_facts(
    project: ProjectUnderCheck,
    module: ProjectModule,
    cls: Optional[str],
    func: ast.AST,
) -> _FunctionFacts:
    facts = _FunctionFacts()
    stack: List[Tuple[ast.AST, Tuple[str, ...]]] = [(func, ())]
    while stack:
        node, held = stack.pop()
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                lock = _lock_identity(module, cls, item.context_expr)
                if lock is None:
                    continue
                site = (module.path, node.lineno)
                facts.acquires.setdefault(lock, site)
                for outer in held:
                    if outer != lock:
                        facts.edges.setdefault((outer, lock), site)
                held = held + (lock,)
        elif isinstance(node, ast.Call):
            qname = project.resolve_call(module, node, enclosing_class=cls)
            if qname is not None:
                facts.calls.append(
                    (qname, held, (module.path, getattr(node, "lineno", 0)))
                )
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue  # runs later, outside this with-nesting
            stack.append((child, held))
    return facts


def build_lock_graph(
    project: ProjectUnderCheck,
) -> Dict[Tuple[str, str], Site]:
    """Every ``outer -> inner`` acquisition edge with its witness site."""
    facts: Dict[str, _FunctionFacts] = {}
    for module, info, node in project.iter_functions():
        facts[info.qname] = _collect_facts(project, module, info.cls, node)

    # acquires-closure: every lock a call into qname can end up holding.
    closure: Dict[str, Dict[str, Site]] = {
        q: dict(f.acquires) for q, f in facts.items()
    }
    changed = True
    while changed:
        changed = False
        for qname, f in facts.items():
            mine = closure[qname]
            for callee, _, site in f.calls:
                for lock in closure.get(callee, {}):
                    if lock not in mine:
                        mine[lock] = site
                        changed = True

    edges: Dict[Tuple[str, str], Site] = {}
    for f in facts.values():
        for edge, site in f.edges.items():
            edges.setdefault(edge, site)
        for callee, held, site in f.calls:
            for outer in held:
                for inner in closure.get(callee, {}):
                    if inner != outer:
                        edges.setdefault((outer, inner), site)
    return edges


def _cycles(edges: Dict[Tuple[str, str], Site]) -> List[List[str]]:
    """Strongly-connected components of size > 1, as sorted lock lists."""
    graph: Dict[str, Set[str]] = {}
    for outer, inner in edges:
        graph.setdefault(outer, set()).add(inner)
        graph.setdefault(inner, set())

    # Tarjan, iterative (the lock graph is tiny but recursion limits are
    # a silly way for a linter to die).
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    scc_stack: List[str] = []
    counter = [0]
    result: List[List[str]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                scc_stack.append(node)
                on_stack.add(node)
            advanced = False
            children = sorted(graph[node])
            for i in range(child_i, len(children)):
                child = children[i]
                if child not in index:
                    work[-1] = (node, i + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = scc_stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    result.append(sorted(component))
    return sorted(result)


@register_project_rule
class LockOrderRule:
    META = RuleMeta(
        rule_id="LOCKORDER",
        title="lock-acquisition order is globally consistent",
        invariant=(
            "the project-wide lock-acquisition graph (with-block nesting "
            "plus calls made while holding a lock) has no cycles; every "
            "pair of locks is always taken in the same order"
        ),
        severity=Severity.ERROR,
    )

    def check_project(self, project: ProjectUnderCheck) -> List[Finding]:
        edges = build_lock_graph(project)
        findings: List[Finding] = []
        for component in _cycles(edges):
            witnesses = sorted(
                (site, outer, inner)
                for (outer, inner), site in edges.items()
                if outer in component and inner in component
            )
            (path, line), _, _ = witnesses[0]
            ordered = " vs ".join(
                f"`{outer}` then `{inner}` at {site[0]}:{site[1]}"
                for site, outer, inner in witnesses[:2]
            )
            findings.append(
                Finding(
                    rule=self.META.rule_id,
                    severity=self.META.severity,
                    path=path,
                    line=line,
                    col=0,
                    message=(
                        "lock-order inversion between "
                        + ", ".join(f"`{lock}`" for lock in component)
                        + f": {ordered}; pick one global order and "
                        "restructure the later acquisition"
                    ),
                )
            )
        return findings
