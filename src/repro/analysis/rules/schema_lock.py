"""SCHEMA — the serialized-state surface is locked in ``schema.lock.json``.

Every ``to_state`` / ``state_dict`` / checkpoint-envelope producer in the
persistence-bearing packages defines part of the on-disk format that
``restore_state`` / ``load_checkpoint`` must accept forever (or gate
behind a version bump). Those key sets were previously only visible by
reading each function; a key added in one place and forgotten in the
restore path shipped silently.

This rule statically extracts, for every function named ``to_state`` /
``state_dict`` / ``save_checkpoint`` in the packages
``core`` / ``cache`` / ``collector`` / ``filters`` / ``service`` /
``analytics``:

* every **constant key** of dict literals returned by the function
  (directly, or via a local name assigned a dict literal and filled
  with constant-subscript stores before the return);
* every module-level ``*_VERSION`` / ``*_FORMAT`` constant — the tags
  that gate the compatibility window.

and compares against the committed lockfile (JSON, sorted keys)::

    {
      "format": "repro-schema-lock",
      "version": 1,
      "schemas": {"repro.analytics.engine.AnalyticsEngine.state_dict": ["..."]},
      "tags": {"repro.service.checkpoint.CHECKPOINT_VERSION": 2}
    }

Any drift — a new producer, a removed one, a changed key set, a changed
tag — is an ERROR naming exactly what moved. Regenerate deliberately
with ``repro lint --project --write-schema-lock`` after bumping the
matching version tag; the lockfile diff then *is* the schema review.
Without a ``--schema-lock`` path the rule is silent (fixture projects
don't carry lockfiles).
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import RuleMeta, register_project_rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.project import ProjectModule, ProjectUnderCheck

LOCK_FORMAT = "repro-schema-lock"
LOCK_VERSION = 1

#: Default lockfile location, resolved against the current directory.
DEFAULT_SCHEMA_LOCK = "schema.lock.json"

#: Packages whose state producers are part of the locked surface.
SCHEMA_PACKAGES = frozenset(
    {"core", "cache", "collector", "filters", "service", "analytics", "gateway"}
)

#: Function names treated as schema producers.
PRODUCER_NAMES = frozenset({"to_state", "state_dict", "save_checkpoint"})

#: Module-level constant suffixes treated as version tags.
TAG_SUFFIXES = ("_VERSION", "_FORMAT")


def extract_schemas(
    project: ProjectUnderCheck,
) -> Tuple[Dict[str, List[str]], Dict[str, object]]:
    """``(schemas, tags)`` of the project's persistence surface.

    ``schemas`` maps producer qname -> sorted constant key list;
    ``tags`` maps module-level constant qname -> its literal value.
    """
    schemas: Dict[str, List[str]] = {}
    for module, info, node in project.iter_functions():
        if module.package not in SCHEMA_PACKAGES:
            continue
        name = getattr(node, "name", "")
        if name not in PRODUCER_NAMES:
            continue
        keys = _returned_dict_keys(node)
        if keys is None:
            keys = _dumped_dict_keys(node)
        if keys is not None:
            schemas[info.qname] = sorted(keys)
    tags: Dict[str, object] = {}
    for module_name in sorted(project.modules):
        module = project.modules[module_name]
        if module.package not in SCHEMA_PACKAGES:
            continue
        for qname, value in _module_tags(module):
            tags[qname] = value
    return schemas, tags


def _module_tags(module: ProjectModule) -> List[Tuple[str, object]]:
    found: List[Tuple[str, object]] = []
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if not any(target.id.endswith(suffix) for suffix in TAG_SUFFIXES):
            continue
        if isinstance(stmt.value, ast.Constant) and isinstance(
            stmt.value.value, (str, int)
        ):
            found.append((f"{module.name}.{target.id}", stmt.value.value))
    return found


def _returned_dict_keys(node: ast.AST) -> Optional[List[str]]:
    """Constant keys of the dict(s) this producer returns, or None.

    Unions keys over all returns (versioned envelopes branch on format);
    non-constant keys and non-dict returns are simply not part of the
    statically locked surface.
    """
    # local name -> keys gathered from its dict literal + subscript stores
    env: Dict[str, set] = {}
    collected: set = set()
    saw_dict = False
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Dict):
                env[target.id] = set(_const_keys(stmt.value))
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in env
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
            ):
                env[target.value.id].add(target.slice.value)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            value = stmt.value
            if isinstance(value, ast.Dict):
                collected.update(_const_keys(value))
                saw_dict = True
            elif isinstance(value, ast.Name) and value.id in env:
                collected.update(env[value.id])
                saw_dict = True
    return sorted(collected) if saw_dict else None


def _dumped_dict_keys(node: ast.AST) -> Optional[List[str]]:
    """Keys of dicts handed to ``json.dump(...)`` — envelope writers.

    ``save_checkpoint`` builds its envelope locally and writes it to a
    file handle instead of returning it; the first argument of each
    ``dump`` call (a dict literal, or a local name assigned one) is the
    schema being persisted.
    """
    env: Dict[str, set] = {}
    collected: set = set()
    saw_dict = False
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Dict):
                env[target.id] = set(_const_keys(stmt.value))
        elif (
            isinstance(stmt, ast.Call)
            and isinstance(stmt.func, ast.Attribute)
            and stmt.func.attr in ("dump", "dumps")
            and stmt.args
        ):
            payload = stmt.args[0]
            if isinstance(payload, ast.Dict):
                collected.update(_const_keys(payload))
                saw_dict = True
            elif isinstance(payload, ast.Name) and payload.id in env:
                collected.update(env[payload.id])
                saw_dict = True
    return sorted(collected) if saw_dict else None


def _const_keys(node: ast.Dict) -> List[str]:
    keys: List[str] = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append(key.value)
    return keys


def render_lock(
    schemas: Dict[str, List[str]], tags: Dict[str, object]
) -> str:
    """The canonical lockfile text (sorted keys, trailing newline)."""
    document = {
        "format": LOCK_FORMAT,
        "version": LOCK_VERSION,
        "schemas": {q: schemas[q] for q in sorted(schemas)},
        "tags": {q: tags[q] for q in sorted(tags)},
    }
    return json.dumps(document, indent=2, sort_keys=False) + "\n"


def write_lock(project: ProjectUnderCheck, lock_path: str) -> str:
    """Extract and write the lockfile; returns the text written."""
    schemas, tags = extract_schemas(project)
    text = render_lock(schemas, tags)
    Path(lock_path).write_text(text, encoding="utf-8")
    return text


@register_project_rule
class SchemaLockRule:
    META = RuleMeta(
        rule_id="SCHEMA",
        title="serialized-state schema matches the committed lockfile",
        invariant=(
            "every to_state/state_dict/checkpoint-envelope key set and "
            "version tag in core/cache/collector/filters/service/"
            "analytics matches schema.lock.json; schema drift requires "
            "a deliberate lockfile regeneration"
        ),
        severity=Severity.ERROR,
    )

    def check_project(self, project: ProjectUnderCheck) -> List[Finding]:
        lock_path = project.schema_lock_path
        if lock_path is None:
            return []
        schemas, tags = extract_schemas(project)
        path = Path(lock_path)
        if not path.is_file():
            return [
                self._finding(
                    str(path),
                    0,
                    f"schema lockfile `{path}` is missing; generate it "
                    "with `repro lint --project --write-schema-lock`",
                )
            ]
        try:
            locked = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            return [
                self._finding(
                    str(path), 0, f"schema lockfile is unreadable: {exc}"
                )
            ]
        if (
            not isinstance(locked, dict)
            or locked.get("format") != LOCK_FORMAT
            or locked.get("version") != LOCK_VERSION
        ):
            return [
                self._finding(
                    str(path),
                    0,
                    "schema lockfile has an unrecognized format header; "
                    "regenerate with --write-schema-lock",
                )
            ]
        findings: List[Finding] = []
        findings.extend(
            self._diff(
                project,
                str(path),
                "schema",
                {q: list(v) for q, v in locked.get("schemas", {}).items()},
                schemas,
            )
        )
        findings.extend(
            self._diff(
                project, str(path), "version tag", locked.get("tags", {}), tags
            )
        )
        return findings

    def _diff(
        self,
        project: ProjectUnderCheck,
        lock_path: str,
        kind: str,
        locked: Dict[str, object],
        current: Dict[str, object],
    ) -> List[Finding]:
        findings: List[Finding] = []
        for qname in sorted(set(current) - set(locked)):
            findings.append(
                self._site_finding(
                    project,
                    lock_path,
                    qname,
                    f"{kind} `{qname}` is not in the lockfile; run "
                    "--write-schema-lock to lock it (and bump the "
                    "matching version tag if the format changed)",
                )
            )
        for qname in sorted(set(locked) - set(current)):
            findings.append(
                self._finding(
                    lock_path,
                    0,
                    f"locked {kind} `{qname}` no longer exists in the "
                    "project; regenerate the lockfile",
                )
            )
        for qname in sorted(set(locked) & set(current)):
            if locked[qname] != current[qname]:
                findings.append(
                    self._site_finding(
                        project,
                        lock_path,
                        qname,
                        f"{kind} `{qname}` drifted from the lockfile: "
                        f"locked {locked[qname]!r}, current "
                        f"{current[qname]!r}; bump the version tag and "
                        "regenerate with --write-schema-lock",
                    )
                )
        return findings

    def _site_finding(
        self,
        project: ProjectUnderCheck,
        lock_path: str,
        qname: str,
        message: str,
    ) -> Finding:
        """Anchor a drift finding at the producer's def line when known."""
        node = project.function_node(qname)
        if node is not None:
            info = project.functions[qname]
            module = project.modules.get(info.module_name)
            if module is not None:
                return self._finding(
                    module.path, getattr(node, "lineno", 0), message
                )
        module_part = qname.rpartition(".")[0]
        module = project.modules.get(module_part)
        if module is not None:
            return self._finding(module.path, 0, message)
        return self._finding(lock_path, 0, message)

    def _finding(self, path: str, line: int, message: str) -> Finding:
        return Finding(
            rule=self.META.rule_id,
            severity=self.META.severity,
            path=path,
            line=line,
            col=0,
            message=message,
        )
