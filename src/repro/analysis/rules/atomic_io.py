"""IO — checkpoint/result writers use write-to-temp + atomic rename.

A checkpoint half-written when the process dies must never be read back
as a checkpoint: the restore path validates a format marker, but a
truncated JSON document with a valid prefix is still a corrupt restore.
The sanctioned pattern writes to a side file and ``os.replace``s it over
the target — readers observe either the old complete document or the
new complete document, never a torn one.

Flagged inside ``repro.service`` (the checkpoint module and any future
writer that joins it):

* ``open(path, "w"/"a"/"x"/"wb"/…)`` where the target expression does
  not mention a temp name (``tmp``/``temp`` in its source text);
* a temp-file write in a module that never calls ``os.replace`` /
  ``os.rename`` — writing to ``.tmp`` and forgetting the rename is the
  same torn-read bug with extra steps;
* ``Path.write_text`` / ``Path.write_bytes`` calls (no temp possible).

Read-mode ``open`` is untouched.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import ModuleUnderCheck, RuleMeta, register_rule
from repro.analysis.rules.common import call_keywords, dotted_name

def _write_mode(node: ast.Call) -> Optional[str]:
    """The mode string if this ``open`` call writes, else ``None``."""
    mode_node: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    else:
        mode_node = call_keywords(node).get("mode")
    if mode_node is None:
        return None  # default "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        mode = mode_node.value
        if any(ch in mode for ch in "wax+"):
            return mode
        return None
    return "<dynamic>"  # non-literal mode: assume it may write


def _mentions_temp(source_text: str) -> bool:
    lowered = source_text.lower()
    return "tmp" in lowered or "temp" in lowered


def _module_calls_rename(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted in ("os.replace", "os.rename"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "replace",
                "rename",
            ):
                return True
    return False


@register_rule
class AtomicWriteRule:
    META = RuleMeta(
        rule_id="IO",
        title="atomic write-rename for durable state",
        severity=Severity.ERROR,
        invariant=(
            "service-state writers never bare-open their target for write; "
            "they write a temp sibling and os.replace it into place"
        ),
        applies_to=("repro/service",),
        exempt=(),
    )

    def check(self, module: ModuleUnderCheck) -> List[Finding]:
        findings: List[Finding] = []
        has_rename = _module_calls_rename(module.tree)

        def flag(node: ast.AST, message: str) -> None:
            findings.append(
                Finding(
                    rule=self.META.rule_id,
                    severity=self.META.severity,
                    path=module.path,
                    line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0),
                    message=message,
                )
            )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                mode = _write_mode(node)
                if mode is None or not node.args:
                    continue
                target_text = module.segment(node.args[0])
                if not _mentions_temp(target_text):
                    flag(
                        node,
                        f"bare `open({target_text or '...'}, {mode!r})` on the "
                        "final path; write to a `.tmp` sibling and "
                        "`os.replace` it into place",
                    )
                elif not has_rename:
                    flag(
                        node,
                        "temp-file write but this module never calls "
                        "`os.replace`/`os.rename`; the write is not atomic "
                        "until the rename lands",
                    )
            elif isinstance(node.func, ast.Attribute) and node.func.attr in (
                "write_text",
                "write_bytes",
            ):
                flag(
                    node,
                    f"`.{node.func.attr}()` writes the target in place; use "
                    "the write-to-temp + `os.replace` pattern",
                )
        return findings
